#!/bin/sh
# Run every experiment binary at paper scale, teeing output to
# target/experiments/logs/.
set -e
mkdir -p target/experiments/logs
for bin in table1_app_classifier table2_device_classifier table3_pii \
           fig1_timelines fig4_engagement fig5_accounts fig6_apps_reviewed \
           fig7_install_to_review fig8_stopped_apps fig9_app_churn \
           fig10_apps_used fig11_permissions fig12_malware \
           fig13_app_importance fig14_device_importance fig15_organic_split \
           ablation_sampling_app ablation_sampling_device appendix_a_fingerprint \
           ablation_features study_summary evasion_cost campaign_table; do
  echo "=== $bin ==="
  RACKET_SCALE=${RACKET_SCALE:-paper} cargo run --release -q -p racket-bench --bin "$bin" \
    2>target/experiments/logs/$bin.err | tee target/experiments/logs/$bin.out
done
