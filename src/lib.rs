//! Umbrella crate for the RacketStore reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests have a
//! single dependency surface. See the individual crates for the real API:
//!
//! * [`racketstore`] — the paper's contribution (study, measurements,
//!   labeling, app + device classifiers);
//! * [`racket_agents`] — calibrated behaviour personas + fleet simulator;
//! * [`racket_collect`] — the collection platform (collectors, buffer,
//!   hashes, LZSS, wire protocol, transports, server, fingerprinting);
//! * [`racket_playstore`] — the Play-store / VirusTotal / Google-ID sims;
//! * [`racket_device`] — the Android device model;
//! * [`racket_features`] — §7.1 / §8.1 feature extraction;
//! * [`racket_ml`] — the from-scratch ML stack;
//! * [`racket_stats`] — hypothesis tests and special functions;
//! * [`racket_types`] — the shared domain vocabulary.

#![deny(missing_docs)]

pub use racket_agents as agents;
pub use racket_collect as collect;
pub use racket_device as device;
pub use racket_features as features;
pub use racket_ml as ml;
pub use racket_playstore as playstore;
pub use racket_stats as stats;
pub use racket_types as types;
pub use racketstore as core;
