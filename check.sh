#!/usr/bin/env bash
# CI-style gate: build, test, docs (warnings denied), formatting.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo build --release"
cargo build --release

step "cargo test -q"
cargo test -q

step "chaos matrix (release)"
# The fault-injection suite runs eight full studies (one per fault
# profile); release mode keeps it to seconds.
cargo test --release --test chaos -q

step "streaming equivalence matrix (release)"
# Differential harness: feature vectors emitted from streaming state must
# be f64-bit-identical to the batch formulas, across thread counts and
# every fault profile. Run twice so the ambient (unpinned) scenario sees
# both a serial and a parallel worker pool; the suite manages
# RAYON_NUM_THREADS internally for the pinned matrix, so single-threaded.
RAYON_NUM_THREADS=1 cargo test --release --test streaming_equivalence -q -- --test-threads=1
RAYON_NUM_THREADS=8 cargo test --release --test streaming_equivalence -q -- --test-threads=1

step "columnar equivalence matrix (release)"
# Differential harness for the columnar analyze engine: the columnar
# store must mirror the row records (with dictionary codes invariant
# across paths and thread counts), the presorted GBT split search must be
# byte-identical to the row-oriented reference, and batch scoring must be
# bitwise per-row scoring. Same RAYON_NUM_THREADS discipline as above.
RAYON_NUM_THREADS=1 cargo test --release --test columnar_equivalence -q -- --test-threads=1
RAYON_NUM_THREADS=8 cargo test --release --test columnar_equivalence -q -- --test-threads=1

step "text equivalence matrix (release)"
# Differential harness for the review-text engine: enabling text must not
# perturb any pre-existing fingerprint (dedicated keyed stream family),
# and the streaming per-install text sketch must be byte-identical to the
# batch rebuild from the columnar review family, across thread counts,
# delivery paths, fault plans and fleet compositions. Same
# RAYON_NUM_THREADS discipline as above.
RAYON_NUM_THREADS=1 cargo test --release --test text_equivalence -q -- --test-threads=1
RAYON_NUM_THREADS=8 cargo test --release --test text_equivalence -q -- --test-threads=1

step "campaign equivalence matrix (release)"
# Differential harness for the lockstep (coordinated-campaign) detector:
# the batch report rebuilt from the columnar install-event family must be
# byte-identical to the incremental report computed from ingest-time
# sketches, across thread counts, delivery paths and fault plans. Same
# RAYON_NUM_THREADS discipline as above.
RAYON_NUM_THREADS=1 cargo test --release --test campaign_equivalence -q -- --test-threads=1
RAYON_NUM_THREADS=8 cargo test --release --test campaign_equivalence -q -- --test-threads=1

step "criterion benches compile"
# Microbenchmarks (substrate, pipeline, delivery) must stay buildable
# even though CI never runs them to completion.
cargo bench --no-run -q

step "bench smoke (release)"
# End-to-end observability check: run the smallest benchmark scale,
# emit BENCH_pipeline.json, and re-validate the emitted report.
BENCH_SMOKE_OUT="$(mktemp -t bench_pipeline.XXXXXX.json)"
trap 'rm -f "$BENCH_SMOKE_OUT"' EXIT
cargo run --release -q -p racket-bench --bin bench_pipeline -- \
  --smoke --out "$BENCH_SMOKE_OUT"
cargo run --release -q -p racket-bench --bin bench_pipeline -- \
  --validate "$BENCH_SMOKE_OUT"
# The committed report must also parse and carry the required stages.
cargo run --release -q -p racket-bench --bin bench_pipeline -- \
  --validate BENCH_pipeline.json

step "async plane smoke (release)"
# Hundreds of live connections through the async collection server;
# exactly-once ingest is asserted inside the harness. The throughput
# floor is only enforced at the full `large` scale, not here.
cargo run --release -q -p racket-bench --bin bench_pipeline -- --async-smoke

if command -v cargo-clippy >/dev/null 2>&1; then
  step "cargo clippy --all-targets (warnings denied)"
  # First-party crates only; vendored dependency subsets are exempt.
  cargo clippy --all-targets -q -p racket-obs -p racket-types -p racket-stats \
    -p racket-device -p racket-features -p racket-playstore \
    -p racket-agents -p racket-reactor -p racket-collect -p racket-columnar \
    -p racket-text -p racket-campaign \
    -p racket-ml -p racketstore -p racket-bench -p racketstore-suite -- -D warnings
else
  step "cargo clippy skipped (clippy not installed)"
fi

step "cargo doc --no-deps (warnings denied)"
# Only the workspace's own crates; vendored dependency subsets are excluded
# from the documentation gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
  -p racket-obs -p racket-types -p racket-stats -p racket-device \
  -p racket-features -p racket-playstore -p racket-agents -p racket-reactor \
  -p racket-collect -p racket-columnar -p racket-text -p racket-campaign \
  -p racket-ml -p racketstore -p racket-bench

if command -v rustfmt >/dev/null 2>&1; then
  step "cargo fmt --check"
  # Vendored crates are formatted as imported; gate only first-party code.
  cargo fmt --check -p racketstore-suite -p racket-obs -p racket-types \
    -p racket-stats -p racket-device -p racket-features -p racket-playstore \
    -p racket-agents -p racket-reactor -p racket-collect -p racket-columnar \
    -p racket-text -p racket-campaign \
    -p racket-ml -p racketstore -p racket-bench
else
  step "cargo fmt --check skipped (rustfmt not installed)"
fi

printf '\nAll checks passed.\n'
