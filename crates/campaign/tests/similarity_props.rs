//! Property suite for the similarity layer (ISSUE 8 satellite):
//! MinHash merge algebra, Jaccard-estimate error bounds, and LSH band
//! monotonicity.

use proptest::prelude::*;
use racket_campaign::lsh::candidate_pairs;
use racket_campaign::minhash::{MinHash, MinHasher};
use racket_campaign::LshParams;
use std::collections::BTreeSet;

const K: usize = 128;

fn shingle_set() -> impl Strategy<Value = BTreeSet<u64>> {
    proptest::collection::vec(0u64..5_000, 0..60)
        .prop_map(|v| v.into_iter().collect::<BTreeSet<u64>>())
}

fn signature_of(set: &BTreeSet<u64>) -> MinHash {
    let shingles: Vec<u64> = set.iter().copied().collect();
    MinHasher::new(K).signature(&shingles)
}

proptest! {
    /// Merge is commutative and associative with the empty signature as
    /// identity — the algebra sharded ingest relies on.
    #[test]
    fn minhash_merge_is_commutative_associative_with_identity(
        a in shingle_set(), b in shingle_set(), c in shingle_set(),
    ) {
        let (sa, sb, sc) = (signature_of(&a), signature_of(&b), signature_of(&c));

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut with_id = sa.clone();
        with_id.merge(&MinHash::empty(K));
        prop_assert_eq!(&with_id, &sa);
    }

    /// Merging two signatures equals the signature of the union set —
    /// the property that makes the incremental fold equal batch rebuild.
    #[test]
    fn minhash_merge_equals_union_signature(a in shingle_set(), b in shingle_set()) {
        let mut merged = signature_of(&a);
        merged.merge(&signature_of(&b));
        let union: BTreeSet<u64> = a.union(&b).copied().collect();
        prop_assert_eq!(merged, signature_of(&union));
    }

    /// The K=128 signature estimate tracks exact Jaccard within 0.25 —
    /// far looser than the ~3σ binomial bound (3·√(J(1−J)/128) ≤ 0.14),
    /// so this never flakes while still catching a broken hash family
    /// (a constant or correlated hash pins the estimate at 1.0).
    #[test]
    fn jaccard_estimate_tracks_exact(a in shingle_set(), b in shingle_set()) {
        prop_assume!(!a.is_empty() || !b.is_empty());
        let inter = a.intersection(&b).count();
        let union = a.len() + b.len() - inter;
        let exact = inter as f64 / union as f64;
        let est = signature_of(&a).estimate_jaccard(&signature_of(&b));
        prop_assert!(
            (est - exact).abs() <= 0.25,
            "estimate {est} vs exact {exact}"
        );
    }

    /// More bands (rows fixed) can only add candidate pairs: bands are
    /// signature prefixes, so pairs(b₁) ⊆ pairs(b₂) whenever b₁ ≤ b₂.
    #[test]
    fn lsh_candidates_monotone_in_bands(
        sets in proptest::collection::vec(shingle_set(), 2..10),
        b1 in 1usize..32,
        extra in 0usize..32,
        rows in 1usize..5,
    ) {
        let sigs: Vec<MinHash> = sets.iter().map(signature_of).collect();
        // exclude empty signatures, as the detector does
        let rows_of: Vec<&[u64]> = sigs
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.rows())
            .collect();
        let few = candidate_pairs(&rows_of, &LshParams { bands: b1, rows });
        let many = candidate_pairs(&rows_of, &LshParams { bands: b1 + extra, rows });
        prop_assert!(few.is_subset(&many));
    }

    /// Identical non-empty sets are always proposed by the first band.
    #[test]
    fn identical_sets_always_candidates(a in shingle_set()) {
        prop_assume!(!a.is_empty());
        let s1 = signature_of(&a);
        let s2 = signature_of(&a);
        let sigs = vec![s1.rows(), s2.rows()];
        let pairs = candidate_pairs(&sigs, &LshParams { bands: 1, rows: 4 });
        prop_assert!(pairs.contains(&(0, 1)));
    }
}
