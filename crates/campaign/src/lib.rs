//! `racket-campaign` — coordinated-campaign (lockstep) detection.
//!
//! RacketStore's per-device and per-app classifiers score accounts and
//! apps in isolation; real ASO fraud is *coordinated* — organizer-run
//! worker pools hitting the same target apps inside shared time windows
//! ("Erasing Labor with Labor", PAPERS.md). This crate detects that
//! lockstep structure from install telemetry alone:
//!
//! 1. **Shingles** — each device's monitored install events become a set
//!    of `(app, time-bucket)` shingles ([`ShingleParams`]; packing shared
//!    with the columnar kernel `racket_columnar::shingle` so batch and
//!    incremental extraction are bit-identical).
//! 2. **MinHash** — a K-permutation [`MinHash`] signature summarises each
//!    shingle set; signatures merge by elementwise min, which makes the
//!    fold order-insensitive and mergeable across ingest shards.
//! 3. **LSH banding** — [`lsh::candidate_pairs`] buckets signature bands
//!    to propose likely-similar device pairs without the O(n²) scan.
//! 4. **Temporal co-occurrence scoring** — candidate pairs are verified
//!    against the exact event sets: an edge requires both a Jaccard floor
//!    over shingles and at least [`DetectorConfig::min_co_apps`] distinct
//!    apps the two devices touched within [`DetectorConfig::window_secs`].
//! 5. **Near-duplicate review text** (optional) — [`detect_with_text`]
//!    adds a second candidate source: review SimHashes from per-install
//!    `racket_text::TextSketch`es feed a banded near-duplicate index, and
//!    installs sharing verified template copies on ≥ 2 apps gain an edge
//!    even when their install times are too dispersed for temporal
//!    co-occurrence (stealth/drip campaigns).
//! 6. **Dense-subgraph mining** — greedy quasi-clique growth over the
//!    co-occurrence graph yields [`DetectedCampaign`] device groups with
//!    their shared target apps.
//!
//! # Determinism
//!
//! Every stage is a pure function of its input sets: hashing is seeded
//! SplitMix64 (no `RandomState`), all intermediate collections are
//! B-tree-ordered, and ties in the miner break on ascending install ID.
//! Two pipelines that feed the same event sets — the batch path over
//! `ColumnarSnapshots` and the incremental fold on streaming state —
//! therefore produce byte-identical [`CampaignReport`]s; the contract is
//! enforced by `tests/campaign_equivalence.rs` at the workspace root and
//! documented in ARCHITECTURE.md §10.

#![deny(missing_docs)]

pub mod detect;
pub mod lsh;
pub mod minhash;
pub mod shingle;
pub mod sketch;

pub use detect::{detect, detect_with_text, CampaignReport, DetectedCampaign, DetectorConfig};
pub use lsh::LshParams;
pub use minhash::MinHash;
pub use shingle::ShingleParams;
pub use sketch::CampaignSketch;
