//! The per-device campaign sketch: the state both detector paths share.
//!
//! A [`CampaignSketch`] summarises one install record's monitored install
//! activity three ways at once:
//!
//! * the exact **event set** `(app, second)` — temporal co-occurrence
//!   scoring needs real timestamps, not buckets;
//! * the exact **shingle set** (packed `(app, bucket)`) — used for exact
//!   Jaccard verification of LSH candidates;
//! * the **MinHash signature** of the shingle set — used for LSH banding.
//!
//! The incremental path folds events one at a time at snapshot-ingest
//! fold points (`racket-collect`); the batch path rebuilds sketches from
//! the install-event column family of `ColumnarSnapshots`. Both end at
//! identical sketches because every ingredient is order- and
//! duplicate-insensitive: B-tree sets absorb replays, and the MinHash
//! fold is an elementwise min. [`CampaignSketch::merge`] is commutative
//! and associative with the default sketch as identity, so sharded
//! ingest can combine partial sketches in any order.

use crate::minhash::MinHash;
use crate::shingle::ShingleParams;
use racket_types::{AppId, SimTime};
use std::collections::BTreeSet;

/// Per-device lockstep-detection state. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSketch {
    params: ShingleParams,
    events: BTreeSet<(AppId, u64)>,
    shingles: BTreeSet<u64>,
    minhash: MinHash,
}

impl Default for CampaignSketch {
    fn default() -> Self {
        CampaignSketch::new(ShingleParams::default())
    }
}

impl CampaignSketch {
    /// The empty sketch under `params` (merge identity).
    pub fn new(params: ShingleParams) -> Self {
        CampaignSketch {
            params,
            events: BTreeSet::new(),
            shingles: BTreeSet::new(),
            minhash: MinHash::empty(params.n_hashes),
        }
    }

    /// The extraction parameters this sketch folds under.
    pub fn params(&self) -> ShingleParams {
        self.params
    }

    /// Fold one monitored install event. Idempotent: replaying an event
    /// already in the set changes nothing (the MinHash fold only runs
    /// when the shingle is new, and re-folding a shingle is a no-op
    /// anyway).
    pub fn observe(&mut self, app: AppId, t: SimTime) {
        self.events.insert((app, t.as_secs()));
        let s = self.params.pack(app, t);
        if self.shingles.insert(s) {
            self.minhash.observe(s);
        }
    }

    /// Merge a sketch built over another slice of the same install's
    /// snapshots: set unions plus a MinHash merge. Commutative and
    /// associative with [`CampaignSketch::default`] as identity. Panics
    /// if the parameters differ — mixed-parameter sketches have no
    /// meaningful union.
    pub fn merge(&mut self, other: &CampaignSketch) {
        assert_eq!(
            self.params, other.params,
            "cannot merge campaign sketches with different shingle params"
        );
        self.events.extend(other.events.iter().copied());
        self.shingles.extend(other.shingles.iter().copied());
        self.minhash.merge(&other.minhash);
    }

    /// Number of distinct shingles folded so far.
    pub fn n_shingles(&self) -> usize {
        self.shingles.len()
    }

    /// Whether no event has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The exact event set, ascending by `(app, second)`.
    pub fn events(&self) -> impl Iterator<Item = (AppId, SimTime)> + '_ {
        self.events
            .iter()
            .map(|&(app, secs)| (app, SimTime::from_secs(secs)))
    }

    /// The exact shingle set, ascending.
    pub fn shingles(&self) -> impl Iterator<Item = u64> + '_ {
        self.shingles.iter().copied()
    }

    /// The MinHash signature rows (for LSH banding).
    pub fn signature(&self) -> &[u64] {
        self.minhash.rows()
    }

    /// Exact Jaccard similarity of the two shingle sets (`J(∅, ∅) = 1`,
    /// matching [`MinHash::estimate_jaccard`]).
    pub fn exact_jaccard(&self, other: &CampaignSketch) -> f64 {
        let inter = self.shingles.intersection(&other.shingles).count();
        let union = self.shingles.len() + other.shingles.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Estimated Jaccard similarity from the MinHash signatures.
    pub fn estimated_jaccard(&self, other: &CampaignSketch) -> f64 {
        self.minhash.estimate_jaccard(&other.minhash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_is_idempotent_and_order_insensitive() {
        let mut a = CampaignSketch::default();
        a.observe(AppId(1), SimTime::from_hours(2));
        a.observe(AppId(2), SimTime::from_hours(9));
        a.observe(AppId(1), SimTime::from_hours(2)); // replay

        let mut b = CampaignSketch::default();
        b.observe(AppId(2), SimTime::from_hours(9));
        b.observe(AppId(1), SimTime::from_hours(2));
        assert_eq!(a, b);
        assert_eq!(a.n_shingles(), 2);
        assert_eq!(a.events().count(), 2);
    }

    #[test]
    fn merge_equals_union_fold() {
        let mut left = CampaignSketch::default();
        left.observe(AppId(1), SimTime::from_hours(1));
        left.observe(AppId(3), SimTime::from_hours(30));
        let mut right = CampaignSketch::default();
        right.observe(AppId(3), SimTime::from_hours(30)); // overlap
        right.observe(AppId(7), SimTime::from_days(2));

        let mut merged = left.clone();
        merged.merge(&right);

        let mut direct = CampaignSketch::default();
        for (app, t) in left.events().chain(right.events()) {
            direct.observe(app, t);
        }
        assert_eq!(merged, direct);

        let mut with_id = left.clone();
        with_id.merge(&CampaignSketch::default());
        assert_eq!(with_id, left);
    }

    #[test]
    fn jaccard_exact_on_small_sets() {
        let mut a = CampaignSketch::default();
        let mut b = CampaignSketch::default();
        for h in 0..4 {
            a.observe(AppId(h), SimTime::from_days(h as u64));
            b.observe(AppId(h + 2), SimTime::from_days((h + 2) as u64));
        }
        // shingle sets {0..3} and {2..5}: |∩| = 2, |∪| = 6
        assert!((a.exact_jaccard(&b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.exact_jaccard(&a), 1.0);
        assert_eq!(
            CampaignSketch::default().exact_jaccard(&CampaignSketch::default()),
            1.0
        );
    }
}
