//! Locality-sensitive hashing over MinHash signatures: banding.
//!
//! A signature of `bands × rows ≤ K` rows is cut into `bands` contiguous
//! slices of `rows` rows each; two devices become a *candidate pair* if
//! any band matches exactly. With per-row match probability equal to the
//! Jaccard similarity `j`, a pair is proposed with probability
//! `1 − (1 − jʳ)ᵇ` — the classic S-curve. Candidates are verified against
//! exact event sets downstream ([`crate::detect()`]), so banding only
//! trades recall against the O(n²) scan it avoids.
//!
//! Bands are *prefixes* of the signature: band `i` covers rows
//! `[i·rows, (i+1)·rows)`. Growing `bands` with `rows` fixed therefore
//! only adds bands, so the candidate set is monotone in `bands` —
//! property-pinned in `tests/similarity_props.rs`.

use std::collections::{BTreeMap, BTreeSet};

/// Banding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of bands (each an exact-match bucket key).
    pub bands: usize,
    /// Rows per band.
    pub rows: usize,
}

impl Default for LshParams {
    /// 64 bands × 2 rows over the default 128-row signature: tuned for
    /// the low-Jaccard regime of campaign detection, where workers share
    /// a handful of campaign shingles amid larger organic activity
    /// (`j ≈ 0.15` is proposed with probability ≈ 0.77, `j ≥ 0.3`
    /// essentially always).
    fn default() -> Self {
        LshParams { bands: 64, rows: 2 }
    }
}

impl LshParams {
    /// Number of bands usable against signatures of length `k` (bands
    /// beyond the signature are ignored, so shorter signatures degrade
    /// gracefully instead of panicking).
    pub fn usable_bands(&self, k: usize) -> usize {
        if self.rows == 0 {
            return 0;
        }
        self.bands.min(k / self.rows)
    }
}

/// Propose candidate pairs from a slice of signatures.
///
/// `sigs[i]` is the signature row-slice of input `i`; the result is the
/// set of index pairs `(i, j)` with `i < j` that share at least one band.
/// Deterministic: buckets are B-tree keyed on the band slice itself and
/// the output is an ordered set — no `RandomState` anywhere.
///
/// Callers must exclude empty signatures (all `u64::MAX`): every pair of
/// empty signatures trivially matches every band.
pub fn candidate_pairs(sigs: &[&[u64]], p: &LshParams) -> BTreeSet<(usize, usize)> {
    let mut pairs = BTreeSet::new();
    if sigs.is_empty() {
        return pairs;
    }
    let k = sigs.iter().map(|s| s.len()).min().unwrap_or(0);
    for band in 0..p.usable_bands(k) {
        let lo = band * p.rows;
        let hi = lo + p.rows;
        let mut buckets: BTreeMap<&[u64], Vec<usize>> = BTreeMap::new();
        for (i, sig) in sigs.iter().enumerate() {
            buckets.entry(&sig[lo..hi]).or_default().push(i);
        }
        for members in buckets.values() {
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    pairs.insert((i, j));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    #[test]
    fn identical_signatures_always_pair() {
        let h = MinHasher::new(128);
        let a = h.signature(&[1, 2, 3]);
        let b = h.signature(&[1, 2, 3]);
        let c = h.signature(&[900, 901, 902, 903]);
        let sigs = vec![a.rows(), b.rows(), c.rows()];
        let pairs = candidate_pairs(&sigs, &LshParams::default());
        assert!(pairs.contains(&(0, 1)));
        // disjoint sets share a band only by hash coincidence; with 2-row
        // bands over 64-bit hashes that is ~2⁻¹²⁸ per band
        assert!(!pairs.contains(&(0, 2)));
    }

    #[test]
    fn usable_bands_clamps_to_signature() {
        let p = LshParams { bands: 64, rows: 2 };
        assert_eq!(p.usable_bands(128), 64);
        assert_eq!(p.usable_bands(16), 8);
        assert_eq!(p.usable_bands(1), 0);
        assert_eq!(LshParams { bands: 4, rows: 0 }.usable_bands(128), 0);
    }
}
