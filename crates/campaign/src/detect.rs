//! The campaign detector: LSH candidates → temporal co-occurrence
//! scoring → greedy quasi-clique mining.
//!
//! [`detect()`] is a pure function of the per-device sketch sets, shared
//! verbatim by the batch path (sketches rebuilt from the columnar
//! install-event family) and the incremental path (sketches folded at
//! snapshot-ingest time) — which is precisely why the two paths are
//! byte-identical whenever their sketches are. Every tie in the miner
//! breaks on ascending install ID, every intermediate collection is
//! B-tree-ordered, and the only floats (`density`, Jaccard thresholds)
//! are exact ratios of small integers compared with the same operations
//! on both paths.

use crate::lsh::{candidate_pairs, LshParams};
use crate::shingle::ShingleParams;
use crate::sketch::CampaignSketch;
use racket_obs::Registry;
use racket_text::{NearDupIndex, TextSketch};
use racket_types::metrics::keys;
use racket_types::{AppId, InstallId};
use std::collections::{BTreeMap, BTreeSet};

/// Detector thresholds. The defaults are tuned at test scale so burst
/// campaigns are recovered with ≥ 0.9 recall while a campaign-free fleet
/// mines zero clusters (both pinned by `tests/conformance.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Shingle extraction parameters (must match the sketches').
    pub shingle: ShingleParams,
    /// LSH banding layout for the candidate-pair pass.
    pub lsh: LshParams,
    /// Two events on the same app count as co-occurring when their
    /// timestamps differ by at most this many seconds.
    pub window_secs: u64,
    /// Minimum number of distinct co-occurring apps for an edge.
    pub min_co_apps: usize,
    /// Minimum exact shingle Jaccard for an edge.
    pub min_jaccard: f64,
    /// Minimum devices in a reported campaign.
    pub min_cluster: usize,
    /// Minimum internal edge density (`2e / n(n−1)`) of a reported
    /// campaign — the quasi-clique relaxation.
    pub min_density: f64,
    /// Maximum SimHash Hamming distance for a verified near-duplicate
    /// review pair in the text candidate source
    /// ([`detect_with_text`]). Campaign templates are shared verbatim or
    /// with a one-word twist, so verbatim copies land at distance 0 and
    /// a small allowance covers whitespace/casing drift.
    pub text_max_hamming: u32,
    /// Minimum distinct apps on which two installs must share verified
    /// near-duplicate reviews before a text edge is admitted — the text
    /// analog of `min_co_apps` (one shared phrase on one app is organic
    /// review convergence, not coordination).
    pub text_min_co_apps: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            shingle: ShingleParams::default(),
            lsh: LshParams::default(),
            window_secs: 21_600,
            min_co_apps: 2,
            min_jaccard: 0.10,
            min_cluster: 3,
            min_density: 0.5,
            text_max_hamming: 6,
            text_min_co_apps: 2,
        }
    }
}

/// One mined device group.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedCampaign {
    /// Member installs, ascending.
    pub devices: Vec<InstallId>,
    /// Inferred target apps: apps co-occurring on at least half of the
    /// group's internal edges, ascending.
    pub apps: Vec<AppId>,
    /// Internal co-occurrence edges among the members.
    pub n_edges: u64,
    /// Internal edge density `2e / n(n−1)`.
    pub density: f64,
}

/// The full detector output. `PartialEq` compares every field (densities
/// are produced by identical integer-ratio computations on both detector
/// paths, so float equality is exact there); [`CampaignReport::fingerprint`]
/// renders a canonical byte string for the differential harness.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignReport {
    /// Mined campaigns, ascending by first member install.
    pub campaigns: Vec<DetectedCampaign>,
    /// Device pairs proposed by LSH banding.
    pub n_candidate_pairs: u64,
    /// Verified edges in the mining graph: candidate pairs that passed
    /// Jaccard + co-occurrence scoring, unioned with text edges when the
    /// text candidate source ran.
    pub n_edges: u64,
    /// Cross-owner review pairs proposed by SimHash banding (zero when
    /// the detector ran without text sketches).
    pub n_text_candidate_pairs: u64,
    /// Install pairs admitted as edges by the text candidate source:
    /// verified near-duplicate reviews on ≥ `text_min_co_apps` shared
    /// apps (zero when the detector ran without text sketches).
    pub n_text_edges: u64,
}

impl CampaignReport {
    /// Canonical string rendering (densities as raw bits) — byte-identical
    /// iff the reports are identical.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "candidates={} edges={} campaigns={}",
            self.n_candidate_pairs,
            self.n_edges,
            self.campaigns.len()
        );
        // Rendered only when the text source actually proposed something,
        // so text-off fingerprints are byte-identical to the pre-text
        // pins.
        if self.n_text_candidate_pairs != 0 || self.n_text_edges != 0 {
            let _ = writeln!(
                out,
                "text_candidates={} text_edges={}",
                self.n_text_candidate_pairs, self.n_text_edges
            );
        }
        for c in &self.campaigns {
            let _ = writeln!(
                out,
                "devices={:?} apps={:?} n_edges={} density={:016x}",
                c.devices,
                c.apps,
                c.n_edges,
                c.density.to_bits()
            );
        }
        out
    }
}

/// Distinct apps on which both devices have events within `window_secs`.
/// Inputs are per-app sorted time lists; the scan is a two-pointer merge
/// on apps and, per shared app, a two-pointer gap check on times.
fn co_occurring_apps(
    a: &[(AppId, Vec<u64>)],
    b: &[(AppId, Vec<u64>)],
    window_secs: u64,
) -> Vec<AppId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (ta, tb) = (&a[i].1, &b[j].1);
                let (mut x, mut y) = (0, 0);
                while x < ta.len() && y < tb.len() {
                    let gap = ta[x].abs_diff(tb[y]);
                    if gap <= window_secs {
                        out.push(a[i].0);
                        break;
                    }
                    if ta[x] < tb[y] {
                        x += 1;
                    } else {
                        y += 1;
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Group a sketch's event set into per-app ascending time lists.
fn per_app_times(sketch: &CampaignSketch) -> Vec<(AppId, Vec<u64>)> {
    let mut out: Vec<(AppId, Vec<u64>)> = Vec::new();
    for (app, t) in sketch.events() {
        match out.last_mut() {
            Some((a, times)) if *a == app => times.push(t.as_secs()),
            _ => out.push((app, vec![t.as_secs()])),
        }
    }
    out
}

/// Run the full detector over per-device sketches.
///
/// `inputs` may arrive in any order (they are sorted by install ID
/// internally); install IDs must be unique. `obs`, when present, gets
/// `campaign/lsh`, `campaign/score` and `campaign/mine` spans.
///
/// Equivalent to [`detect_with_text`] with no text sketches.
pub fn detect(
    inputs: &[(InstallId, &CampaignSketch)],
    cfg: &DetectorConfig,
    obs: Option<&Registry>,
) -> CampaignReport {
    detect_with_text(inputs, &[], cfg, obs)
}

/// Run the full detector with the review-text candidate source enabled.
///
/// In addition to the LSH/co-occurrence pipeline of [`detect`], every
/// review SimHash from `texts` is inserted into a [`NearDupIndex`] under
/// the owner key `(install-order-index << 32) | app`, so within-install
/// near-duplicates (one worker's own template reuse) can never pair.
/// Verified cross-install pairs on ≥ [`DetectorConfig::text_min_co_apps`]
/// shared apps become extra edges in the mining graph — a second
/// candidate source that catches stealth/drip campaigns whose install
/// times are too dispersed for temporal co-occurrence alone.
///
/// Text entries whose install is absent from `inputs` (or has an empty
/// campaign sketch) are ignored; with `texts` empty the result is
/// bit-identical to [`detect`], text counters zero.
pub fn detect_with_text(
    inputs: &[(InstallId, &CampaignSketch)],
    texts: &[(InstallId, &TextSketch)],
    cfg: &DetectorConfig,
    obs: Option<&Registry>,
) -> CampaignReport {
    // Canonical order: ascending install ID; empty sketches cannot form
    // pairs (and would spuriously collide in every LSH band).
    let mut order: Vec<&(InstallId, &CampaignSketch)> =
        inputs.iter().filter(|(_, s)| !s.is_empty()).collect();
    order.sort_by_key(|(id, _)| *id);
    for w in order.windows(2) {
        assert!(w[0].0 != w[1].0, "duplicate install id in detector input");
    }

    let pairs = {
        let _g = obs.map(|r| r.span(keys::SPAN_CAMPAIGN_LSH));
        let sigs: Vec<&[u64]> = order.iter().map(|(_, s)| s.signature()).collect();
        candidate_pairs(&sigs, &cfg.lsh)
    };

    // Score candidates: exact Jaccard over shingles + temporal
    // co-occurrence over the event sets.
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut edge_apps: BTreeMap<(usize, usize), Vec<AppId>> = BTreeMap::new();
    {
        let _g = obs.map(|r| r.span(keys::SPAN_CAMPAIGN_SCORE));
        let times: Vec<Vec<(AppId, Vec<u64>)>> =
            order.iter().map(|(_, s)| per_app_times(s)).collect();
        for &(i, j) in &pairs {
            if order[i].1.exact_jaccard(order[j].1) < cfg.min_jaccard {
                continue;
            }
            let co = co_occurring_apps(&times[i], &times[j], cfg.window_secs);
            if co.len() >= cfg.min_co_apps {
                adj.entry(i).or_default().insert(j);
                adj.entry(j).or_default().insert(i);
                edge_apps.insert((i, j), co);
            }
        }
    }

    // Text candidate source: near-duplicate reviews across installs.
    let mut n_text_candidate_pairs = 0u64;
    let mut n_text_edges = 0u64;
    if !texts.is_empty() {
        let _g = obs.map(|r| r.span(keys::SPAN_CAMPAIGN_TEXT));
        let code: BTreeMap<InstallId, usize> = order
            .iter()
            .enumerate()
            .map(|(i, &&(id, _))| (id, i))
            .collect();
        let mut index = NearDupIndex::new();
        for (id, sketch) in texts {
            let Some(&i) = code.get(id) else { continue };
            for row in sketch.rows() {
                index.insert(((i as u64) << 32) | u64::from(row.app), row.simhash);
            }
        }
        let scan = index.scan(cfg.text_max_hamming);
        n_text_candidate_pairs = scan.n_candidates as u64;
        // Fold verified owner pairs down to install pairs, keeping only
        // same-app matches (a shared phrase across *different* apps says
        // nothing about coordinated promotion of either).
        let mut shared: BTreeMap<(usize, usize), BTreeSet<AppId>> = BTreeMap::new();
        for &(a, b) in &scan.pairs {
            let (ia, app_a) = ((a >> 32) as usize, (a & 0xFFFF_FFFF) as u32);
            let (ib, app_b) = ((b >> 32) as usize, (b & 0xFFFF_FFFF) as u32);
            if ia == ib || app_a != app_b {
                continue;
            }
            let key = if ia < ib { (ia, ib) } else { (ib, ia) };
            shared.entry(key).or_default().insert(AppId(app_a));
        }
        for ((i, j), apps) in shared {
            if apps.len() >= cfg.text_min_co_apps {
                n_text_edges += 1;
                adj.entry(i).or_default().insert(j);
                adj.entry(j).or_default().insert(i);
                let entry = edge_apps.entry((i, j)).or_default();
                for app in apps {
                    if !entry.contains(&app) {
                        entry.push(app);
                    }
                }
                entry.sort();
            }
        }
    }
    let n_edges = edge_apps.len() as u64;

    let _g = obs.map(|r| r.span(keys::SPAN_CAMPAIGN_MINE));
    let mut campaigns = Vec::new();
    let mut dead: BTreeSet<usize> = BTreeSet::new();
    loop {
        // Seed: the live node with the highest degree (ties: smallest
        // index, i.e. smallest install ID).
        let seed = adj
            .iter()
            .filter(|(n, nbrs)| !dead.contains(n) && !nbrs.is_empty())
            .max_by(|(na, a), (nb, b)| a.len().cmp(&b.len()).then(nb.cmp(na)))
            .map(|(n, _)| *n);
        let Some(seed) = seed else { break };

        // Greedy quasi-clique growth: repeatedly add the candidate with
        // the most links into the cluster while density stays above the
        // floor.
        let mut cluster: BTreeSet<usize> = BTreeSet::from([seed]);
        let mut internal_edges = 0u64;
        let mut candidates: BTreeSet<usize> = adj[&seed].clone();
        loop {
            let best = candidates
                .iter()
                .map(|&c| {
                    let links = adj[&c].intersection(&cluster).count() as u64;
                    (links, std::cmp::Reverse(c))
                })
                .max()
                .filter(|(links, _)| *links > 0);
            let Some((links, std::cmp::Reverse(best))) = best else {
                break;
            };
            let n = (cluster.len() + 1) as u64;
            let density = 2.0 * (internal_edges + links) as f64 / (n * (n - 1)) as f64;
            if density < cfg.min_density {
                break;
            }
            cluster.insert(best);
            internal_edges += links;
            candidates.remove(&best);
            candidates.extend(adj[&best].difference(&cluster));
        }

        if cluster.len() >= cfg.min_cluster {
            let n = cluster.len() as u64;
            let density = 2.0 * internal_edges as f64 / (n * (n - 1)) as f64;
            // Target apps: co-occurring on at least half the internal
            // edges (majority vote across the mined group).
            let members: Vec<usize> = cluster.iter().copied().collect();
            let mut app_votes: BTreeMap<AppId, u64> = BTreeMap::new();
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    if let Some(apps) = edge_apps.get(&(i, j)) {
                        for &app in apps {
                            *app_votes.entry(app).or_default() += 1;
                        }
                    }
                }
            }
            let quorum = internal_edges.div_ceil(2).max(1);
            let apps: Vec<AppId> = app_votes
                .iter()
                .filter(|(_, &v)| v >= quorum)
                .map(|(&a, _)| a)
                .collect();
            campaigns.push(DetectedCampaign {
                devices: members.iter().map(|&i| order[i].0).collect(),
                apps,
                n_edges: internal_edges,
                density,
            });
            // Remove the mined members from the graph.
            for &m in &members {
                adj.remove(&m);
            }
            for nbrs in adj.values_mut() {
                for &m in &members {
                    nbrs.remove(&m);
                }
            }
        } else {
            // This seed cannot anchor a large-enough group; retire it as
            // a seed (it may still join a later cluster as a member).
            dead.insert(seed);
        }
    }

    campaigns.sort_by_key(|c| c.devices[0]);
    CampaignReport {
        campaigns,
        n_candidate_pairs: pairs.len() as u64,
        n_edges,
        n_text_candidate_pairs,
        n_text_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::SimTime;

    fn sketch(events: &[(u32, u64)]) -> CampaignSketch {
        let mut s = CampaignSketch::default();
        for &(app, hours) in events {
            s.observe(AppId(app), SimTime::from_hours(hours));
        }
        s
    }

    /// Three lockstep devices + one loner: the trio is mined, the loner
    /// is not, and input order is irrelevant.
    #[test]
    fn mines_a_lockstep_trio() {
        let lockstep = [(10u32, 5u64), (11, 6), (12, 7)];
        let trio: Vec<CampaignSketch> = (0..3)
            .map(|d| {
                let mut ev: Vec<(u32, u64)> = lockstep.to_vec();
                ev.push((100 + d, 24 * (d as u64 + 1))); // organic noise
                sketch(&ev)
            })
            .collect();
        let loner = sketch(&[(50, 5), (51, 200), (52, 300)]);

        let mut inputs: Vec<(InstallId, &CampaignSketch)> = trio
            .iter()
            .enumerate()
            .map(|(i, s)| (InstallId(1_000_000_002 - i as u64), s))
            .collect();
        inputs.push((InstallId(1_000_000_003), &loner));

        let report = detect(&inputs, &DetectorConfig::default(), None);
        assert_eq!(report.campaigns.len(), 1);
        let c = &report.campaigns[0];
        assert_eq!(
            c.devices,
            vec![
                InstallId(1_000_000_000),
                InstallId(1_000_000_001),
                InstallId(1_000_000_002)
            ]
        );
        assert_eq!(c.apps, vec![AppId(10), AppId(11), AppId(12)]);
        assert_eq!(c.n_edges, 3);
        assert_eq!(c.density, 1.0);

        let mut reversed = inputs.clone();
        reversed.reverse();
        assert_eq!(detect(&reversed, &DetectorConfig::default(), None), report);
    }

    #[test]
    fn uncoordinated_devices_mine_nothing() {
        let sketches: Vec<CampaignSketch> = (0..6u32)
            .map(|d| {
                sketch(&[
                    (d * 10, d as u64 * 50),
                    (d * 10 + 1, d as u64 * 50 + 100),
                    (d * 10 + 2, d as u64 * 50 + 200),
                ])
            })
            .collect();
        let inputs: Vec<(InstallId, &CampaignSketch)> = sketches
            .iter()
            .enumerate()
            .map(|(i, s)| (InstallId(1_000_000_000 + i as u64), s))
            .collect();
        let report = detect(&inputs, &DetectorConfig::default(), None);
        assert!(report.campaigns.is_empty());
        assert_eq!(report.n_edges, 0);
    }

    /// Three workers drip their installs days apart (no temporal
    /// co-occurrence) but paste the same review template on two shared
    /// target apps: the event-only detector sees nothing, the text
    /// candidate source recovers the trio.
    #[test]
    fn text_candidates_recover_a_dispersed_campaign() {
        use racket_text::TextSketch;
        let sketches: Vec<CampaignSketch> = (0..3u64)
            .map(|d| sketch(&[(10, d * 200), (11, d * 200 + 100), (30 + d as u32, d * 90)]))
            .collect();
        let texts: Vec<TextSketch> = (0..3u64)
            .map(|d| {
                let mut t = TextSketch::default();
                t.observe(10, 1_000 + d, d * 720_000, 5, "great app works perfectly");
                t.observe(
                    11,
                    1_000 + d,
                    d * 720_000 + 60,
                    5,
                    "love the new design and speed",
                );
                t
            })
            .collect();
        let inputs: Vec<(InstallId, &CampaignSketch)> = sketches
            .iter()
            .enumerate()
            .map(|(i, s)| (InstallId(1_000_000_000 + i as u64), s))
            .collect();
        let text_inputs: Vec<(InstallId, &TextSketch)> = texts
            .iter()
            .enumerate()
            .map(|(i, s)| (InstallId(1_000_000_000 + i as u64), s))
            .collect();

        let cfg = DetectorConfig::default();
        let without = detect(&inputs, &cfg, None);
        assert!(without.campaigns.is_empty());
        assert_eq!(without.n_text_candidate_pairs, 0);
        // Empty text slice is bit-identical to the event-only detector.
        assert_eq!(detect_with_text(&inputs, &[], &cfg, None), without);

        let with = detect_with_text(&inputs, &text_inputs, &cfg, None);
        assert_eq!(with.campaigns.len(), 1);
        assert_eq!(
            with.campaigns[0].devices,
            vec![
                InstallId(1_000_000_000),
                InstallId(1_000_000_001),
                InstallId(1_000_000_002)
            ]
        );
        assert_eq!(with.campaigns[0].apps, vec![AppId(10), AppId(11)]);
        assert_eq!(with.n_text_edges, 3);
        assert!(with.n_text_candidate_pairs >= 3);
        assert!(with.fingerprint().contains("text_candidates="));
        assert!(!without.fingerprint().contains("text_candidates="));
    }

    /// A single shared phrase on a single app — organic convergence —
    /// stays below `text_min_co_apps` and admits no edge.
    #[test]
    fn one_shared_app_is_not_a_text_edge() {
        use racket_text::TextSketch;
        let a = sketch(&[(10, 5), (20, 50)]);
        let b = sketch(&[(10, 900), (21, 1_000)]);
        let c = sketch(&[(10, 2_000), (22, 2_100)]);
        let mut texts: Vec<TextSketch> = Vec::new();
        for d in 0..3u64 {
            let mut t = TextSketch::default();
            t.observe(10, 2_000 + d, d * 500_000, 5, "great app works perfectly");
            texts.push(t);
        }
        let sketches = [a, b, c];
        let inputs: Vec<(InstallId, &CampaignSketch)> = sketches
            .iter()
            .enumerate()
            .map(|(i, s)| (InstallId(1_000_000_000 + i as u64), s))
            .collect();
        let text_inputs: Vec<(InstallId, &TextSketch)> = texts
            .iter()
            .enumerate()
            .map(|(i, s)| (InstallId(1_000_000_000 + i as u64), s))
            .collect();
        let report = detect_with_text(&inputs, &text_inputs, &DetectorConfig::default(), None);
        assert_eq!(report.n_text_edges, 0);
        assert!(report.n_text_candidate_pairs >= 3);
        assert!(report.campaigns.is_empty());
    }

    #[test]
    fn co_occurrence_respects_the_window() {
        let a = vec![(AppId(1), vec![0u64, 10_000]), (AppId(2), vec![50_000])];
        let b = vec![(AppId(1), vec![30_000u64]), (AppId(2), vec![90_000])];
        assert_eq!(co_occurring_apps(&a, &b, 21_600), vec![AppId(1)]);
        assert_eq!(co_occurring_apps(&a, &b, 40_000), vec![AppId(1), AppId(2)]);
        assert_eq!(co_occurring_apps(&a, &b, 100), Vec::<AppId>::new());
    }
}
