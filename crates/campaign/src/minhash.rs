//! K-permutation MinHash signatures over shingle sets.
//!
//! Each of the K "permutations" is a seeded SplitMix64 hash of the
//! shingle; the signature keeps the minimum hash per permutation. Because
//! `min` is commutative, associative and idempotent, a signature is a
//! pure function of the *set* of shingles folded into it — fold order,
//! duplicate folds and shard merge order are all invisible, which is what
//! lets the incremental ingest-time fold match the batch rebuild
//! bit for bit (property-pinned in `tests/similarity_props.rs`).

/// Salt separating the MinHash hash family from every other SplitMix64
/// use in the workspace (fleet streams, fault streams, ...).
pub const MINHASH_SALT: u64 = 0xC0_FFEE_5EED_CAFE;

/// SplitMix64 finalizer — the same mixer the fleet RNG-stream contract
/// uses, applied here as a hash function.
#[inline]
pub fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of permutation `k` (a pure function, so incremental folds
/// don't need a seed table in every record).
#[inline]
pub fn perm_seed(k: usize) -> u64 {
    mix64(MINHASH_SALT ^ (k as u64))
}

/// Hash one shingle under permutation `k`.
#[inline]
pub fn perm_hash(shingle: u64, seed: u64) -> u64 {
    mix64(shingle ^ seed)
}

/// A MinHash signature: `sig[k]` is the minimum of `perm_hash(s, seed_k)`
/// over every shingle `s` folded so far (`u64::MAX` when empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    sig: Vec<u64>,
}

impl MinHash {
    /// The empty signature of length `k` (merge identity).
    pub fn empty(k: usize) -> Self {
        MinHash {
            sig: vec![u64::MAX; k],
        }
    }

    /// Signature length.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether no shingle has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.sig.iter().all(|&v| v == u64::MAX)
    }

    /// The raw signature rows (for LSH banding).
    pub fn rows(&self) -> &[u64] {
        &self.sig
    }

    /// Fold one shingle into the signature.
    pub fn observe(&mut self, shingle: u64) {
        for (k, slot) in self.sig.iter_mut().enumerate() {
            let h = perm_hash(shingle, perm_seed(k));
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Merge a signature built over another shingle set: elementwise min,
    /// so the result equals the signature of the union. Commutative,
    /// associative, idempotent, with [`MinHash::empty`] as identity.
    /// Panics if the lengths differ (different `n_hashes` parameters).
    pub fn merge(&mut self, other: &MinHash) {
        assert_eq!(
            self.sig.len(),
            other.sig.len(),
            "cannot merge MinHash signatures of different lengths"
        );
        for (a, &b) in self.sig.iter_mut().zip(&other.sig) {
            if b < *a {
                *a = b;
            }
        }
    }

    /// Estimate the Jaccard similarity of the underlying sets as the
    /// fraction of agreeing signature rows. Two empty signatures agree on
    /// every row and estimate 1.0, matching the `J(∅, ∅) = 1` convention
    /// the exact computation in [`crate::CampaignSketch`] uses.
    pub fn estimate_jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.sig.len(), other.sig.len());
        if self.sig.is_empty() {
            return 1.0;
        }
        let agree = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.sig.len() as f64
    }
}

/// A MinHash folder with the permutation seed table precomputed — the
/// batch-path / benchmark hot loop ([`MinHash::observe`] recomputes each
/// seed; this one doesn't, and is property-pinned to produce identical
/// signatures).
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Build the seed table for signatures of length `k`.
    pub fn new(k: usize) -> Self {
        MinHasher {
            seeds: (0..k).map(perm_seed).collect(),
        }
    }

    /// Fold one shingle into `sig` (must have length `k`).
    #[inline]
    pub fn fold(&self, sig: &mut [u64], shingle: u64) {
        debug_assert_eq!(sig.len(), self.seeds.len());
        for (slot, &seed) in sig.iter_mut().zip(&self.seeds) {
            let h = perm_hash(shingle, seed);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Signature of a whole shingle slice, starting from empty.
    pub fn signature(&self, shingles: &[u64]) -> MinHash {
        let mut m = MinHash::empty(self.seeds.len());
        for &s in shingles {
            self.fold(&mut m.sig, s);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_is_order_and_duplicate_insensitive() {
        let mut a = MinHash::empty(64);
        for s in [3u64, 1, 2, 2, 1] {
            a.observe(s);
        }
        let mut b = MinHash::empty(64);
        for s in [1u64, 2, 3] {
            b.observe(s);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn hasher_matches_observe() {
        let shingles = [17u64, 99, 4, 17, 1_000_000];
        let mut via_observe = MinHash::empty(128);
        for &s in &shingles {
            via_observe.observe(s);
        }
        assert_eq!(MinHasher::new(128).signature(&shingles), via_observe);
    }

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(128);
        let a = h.signature(&[1, 2, 3, 4]);
        assert_eq!(a.estimate_jaccard(&a), 1.0);
        let empty = MinHash::empty(128);
        assert_eq!(empty.estimate_jaccard(&MinHash::empty(128)), 1.0);
        assert!(empty.is_empty() && !a.is_empty());
    }
}
