//! Shingle parameters shared by the batch and incremental extractors.
//!
//! Packing itself lives in `racket_columnar::shingle` (the batch path
//! reads shingles straight out of the install-event column family); this
//! module only carries the parameters and the `AppId`/`SimTime`-typed
//! convenience wrapper used by the incremental fold.

use racket_types::{AppId, SimTime};

/// Default time-bucket width: 6 hours. Coarse enough that a burst
/// campaign's workers land in the same bucket, fine enough that a day
/// still has 4 distinguishable windows.
pub const DEFAULT_BUCKET_SECS: u64 = 21_600;

/// Default number of MinHash permutations.
pub const DEFAULT_N_HASHES: usize = 128;

/// Shingle extraction parameters.
///
/// These are part of the batch ≡ incremental contract: both paths must
/// fold with the *same* parameters or their sketches diverge, which is
/// why [`crate::CampaignSketch`] stores its params and refuses to merge
/// across differing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShingleParams {
    /// Width of one time bucket, in seconds (non-zero).
    pub bucket_secs: u64,
    /// MinHash signature length (number of seeded permutations).
    pub n_hashes: usize,
}

impl Default for ShingleParams {
    fn default() -> Self {
        ShingleParams {
            bucket_secs: DEFAULT_BUCKET_SECS,
            n_hashes: DEFAULT_N_HASHES,
        }
    }
}

impl ShingleParams {
    /// Pack one `(app, time)` observation with these parameters.
    #[inline]
    pub fn pack(&self, app: AppId, t: SimTime) -> u64 {
        racket_columnar::pack_shingle(app.0, t.as_secs(), self.bucket_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_matches_columnar_kernel() {
        let p = ShingleParams::default();
        let s = p.pack(AppId(9), SimTime::from_hours(13));
        assert_eq!(
            s,
            racket_columnar::pack_shingle(9, 13 * 3600, DEFAULT_BUCKET_SECS)
        );
        let (app, bucket) = racket_columnar::unpack_shingle(s);
        assert_eq!((app, bucket), (9, 2)); // 13h / 6h = bucket 2
    }
}
