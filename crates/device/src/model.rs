//! Device models and manufacturers.
//!
//! §3 reports RacketStore compatibility with 298 device models from 28
//! manufacturers, the top five being Samsung, Huawei, Oppo, Xiaomi and
//! Vivo. The model matters to the reproduction because Appendix A observes
//! that some models fail to report an Android ID, which degrades snapshot
//! fingerprinting.

use serde::{Deserialize, Serialize};

/// The Android manufacturers seen in the study (top five named in §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are manufacturer names
pub enum Manufacturer {
    Samsung,
    Huawei,
    Oppo,
    Xiaomi,
    Vivo,
    Realme,
    Motorola,
    Nokia,
    OnePlus,
    Infinix,
    Tecno,
    Lenovo,
    Other,
}

impl Manufacturer {
    /// The top-5 manufacturers of §3, in reported order.
    pub const TOP5: [Manufacturer; 5] = [
        Manufacturer::Samsung,
        Manufacturer::Huawei,
        Manufacturer::Oppo,
        Manufacturer::Xiaomi,
        Manufacturer::Vivo,
    ];
}

/// A concrete device model.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Who makes it.
    pub manufacturer: Manufacturer,
    /// Marketing/model name, e.g. "SM-A105F".
    pub model: String,
    /// Android API level; RacketStore requires ≥ 21 (Lollipop) and targets
    /// 28 (Pie), per §3.
    pub api_level: u8,
    /// Whether this model reliably reports `ANDROID_ID` (Appendix A notes
    /// incompatibilities on some of the >24,000 model types).
    pub reports_android_id: bool,
}

impl DeviceModel {
    /// Minimum supported API level (Android 5, Lollipop).
    pub const MIN_API: u8 = 21;

    /// Whether RacketStore can run on this model at all.
    pub fn is_compatible(&self) -> bool {
        self.api_level >= Self::MIN_API
    }

    /// A generic compatible model for tests and defaults.
    pub fn generic() -> Self {
        DeviceModel {
            manufacturer: Manufacturer::Samsung,
            model: "SM-TEST0".to_string(),
            api_level: 28,
            reports_android_id: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top5_matches_paper() {
        assert_eq!(Manufacturer::TOP5.len(), 5);
        assert_eq!(Manufacturer::TOP5[0], Manufacturer::Samsung);
        assert_eq!(Manufacturer::TOP5[4], Manufacturer::Vivo);
    }

    #[test]
    fn compatibility_threshold() {
        let mut m = DeviceModel::generic();
        assert!(m.is_compatible());
        m.api_level = 20;
        assert!(!m.is_compatible());
        m.api_level = 21;
        assert!(m.is_compatible());
    }
}
