//! Simulated Android device for the RacketStore reproduction.
//!
//! [`Device`] is the ground-truth state machine the fleet simulator drives
//! and the collection app samples: a package manager (installed apps,
//! install/update times, permission grants, apk hashes, the Android
//! *stopped* state), an account registry, screen/battery/save-mode state,
//! the foreground app, and a usage-stats service equivalent to what
//! `PACKAGE_USAGE_STATS` exposes.
//!
//! The device answers exactly the queries the RacketStore app's collectors
//! issue (§3 of the paper): the installed-app list with per-app metadata,
//! the registered accounts (`GET_ACCOUNTS`), the list of stopped apps, the
//! foreground app, and screen/battery/save-mode status.

#![deny(missing_docs)]

pub mod model;
pub mod usage;

mod device;

pub use device::{Device, DevicePermissions};
pub use model::DeviceModel;
pub use usage::{AppUsage, UsageStats};
