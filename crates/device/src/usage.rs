//! The usage-stats service (`PACKAGE_USAGE_STATS` equivalent).
//!
//! Tracks, per app, when and how long it has been in the foreground. §6.3
//! ("Number of Apps Used Per Day", Figure 10) and the §7.1 features
//! "whether app was opened on multiple days" and "snapshots per day when
//! the app was the on-screen app" all derive from this state.

use racket_types::{AppId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-app usage record.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppUsage {
    /// Calendar-day indices (see [`SimTime::day_index`]) on which the app
    /// was brought to the foreground.
    pub days_opened: BTreeSet<u64>,
    /// Total number of foreground sessions.
    pub total_opens: u64,
    /// Total foreground time in seconds.
    pub foreground_secs: u64,
    /// Last time the app was opened.
    pub last_opened: Option<SimTime>,
}

impl AppUsage {
    /// Whether the app was opened on more than one calendar day — a §7.1
    /// feature separating personal use from one-shot promotion installs.
    pub fn opened_multiple_days(&self) -> bool {
        self.days_opened.len() > 1
    }
}

/// Usage stats across all apps on one device.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageStats {
    per_app: BTreeMap<AppId, AppUsage>,
}

impl UsageStats {
    /// Record a foreground session of `app` starting at `time` and lasting
    /// `secs` seconds.
    pub fn record_open(&mut self, app: AppId, time: SimTime, secs: u64) {
        let entry = self.per_app.entry(app).or_default();
        entry.days_opened.insert(time.day_index());
        entry.total_opens += 1;
        entry.foreground_secs += secs;
        entry.last_opened = Some(time);
    }

    /// Drop an app's record (on uninstall the usage history disappears
    /// with the package).
    pub fn forget(&mut self, app: AppId) {
        self.per_app.remove(&app);
    }

    /// Usage record of a single app, if it was ever opened.
    pub fn app(&self, app: AppId) -> Option<&AppUsage> {
        self.per_app.get(&app)
    }

    /// Number of distinct apps ever opened.
    pub fn apps_used(&self) -> usize {
        self.per_app.len()
    }

    /// Average number of distinct apps opened per active day — the Figure
    /// 10 y-axis. An *active day* is any day on which at least one app was
    /// opened. Returns 0.0 if nothing was ever opened.
    pub fn avg_apps_per_day(&self) -> f64 {
        let mut per_day: BTreeMap<u64, usize> = BTreeMap::new();
        for usage in self.per_app.values() {
            for &d in &usage.days_opened {
                *per_day.entry(d).or_insert(0) += 1;
            }
        }
        if per_day.is_empty() {
            return 0.0;
        }
        per_day.values().map(|&c| c as f64).sum::<f64>() / per_day.len() as f64
    }

    /// Iterate all per-app records.
    pub fn iter(&self) -> impl Iterator<Item = (&AppId, &AppUsage)> {
        self.per_app.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::SimDuration;

    #[test]
    fn record_accumulates() {
        let mut u = UsageStats::default();
        let app = AppId(1);
        u.record_open(app, SimTime::from_days(0), 60);
        u.record_open(app, SimTime::from_days(0) + SimDuration::from_hours(2), 30);
        let rec = u.app(app).unwrap();
        assert_eq!(rec.total_opens, 2);
        assert_eq!(rec.foreground_secs, 90);
        assert_eq!(rec.days_opened.len(), 1);
        assert!(!rec.opened_multiple_days());
    }

    #[test]
    fn multiple_days_detected() {
        let mut u = UsageStats::default();
        let app = AppId(1);
        u.record_open(app, SimTime::from_days(0), 10);
        u.record_open(app, SimTime::from_days(1), 10);
        assert!(u.app(app).unwrap().opened_multiple_days());
    }

    #[test]
    fn avg_apps_per_day() {
        let mut u = UsageStats::default();
        // Day 0: apps 1, 2. Day 1: app 1 only.
        u.record_open(AppId(1), SimTime::from_days(0), 10);
        u.record_open(AppId(2), SimTime::from_days(0), 10);
        u.record_open(AppId(1), SimTime::from_days(1), 10);
        assert!((u.avg_apps_per_day() - 1.5).abs() < 1e-12);
        assert_eq!(u.apps_used(), 2);
    }

    #[test]
    fn empty_stats() {
        let u = UsageStats::default();
        assert_eq!(u.avg_apps_per_day(), 0.0);
        assert_eq!(u.apps_used(), 0);
        assert!(u.app(AppId(1)).is_none());
    }

    #[test]
    fn forget_removes_history() {
        let mut u = UsageStats::default();
        u.record_open(AppId(1), SimTime::from_days(0), 10);
        u.forget(AppId(1));
        assert!(u.app(AppId(1)).is_none());
    }
}
