//! The device state machine.

use crate::model::DeviceModel;
use crate::usage::UsageStats;
use racket_types::{
    AccountService, AndroidId, ApkHash, AppId, DeviceEvent, DeviceId, EventKind, GoogleId,
    InstalledApp, PermissionProfile, Rating, RegisteredAccount, ReviewEvent, SimTime,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which runtime permissions the participant granted to the RacketStore
/// app on this device (§3: participants may grant any subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DevicePermissions {
    /// `PACKAGE_USAGE_STATS` — gates foreground-app and usage collection.
    pub usage_stats: bool,
    /// `GET_ACCOUNTS` — gates registered-account collection.
    pub get_accounts: bool,
}

impl Default for DevicePermissions {
    fn default() -> Self {
        DevicePermissions {
            usage_stats: true,
            get_accounts: true,
        }
    }
}

/// A simulated Android device.
///
/// All mutation goes through event methods (`install_app`, `open_app`, …)
/// which update state and append to the ground-truth event log; all the
/// queries the RacketStore collectors need are read-only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    model: DeviceModel,
    android_id: Option<AndroidId>,
    permissions: DevicePermissions,
    installed: BTreeMap<AppId, InstalledApp>,
    accounts: Vec<RegisteredAccount>,
    screen_on: bool,
    battery_pct: u8,
    save_mode: bool,
    foreground: Option<AppId>,
    usage: UsageStats,
    events: Vec<DeviceEvent>,
    /// Append-only log of reviews posted from this device, with their
    /// text — what review-enabled slow snapshots report incrementally.
    review_log: Vec<ReviewEvent>,
    installs_total: u64,
    uninstalls_total: u64,
    /// Package-manager generation stamp: bumped by every mutation of the
    /// installed-app map (`install_app`, `preinstall_app`,
    /// `uninstall_app`). Snapshot collectors compare it against the stamp
    /// of their previous sample to skip the install-delta scan entirely on
    /// the (overwhelmingly common) ticks where no package changed.
    pkg_stamp: u64,
}

impl Device {
    /// Create a device. `android_id` is reported in slow snapshots only if
    /// the model supports it.
    pub fn new(id: DeviceId, model: DeviceModel, android_id: AndroidId) -> Self {
        let android_id = model.reports_android_id.then_some(android_id);
        Device {
            id,
            model,
            android_id,
            permissions: DevicePermissions::default(),
            installed: BTreeMap::new(),
            accounts: Vec::new(),
            screen_on: false,
            battery_pct: 100,
            save_mode: false,
            foreground: None,
            usage: UsageStats::default(),
            events: Vec::new(),
            review_log: Vec::new(),
            installs_total: 0,
            uninstalls_total: 0,
            pkg_stamp: 0,
        }
    }

    // ---- identity & configuration -------------------------------------

    /// Ground-truth device identity (not observable by the server).
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The hardware model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// `ANDROID_ID` as the slow snapshot reports it (`None` when the model
    /// is incompatible).
    pub fn android_id(&self) -> Option<AndroidId> {
        self.android_id
    }

    /// Permissions granted to the collection app.
    pub fn permissions(&self) -> DevicePermissions {
        self.permissions
    }

    /// Set the permissions granted to the collection app.
    pub fn set_permissions(&mut self, permissions: DevicePermissions) {
        self.permissions = permissions;
    }

    // ---- package manager -----------------------------------------------

    /// Install (or re-install) an app. Re-installation replaces the entry,
    /// which is exactly the Android behaviour that loses the original
    /// install time (§6.3's negative install-to-review deltas).
    pub fn install_app(
        &mut self,
        app: AppId,
        time: SimTime,
        permissions: PermissionProfile,
        apk_hash: ApkHash,
    ) {
        let info = InstalledApp::fresh(app, time, permissions, apk_hash);
        self.installed.insert(app, info);
        self.pkg_stamp += 1;
        // A (re-)install kills any running instance: the fresh package is
        // in the stopped state until its next launch, so it cannot stay in
        // the foreground.
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        self.installs_total += 1;
        self.events.push(DeviceEvent::new(
            self.id,
            time,
            EventKind::AppInstalled { app },
        ));
    }

    /// Install a preinstalled (system image) app at the epoch.
    pub fn preinstall_app(&mut self, app: AppId, permissions: PermissionProfile, hash: ApkHash) {
        let mut info = InstalledApp::fresh(app, SimTime::EPOCH, permissions, hash);
        info.preinstalled = true;
        info.stopped = false; // system apps run out of the box
        self.installed.insert(app, info);
        self.pkg_stamp += 1;
    }

    /// Uninstall an app; returns whether it was installed. Usage history
    /// for the package is forgotten, as Android does.
    pub fn uninstall_app(&mut self, app: AppId, time: SimTime) -> bool {
        if self.installed.remove(&app).is_none() {
            return false;
        }
        self.pkg_stamp += 1;
        self.usage.forget(app);
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        self.uninstalls_total += 1;
        self.events.push(DeviceEvent::new(
            self.id,
            time,
            EventKind::AppUninstalled { app },
        ));
        true
    }

    /// Bring an app to the foreground for `secs` seconds. Clears its
    /// stopped state (first launch un-stops a fresh install). Returns
    /// `false` if the app is not installed.
    pub fn open_app(&mut self, app: AppId, time: SimTime, secs: u64) -> bool {
        let Some(info) = self.installed.get_mut(&app) else {
            return false;
        };
        info.stopped = false;
        self.foreground = Some(app);
        self.screen_on = true;
        self.usage.record_open(app, time, secs);
        self.events.push(DeviceEvent::new(
            self.id,
            time,
            EventKind::AppOpened {
                app,
                foreground_secs: secs,
            },
        ));
        true
    }

    /// Force-stop an app (§6.3: workers stop misbehaving promoted apps
    /// rather than uninstalling them, to preserve retention installs).
    pub fn stop_app(&mut self, app: AppId, time: SimTime) -> bool {
        let Some(info) = self.installed.get_mut(&app) else {
            return false;
        };
        info.stopped = true;
        if self.foreground == Some(app) {
            self.foreground = None;
        }
        self.events.push(DeviceEvent::new(
            self.id,
            time,
            EventKind::AppStopped { app },
        ));
        true
    }

    // ---- accounts --------------------------------------------------------

    /// Register an account on the device.
    pub fn register_account(&mut self, account: RegisteredAccount, time: SimTime) {
        self.events.push(DeviceEvent::new(
            self.id,
            time,
            EventKind::AccountRegistered {
                account: account.id,
            },
        ));
        self.accounts.push(account);
    }

    /// Record a review posted from this device (ground truth; the review
    /// itself also lands in the Play-store simulator). The posting Google
    /// identity and the review text go to the device's review log, which
    /// review-enabled slow snapshots drain incrementally.
    pub fn record_review(
        &mut self,
        app: AppId,
        account: racket_types::AccountId,
        google_id: GoogleId,
        rating: Rating,
        time: SimTime,
        text: &str,
    ) {
        self.events.push(DeviceEvent::new(
            self.id,
            time,
            EventKind::ReviewPosted {
                app,
                account,
                rating,
            },
        ));
        self.review_log.push(ReviewEvent {
            app,
            reviewer: google_id,
            time,
            rating,
            text: text.to_string(),
        });
    }

    // ---- screen & power ---------------------------------------------------

    /// Turn the screen on or off.
    pub fn set_screen(&mut self, on: bool, time: SimTime) {
        if self.screen_on != on {
            self.events.push(DeviceEvent::new(
                self.id,
                time,
                if on {
                    EventKind::ScreenOn
                } else {
                    EventKind::ScreenOff
                },
            ));
        }
        self.screen_on = on;
        if !on {
            self.foreground = None;
        }
    }

    /// Set the battery level (0–100) and save-mode flag.
    pub fn set_power(&mut self, battery_pct: u8, save_mode: bool) {
        self.battery_pct = battery_pct.min(100);
        self.save_mode = save_mode;
    }

    // ---- queries (what the collectors read) -------------------------------

    /// The app currently in the foreground.
    pub fn foreground_app(&self) -> Option<AppId> {
        self.foreground
    }

    /// Whether the screen is on.
    pub fn screen_on(&self) -> bool {
        self.screen_on
    }

    /// Battery level, 0–100.
    pub fn battery_pct(&self) -> u8 {
        self.battery_pct
    }

    /// Whether battery save mode is active.
    pub fn save_mode(&self) -> bool {
        self.save_mode
    }

    /// All installed apps with their metadata.
    pub fn installed_apps(&self) -> impl Iterator<Item = &InstalledApp> {
        self.installed.values()
    }

    /// Metadata of one installed app.
    pub fn installed_app(&self, app: AppId) -> Option<&InstalledApp> {
        self.installed.get(&app)
    }

    /// Whether `app` is currently installed.
    pub fn is_installed(&self, app: AppId) -> bool {
        self.installed.contains_key(&app)
    }

    /// Number of installed apps.
    pub fn installed_count(&self) -> usize {
        self.installed.len()
    }

    /// Number of preinstalled (system) apps.
    pub fn preinstalled_count(&self) -> usize {
        self.installed.values().filter(|a| a.preinstalled).count()
    }

    /// Apps currently in the stopped state (the slow snapshot's
    /// `stopped_apps` list).
    pub fn stopped_apps(&self) -> Vec<AppId> {
        let mut out = Vec::new();
        self.stopped_apps_into(&mut out);
        out
    }

    /// Write the stopped-app list into a caller-owned buffer (cleared
    /// first) — the allocation-free path the pooled snapshot collectors
    /// sample through. Order is ascending [`AppId`], identical to
    /// [`Device::stopped_apps`].
    pub fn stopped_apps_into(&self, out: &mut Vec<AppId>) {
        out.clear();
        out.extend(self.installed.values().filter(|a| a.stopped).map(|a| a.app));
    }

    /// The package-manager generation stamp: changes iff the installed-app
    /// map changed (install, preinstall or uninstall) since it was last
    /// read. Monotonically increasing for the lifetime of the device.
    pub fn pkg_stamp(&self) -> u64 {
        self.pkg_stamp
    }

    /// Registered accounts (the slow snapshot's `accounts` list, gated on
    /// `GET_ACCOUNTS`).
    pub fn accounts(&self) -> &[RegisteredAccount] {
        &self.accounts
    }

    /// The Gmail accounts registered on the device.
    pub fn gmail_accounts(&self) -> impl Iterator<Item = &RegisteredAccount> {
        self.accounts.iter().filter(|a| a.service.is_gmail())
    }

    /// Number of distinct account services registered.
    pub fn account_service_count(&self) -> usize {
        let mut services: Vec<AccountService> = self.accounts.iter().map(|a| a.service).collect();
        services.sort();
        services.dedup();
        services.len()
    }

    /// Usage-stats service (gated on `PACKAGE_USAGE_STATS`).
    pub fn usage(&self) -> &UsageStats {
        &self.usage
    }

    /// Ground-truth event log since creation.
    pub fn events(&self) -> &[DeviceEvent] {
        &self.events
    }

    /// Append-only log of reviews posted from this device (the slow
    /// snapshot collector's review source when review collection is on).
    pub fn review_log(&self) -> &[ReviewEvent] {
        &self.review_log
    }

    /// Lifetime install / uninstall event counts.
    pub fn churn_totals(&self) -> (u64, u64) {
        (self.installs_total, self.uninstalls_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{AccountId, GoogleId, Permission};

    fn device() -> Device {
        Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(42))
    }

    fn install(d: &mut Device, app: u32, day: u64) {
        d.install_app(
            AppId(app),
            SimTime::from_days(day),
            PermissionProfile::grant_all(vec![Permission::Internet, Permission::Camera]),
            ApkHash([app as u8; 16]),
        );
    }

    #[test]
    fn fresh_install_is_stopped_until_opened() {
        let mut d = device();
        install(&mut d, 1, 0);
        assert_eq!(d.stopped_apps(), vec![AppId(1)]);
        assert!(d.open_app(AppId(1), SimTime::from_days(0), 30));
        assert!(d.stopped_apps().is_empty());
        assert_eq!(d.foreground_app(), Some(AppId(1)));
        assert!(d.screen_on());
    }

    #[test]
    fn reinstall_updates_install_time() {
        let mut d = device();
        install(&mut d, 1, 0);
        install(&mut d, 1, 10);
        let info = d.installed_app(AppId(1)).unwrap();
        assert_eq!(info.install_time, SimTime::from_days(10));
        assert_eq!(d.installed_count(), 1);
        assert_eq!(d.churn_totals(), (2, 0));
    }

    #[test]
    fn uninstall_forgets_usage_and_foreground() {
        let mut d = device();
        install(&mut d, 1, 0);
        d.open_app(AppId(1), SimTime::from_days(0), 30);
        assert!(d.uninstall_app(AppId(1), SimTime::from_days(1)));
        assert!(!d.is_installed(AppId(1)));
        assert!(d.usage().app(AppId(1)).is_none());
        assert_eq!(d.foreground_app(), None);
        assert!(
            !d.uninstall_app(AppId(1), SimTime::from_days(1)),
            "double uninstall"
        );
        assert_eq!(d.churn_totals(), (1, 1));
    }

    #[test]
    fn stop_app_sets_stopped_state() {
        let mut d = device();
        install(&mut d, 1, 0);
        d.open_app(AppId(1), SimTime::from_days(0), 30);
        assert!(d.stop_app(AppId(1), SimTime::from_days(0)));
        assert_eq!(d.stopped_apps(), vec![AppId(1)]);
        assert_eq!(d.foreground_app(), None);
        assert!(!d.stop_app(AppId(9), SimTime::from_days(0)), "unknown app");
    }

    #[test]
    fn preinstalled_apps_are_running_and_counted() {
        let mut d = device();
        d.preinstall_app(AppId(100), PermissionProfile::default(), ApkHash([0; 16]));
        install(&mut d, 1, 0);
        assert_eq!(d.installed_count(), 2);
        assert_eq!(d.preinstalled_count(), 1);
        assert_eq!(
            d.stopped_apps(),
            vec![AppId(1)],
            "system app is not stopped"
        );
    }

    #[test]
    fn account_registry() {
        let mut d = device();
        d.register_account(
            RegisteredAccount::gmail(AccountId(1), GoogleId(10)),
            SimTime::EPOCH,
        );
        d.register_account(
            RegisteredAccount::gmail(AccountId(2), GoogleId(11)),
            SimTime::EPOCH,
        );
        d.register_account(
            RegisteredAccount::non_gmail(AccountId(3), AccountService::WhatsApp),
            SimTime::EPOCH,
        );
        assert_eq!(d.accounts().len(), 3);
        assert_eq!(d.gmail_accounts().count(), 2);
        assert_eq!(d.account_service_count(), 2);
    }

    #[test]
    fn screen_events_logged_once_per_transition() {
        let mut d = device();
        d.set_screen(true, SimTime::from_secs(1));
        d.set_screen(true, SimTime::from_secs(2)); // no-op
        d.set_screen(false, SimTime::from_secs(3));
        let screens: Vec<_> = d
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ScreenOn | EventKind::ScreenOff))
            .collect();
        assert_eq!(screens.len(), 2);
    }

    #[test]
    fn screen_off_clears_foreground() {
        let mut d = device();
        install(&mut d, 1, 0);
        d.open_app(AppId(1), SimTime::from_days(0), 5);
        d.set_screen(false, SimTime::from_days(0));
        assert_eq!(d.foreground_app(), None);
    }

    #[test]
    fn power_state_clamped() {
        let mut d = device();
        d.set_power(250, true);
        assert_eq!(d.battery_pct(), 100);
        assert!(d.save_mode());
    }

    #[test]
    fn opening_uninstalled_app_fails() {
        let mut d = device();
        assert!(!d.open_app(AppId(5), SimTime::EPOCH, 10));
    }

    #[test]
    fn android_id_absent_on_incompatible_model() {
        let mut model = DeviceModel::generic();
        model.reports_android_id = false;
        let d = Device::new(DeviceId(2), model, AndroidId(7));
        assert_eq!(d.android_id(), None);
    }

    #[test]
    fn pkg_stamp_tracks_package_mutations_only() {
        let mut d = device();
        let s0 = d.pkg_stamp();
        install(&mut d, 1, 0);
        let s1 = d.pkg_stamp();
        assert_ne!(s0, s1, "install bumps the stamp");
        // Non-package mutations leave the stamp alone.
        d.open_app(AppId(1), SimTime::from_days(0), 10);
        d.stop_app(AppId(1), SimTime::from_days(0));
        d.set_screen(true, SimTime::from_days(0));
        d.set_power(50, false);
        assert_eq!(d.pkg_stamp(), s1);
        // Re-install (changed install time) bumps: the collector must
        // re-scan to report the fresh Installed delta.
        install(&mut d, 1, 5);
        let s2 = d.pkg_stamp();
        assert_ne!(s1, s2);
        assert!(d.uninstall_app(AppId(1), SimTime::from_days(6)));
        let s3 = d.pkg_stamp();
        assert_ne!(s2, s3);
        // Uninstalling an absent app is a no-op on the stamp.
        assert!(!d.uninstall_app(AppId(1), SimTime::from_days(6)));
        assert_eq!(d.pkg_stamp(), s3);
        d.preinstall_app(AppId(9), PermissionProfile::default(), ApkHash([0; 16]));
        assert_ne!(d.pkg_stamp(), s3);
    }

    #[test]
    fn stopped_apps_into_matches_allocating_query() {
        let mut d = device();
        install(&mut d, 3, 0);
        install(&mut d, 1, 0);
        install(&mut d, 2, 0);
        d.open_app(AppId(2), SimTime::from_days(0), 5);
        let mut buf = vec![AppId(99)]; // stale contents must be cleared
        d.stopped_apps_into(&mut buf);
        assert_eq!(buf, d.stopped_apps());
        assert_eq!(buf, vec![AppId(1), AppId(3)]);
    }

    #[test]
    fn event_log_orders_and_labels() {
        let mut d = device();
        install(&mut d, 1, 0);
        d.open_app(AppId(1), SimTime::from_days(1), 10);
        d.record_review(
            AppId(1),
            AccountId(1),
            GoogleId(10),
            Rating::FIVE,
            SimTime::from_days(2),
            "great app",
        );
        let levels: Vec<Option<u8>> = d.events().iter().map(|e| e.kind.timeline_level()).collect();
        assert_eq!(levels, vec![Some(4), Some(2), Some(3)]);
        assert_eq!(d.review_log().len(), 1);
        assert_eq!(d.review_log()[0].reviewer, GoogleId(10));
        assert_eq!(d.review_log()[0].text, "great app");
    }
}
