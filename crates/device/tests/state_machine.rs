//! Property tests over random operation sequences: whatever order installs,
//! opens, stops, uninstalls and screen toggles arrive in, the device's
//! internal invariants must hold.

use proptest::prelude::*;
use racket_device::{Device, DeviceModel};
use racket_types::{AndroidId, ApkHash, AppId, DeviceId, PermissionProfile, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Install(u8),
    Uninstall(u8),
    Open(u8),
    Stop(u8),
    Screen(bool),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Install),
        (0u8..12).prop_map(Op::Uninstall),
        (0u8..12).prop_map(Op::Open),
        (0u8..12).prop_map(Op::Stop),
        any::<bool>().prop_map(Op::Screen),
    ]
}

proptest! {
    #[test]
    fn random_op_sequences_keep_invariants(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut device = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(1));
        let mut t = 0u64;
        for op in &ops {
            t += 10;
            let now = SimTime::from_secs(t);
            match op {
                Op::Install(a) => device.install_app(
                    AppId(u32::from(*a)),
                    now,
                    PermissionProfile::default(),
                    ApkHash([*a; 16]),
                ),
                Op::Uninstall(a) => {
                    device.uninstall_app(AppId(u32::from(*a)), now);
                }
                Op::Open(a) => {
                    device.open_app(AppId(u32::from(*a)), now, 30);
                }
                Op::Stop(a) => {
                    device.stop_app(AppId(u32::from(*a)), now);
                }
                Op::Screen(on) => device.set_screen(*on, now),
            }

            // Invariants after every operation:
            // 1. foreground app, if any, is installed and not stopped.
            if let Some(fg) = device.foreground_app() {
                let info = device.installed_app(fg).expect("foreground app installed");
                prop_assert!(!info.stopped, "foreground app cannot be stopped");
                prop_assert!(device.screen_on(), "foreground implies screen on");
            }
            // 2. stopped apps are a subset of installed apps.
            for app in device.stopped_apps() {
                prop_assert!(device.is_installed(app));
            }
            // 3. usage stats never reference uninstalled apps.
            for (app, _) in device.usage().iter() {
                prop_assert!(device.is_installed(*app), "usage for uninstalled app");
            }
            // 4. churn totals are consistent with the event log.
            let (installs, uninstalls) = device.churn_totals();
            prop_assert!(installs >= uninstalls || device.installed_count() == 0);
        }
        // 5. event log is time-ordered.
        let times: Vec<_> = device.events().iter().map(|e| e.time).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "event log out of order");
        }
    }
}
