//! Streaming feature state and batch-equivalent emission (§7.1 / §8.1).
//!
//! # State ownership and the batch-equivalence contract
//!
//! The streaming engine splits feature state across two layers
//! (ARCHITECTURE.md §7):
//!
//! * **snapshot-side** state lives on the collection server's
//!   [`racket_collect::InstallRecord`] — both the latched maps the record
//!   always maintained (installed set, accounts, per-day foreground and
//!   snapshot counts) and the per-app [`racket_collect::StreamAggregates`]
//!   folded at ingest time (install/uninstall counters, last-uninstall
//!   latch, foreground totals);
//! * **review-side** state lives here in [`DeviceStreamState`], folded
//!   once per crawled review (in coalesced `posted_at` order) when the
//!   study joins reviews onto devices.
//!
//! [`DeviceStreamState::app_vector`] and
//! [`DeviceStreamState::device_vector`] then emit the Table 1 / Table 2
//! feature vectors **without scanning any event or review list** — every
//! O(n) pass of the batch extractors ([`crate::app_features`],
//! [`crate::device_features`]) is replaced by an O(1) read of streaming
//! state. The contract, enforced by `tests/streaming_equivalence.rs`, is
//! *bitwise* equality with the batch vectors: integer and set statistics
//! are exact by construction, and every emitted `f64` is produced by the
//! same operation sequence as the batch expression it replaces (sums
//! folded in the batch's canonical order, min/max latches identical to
//! the batch folds, divisions in the same order).

use crate::observation::DeviceObservation;
use crate::online::{AppReviewStream, DAY_SECS};
use racket_types::{AccountService, AppId};
use std::collections::HashMap;

/// Per-device streaming feature state: review-side aggregates for every
/// app observed installed on the device, plus device-level review totals.
///
/// Built by [`DeviceStreamState::fold`] the moment a device's reviews are
/// joined; emission needs only this state plus the observation's latched
/// snapshot-side state.
#[derive(Debug, Clone, Default)]
pub struct DeviceStreamState {
    /// Review streams, one per app in the record's metadata map (apps
    /// never observed installed have no feature instance — the batch
    /// extractor panics on them).
    app_reviews: HashMap<AppId, AppReviewStream>,
    /// Distinct apps reviewed from device accounts (installed or not).
    pub n_apps_reviewed: u64,
    /// Currently installed apps with at least one review.
    pub n_installed_and_reviewed: u64,
    /// Total reviews posted from device accounts.
    pub n_total_reviews: u64,
}

impl DeviceStreamState {
    /// Fold a device observation's reviews into streaming state.
    ///
    /// Reviews fold in the batch's canonical order (stably sorted by
    /// `posted_at`, exactly as [`DeviceObservation::reviews_for`] yields
    /// them) so the f64 sums inside each [`AppReviewStream`] accumulate
    /// add-for-add like the batch expressions.
    pub fn fold(obs: &DeviceObservation) -> Self {
        let mut state = DeviceStreamState::default();
        for (&app, info) in &obs.record.apps {
            let mut stream = AppReviewStream::new();
            for review in obs.reviews_for(app) {
                stream.fold(review, info.install_time, obs.monitoring);
            }
            state.app_reviews.insert(app, stream);
        }
        state.n_apps_reviewed = obs.total_apps_reviewed() as u64;
        state.n_installed_and_reviewed = obs.installed_and_reviewed() as u64;
        state.n_total_reviews = obs.total_reviews() as u64;
        state
    }

    /// The review stream for one observed app, if any.
    pub fn app_stream(&self, app: AppId) -> Option<&AppReviewStream> {
        self.app_reviews.get(&app)
    }

    /// Emit the §7.1 app-usage feature vector for `app` from streaming
    /// state — bitwise equal to [`crate::app_features`].
    ///
    /// # Panics
    /// If the app was never observed on the device, matching the batch
    /// extractor's contract.
    pub fn app_vector(&self, obs: &DeviceObservation, app: AppId) -> Vec<f64> {
        let info = obs
            .record
            .apps
            .get(&app)
            .unwrap_or_else(|| panic!("{app} was never observed on this device"));
        let monitoring = obs.monitoring;
        let reviews = self
            .app_reviews
            .get(&app)
            .unwrap_or_else(|| panic!("{app} was never observed on this device"));
        let snap = obs.record.stream.app(app).copied().unwrap_or_default();

        // (2)–(3) review timing, straight off the review stream.
        let (avg_delay, min_delay) = reviews.delay_features();
        let (gap_mean, gap_min, gap_max) = reviews.gap_features();

        // (4)–(5) foreground behaviour: the per-day map is snapshot-side
        // streaming state; the total comes from the ingest-time counter.
        let fg = obs.record.foreground.get(&app);
        let opened_multiple_days = fg.is_some_and(|days| days.len() > 1);
        let fg_per_day = if fg.is_some() {
            snap.fg_total as f64 / obs.record.active_days().max(1) as f64
        } else {
            0.0
        };

        // (6) device-wide snapshot rate (latched per-day counters).
        let device_rate = obs.record.avg_snapshots_per_day();

        // (7) inner retention from the last-uninstall latch.
        let installed_before = info.install_time < monitoring.start;
        let installed_at_end = obs.record.installed_now.contains(&app);
        let retention_start = info.install_time.max(monitoring.start);
        let retention_end = if installed_at_end {
            monitoring.end
        } else {
            snap.last_uninstall.unwrap_or(monitoring.start)
        };
        let retention_days = if retention_end > retention_start {
            (retention_end - retention_start).as_secs() as f64 / DAY_SECS
        } else {
            0.0
        };

        // (8)–(10) latched metadata.
        let perms = &info.permissions;
        let vt = obs.vt_flags.get(&app).copied().flatten().unwrap_or(0);

        vec![
            reviews.before.len() as f64,
            reviews.during.len() as f64,
            reviews.after.len() as f64,
            avg_delay,
            min_delay,
            gap_mean,
            gap_min,
            gap_max,
            f64::from(u8::from(opened_multiple_days)),
            fg_per_day,
            device_rate,
            retention_days,
            f64::from(u8::from(installed_before)),
            f64::from(u8::from(installed_at_end)),
            perms.normal_count() as f64,
            perms.dangerous_count() as f64,
            perms.granted.len() as f64,
            perms.denied.len() as f64,
            f64::from(vt),
            // (11) churn from the ingest-time counters.
            snap.n_installs as f64,
            snap.n_uninstalls as f64,
        ]
    }

    /// Emit the §8.1 device-usage feature vector from streaming state —
    /// bitwise equal to [`crate::device_features`].
    pub fn device_vector(&self, obs: &DeviceObservation, app_suspiciousness: f64) -> Vec<f64> {
        let record = &obs.record;
        let n_pre = record
            .installed_now
            .iter()
            .filter(|a| obs.preinstalled.contains(a))
            .count();
        let n_user = record.installed_now.len() - n_pre;

        let active_days = record.active_days().max(1) as f64;
        let daily_installs = record.stream.n_install_events as f64 / active_days;
        let daily_uninstalls = record.stream.n_uninstall_events as f64 / active_days;

        let n_gmail = record
            .accounts
            .iter()
            .filter(|a| a.service.is_gmail())
            .count();
        let n_non_gmail = record.accounts.len() - n_gmail;
        let mut services: Vec<AccountService> = record.accounts.iter().map(|a| a.service).collect();
        services.sort();
        services.dedup();

        let total_reviews = self.n_total_reviews as f64;
        let reviews_per_account = if n_gmail > 0 {
            total_reviews / n_gmail as f64
        } else {
            0.0
        };

        vec![
            n_pre as f64,
            n_user as f64,
            app_suspiciousness,
            record.stopped_apps.len() as f64,
            daily_installs,
            daily_uninstalls,
            n_gmail as f64,
            n_non_gmail as f64,
            services.len() as f64,
            self.n_installed_and_reviewed as f64,
            self.n_apps_reviewed as f64,
            reviews_per_account,
            record.avg_snapshots_per_day(),
            record.active_days() as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{app_features, device_features};
    use racket_types::{
        AccountId, ApkHash, FastSnapshot, GoogleId, InstallDelta, InstallId, InstalledApp,
        ParticipantId, Permission, PermissionProfile, Rating, RegisteredAccount, Review, SimTime,
        SlowSnapshot, Snapshot, TimeInterval,
    };
    use std::collections::HashMap;

    const P: ParticipantId = ParticipantId(111_111);
    const I: InstallId = InstallId(1);

    fn fast(t_day: u64, fg: Option<u32>, deltas: Vec<InstallDelta>) -> Snapshot {
        Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_days(t_day),
            foreground_app: fg.map(AppId),
            screen_on: fg.is_some(),
            battery_pct: 80,
            install_events: deltas,
        })
    }

    fn installed(app: u32, day: u64) -> InstallDelta {
        InstallDelta::Installed(InstalledApp::fresh(
            AppId(app),
            SimTime::from_days(day),
            PermissionProfile {
                requested: vec![Permission::Internet, Permission::Camera],
                granted: vec![Permission::Camera],
                denied: vec![],
            },
            ApkHash([app as u8; 16]),
        ))
    }

    fn observation() -> DeviceObservation {
        let mut server = racket_collect::CollectionServer::new([P]);
        server.ingest_snapshot(&fast(10, Some(1), vec![installed(1, 2), installed(100, 0)]));
        server.ingest_snapshot(&fast(11, Some(1), vec![installed(2, 11)]));
        server.ingest_snapshot(&fast(
            12,
            None,
            vec![InstallDelta::Uninstalled { app: AppId(2) }],
        ));
        server.ingest_snapshot(&Snapshot::Slow(SlowSnapshot {
            install_id: I,
            participant_id: P,
            android_id: None,
            time: SimTime::from_days(12),
            accounts: vec![
                RegisteredAccount::gmail(AccountId(1), GoogleId(1)),
                RegisteredAccount::non_gmail(AccountId(2), AccountService::WhatsApp),
            ],
            save_mode: false,
            stopped_apps: vec![AppId(100)],
            review_events: vec![],
        }));
        let record = server.record(I).unwrap().clone();
        let mut reviews_by_app = HashMap::new();
        reviews_by_app.insert(
            AppId(1),
            vec![
                Review::new(AppId(1), GoogleId(1), SimTime::from_days(3), Rating::FIVE),
                Review::new(AppId(1), GoogleId(2), SimTime::from_days(12), Rating::FIVE),
                Review::new(AppId(1), GoogleId(1), SimTime::from_days(13), Rating::FOUR),
            ],
        );
        reviews_by_app.insert(
            AppId(55), // reviewed but never installed
            vec![Review::new(
                AppId(55),
                GoogleId(1),
                SimTime::from_days(5),
                Rating::FOUR,
            )],
        );
        DeviceObservation {
            record,
            monitoring: TimeInterval::new(SimTime::from_days(10), SimTime::from_days(14)),
            google_ids: vec![GoogleId(1), GoogleId(2)],
            reviews_by_app,
            vt_flags: [(AppId(1), Some(3u8))].into_iter().collect(),
            preinstalled: [AppId(100)].into_iter().collect(),
        }
    }

    fn assert_bits_equal(streaming: &[f64], batch: &[f64], what: &str) {
        assert_eq!(streaming.len(), batch.len(), "{what} width");
        for (i, (s, b)) in streaming.iter().zip(batch).enumerate() {
            assert_eq!(
                s.to_bits(),
                b.to_bits(),
                "{what} column {i}: streaming {s} != batch {b}"
            );
        }
    }

    #[test]
    fn app_vector_is_bitwise_equal_to_batch() {
        let obs = observation();
        let state = DeviceStreamState::fold(&obs);
        let mut apps: Vec<AppId> = obs.record.apps.keys().copied().collect();
        apps.sort();
        for app in apps {
            assert_bits_equal(
                &state.app_vector(&obs, app),
                &app_features(&obs, app),
                &format!("app {app}"),
            );
        }
    }

    #[test]
    fn device_vector_is_bitwise_equal_to_batch() {
        let obs = observation();
        let state = DeviceStreamState::fold(&obs);
        for susp in [0.0, 0.5, 0.9367] {
            assert_bits_equal(
                &state.device_vector(&obs, susp),
                &device_features(&obs, susp),
                "device",
            );
        }
    }

    #[test]
    fn refold_after_mutation_tracks_batch() {
        // Observations are mutated after construction in ablations and
        // tests; a refold must track the batch extractor exactly.
        let mut obs = observation();
        obs.vt_flags.insert(AppId(1), None);
        obs.reviews_by_app
            .get_mut(&AppId(1))
            .unwrap()
            .push(Review::new(
                AppId(1),
                GoogleId(7),
                SimTime::from_days(20),
                Rating::FIVE,
            ));
        let state = DeviceStreamState::fold(&obs);
        assert_bits_equal(
            &state.app_vector(&obs, AppId(1)),
            &app_features(&obs, AppId(1)),
            "app 1 after mutation",
        );
        assert_bits_equal(
            &state.device_vector(&obs, 0.25),
            &device_features(&obs, 0.25),
            "device after mutation",
        );
    }

    #[test]
    #[should_panic(expected = "never observed")]
    fn unknown_app_panics_like_batch() {
        let obs = observation();
        DeviceStreamState::fold(&obs).app_vector(&obs, AppId(99));
    }
}
