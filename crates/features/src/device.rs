//! §8.1 device-usage features.
//!
//! One instance per device. Feature (2), *app suspiciousness*, couples the
//! two classifiers: it is the fraction of the device's installed apps the
//! §7 app classifier flags as promotion-used, so the caller passes it in
//! (the feature crate cannot train classifiers without a dependency
//! cycle). The remaining features come straight off the observation.

use crate::observation::DeviceObservation;
use racket_types::AccountService;

/// Column names of the device-usage feature vector, aligned with
/// [`device_features`]. These names appear in the Figure 14 importance
/// plot.
pub const DEVICE_FEATURE_NAMES: [&str; 14] = [
    "n_preinstalled_apps",      // (1)
    "n_user_installed_apps",    // (1)
    "app_suspiciousness",       // (2) fraction flagged by the §7 classifier
    "n_stopped_apps",           // (3)
    "avg_daily_installs",       // (4)
    "avg_daily_uninstalls",     // (4)
    "n_gmail_accounts",         // (5)
    "n_non_gmail_accounts",     // (5)
    "n_account_types",          // (5)
    "n_installed_and_reviewed", // (6)
    "n_total_apps_reviewed",    // (7)
    "avg_reviews_per_account",  // (7) reviews / gmail accounts
    "snapshots_per_day",        // engagement context (Figure 4)
    "active_days",              // engagement context
];

/// Extract the §8.1 feature vector for one device.
///
/// `app_suspiciousness` is the fraction of installed apps flagged by the
/// app classifier (0.0 if the caller has no classifier, e.g. in ablations).
pub fn device_features(obs: &DeviceObservation, app_suspiciousness: f64) -> Vec<f64> {
    let record = &obs.record;
    let installed: Vec<_> = record.installed_now.iter().collect();
    let n_pre = installed
        .iter()
        .filter(|a| obs.preinstalled.contains(a))
        .count();
    let n_user = installed.len() - n_pre;

    let active_days = record.active_days().max(1) as f64;
    let daily_installs = record.install_events.len() as f64 / active_days;
    let daily_uninstalls = record.uninstall_events.len() as f64 / active_days;

    let n_gmail = record
        .accounts
        .iter()
        .filter(|a| a.service.is_gmail())
        .count();
    let n_non_gmail = record.accounts.len() - n_gmail;
    let mut services: Vec<AccountService> = record.accounts.iter().map(|a| a.service).collect();
    services.sort();
    services.dedup();

    let total_reviews = obs.total_reviews() as f64;
    let reviews_per_account = if n_gmail > 0 {
        total_reviews / n_gmail as f64
    } else {
        0.0
    };

    vec![
        n_pre as f64,
        n_user as f64,
        app_suspiciousness,
        record.stopped_apps.len() as f64,
        daily_installs,
        daily_uninstalls,
        n_gmail as f64,
        n_non_gmail as f64,
        services.len() as f64,
        obs.installed_and_reviewed() as f64,
        obs.total_apps_reviewed() as f64,
        reviews_per_account,
        record.avg_snapshots_per_day(),
        record.active_days() as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{
        AccountId, ApkHash, AppId, FastSnapshot, GoogleId, InstallDelta, InstallId, InstalledApp,
        ParticipantId, PermissionProfile, Rating, RegisteredAccount, Review, SimTime, SlowSnapshot,
        Snapshot, TimeInterval,
    };
    use std::collections::HashMap;

    const P: ParticipantId = ParticipantId(111_111);
    const I: InstallId = InstallId(1);

    fn observation() -> DeviceObservation {
        let mut server = racket_collect::CollectionServer::new([P]);
        // Two installed apps: one preinstalled (100), one user (1).
        for (app, install_day) in [(100u32, 0u64), (1, 11)] {
            server.ingest_snapshot(&Snapshot::Fast(FastSnapshot {
                install_id: I,
                participant_id: P,
                time: SimTime::from_days(10 + u64::from(app == 1)),
                foreground_app: None,
                screen_on: false,
                battery_pct: 70,
                install_events: vec![InstallDelta::Installed(InstalledApp::fresh(
                    AppId(app),
                    SimTime::from_days(install_day),
                    PermissionProfile::default(),
                    ApkHash([app as u8; 16]),
                ))],
            }));
        }
        server.ingest_snapshot(&Snapshot::Slow(SlowSnapshot {
            install_id: I,
            participant_id: P,
            android_id: None,
            time: SimTime::from_days(11),
            accounts: vec![
                RegisteredAccount::gmail(AccountId(1), GoogleId(1)),
                RegisteredAccount::gmail(AccountId(2), GoogleId(2)),
                RegisteredAccount::non_gmail(AccountId(3), AccountService::WhatsApp),
            ],
            save_mode: false,
            stopped_apps: vec![AppId(1)],
            review_events: vec![],
        }));
        let record = server.record(I).unwrap().clone();
        let mut reviews_by_app = HashMap::new();
        reviews_by_app.insert(
            AppId(1),
            vec![
                Review::new(AppId(1), GoogleId(1), SimTime::from_days(12), Rating::FIVE),
                Review::new(AppId(1), GoogleId(2), SimTime::from_days(12), Rating::FIVE),
            ],
        );
        reviews_by_app.insert(
            AppId(55), // not installed
            vec![Review::new(
                AppId(55),
                GoogleId(1),
                SimTime::from_days(5),
                Rating::FOUR,
            )],
        );
        DeviceObservation {
            record,
            monitoring: TimeInterval::new(SimTime::from_days(10), SimTime::from_days(14)),
            google_ids: vec![GoogleId(1), GoogleId(2)],
            reviews_by_app,
            vt_flags: HashMap::new(),
            preinstalled: [AppId(100)].into_iter().collect(),
        }
    }

    #[test]
    fn vector_width_matches_names() {
        let v = device_features(&observation(), 0.5);
        assert_eq!(v.len(), DEVICE_FEATURE_NAMES.len());
    }

    #[test]
    fn app_counts_split_pre_and_user() {
        let v = device_features(&observation(), 0.0);
        assert_eq!(v[0], 1.0, "one preinstalled app");
        assert_eq!(v[1], 1.0, "one user app");
        assert_eq!(v[3], 1.0, "one stopped app");
    }

    #[test]
    fn suspiciousness_passed_through() {
        assert_eq!(device_features(&observation(), 0.73)[2], 0.73);
    }

    #[test]
    fn churn_normalized_by_active_days() {
        let v = device_features(&observation(), 0.0);
        // One install event (app 1 on day 11 ≥ first_seen day 10) over 2
        // active days.
        assert!((v[4] - 0.5).abs() < 1e-9, "daily installs {}", v[4]);
        assert_eq!(v[5], 0.0);
    }

    #[test]
    fn account_features() {
        let v = device_features(&observation(), 0.0);
        assert_eq!(v[6], 2.0, "gmail accounts");
        assert_eq!(v[7], 1.0, "non-gmail accounts");
        assert_eq!(v[8], 2.0, "distinct services");
    }

    #[test]
    fn review_features() {
        let v = device_features(&observation(), 0.0);
        assert_eq!(v[9], 1.0, "installed-and-reviewed");
        assert_eq!(v[10], 2.0, "total apps reviewed incl. uninstalled");
        assert!((v[11] - 1.5).abs() < 1e-9, "3 reviews / 2 gmail accounts");
    }

    #[test]
    fn no_gmail_accounts_gives_zero_rate() {
        let mut obs = observation();
        obs.record.accounts.retain(|a| !a.service.is_gmail());
        let v = device_features(&obs, 0.0);
        assert_eq!(v[6], 0.0);
        assert_eq!(v[11], 0.0);
    }
}
