//! Online review-side aggregators for the streaming feature engine.
//!
//! The batch extractor ([`crate::app_features`]) derives the review-timing
//! feature families (§7.1 (1)–(3)) by re-scanning the app's review list:
//! reviewer sets split around the monitoring window, install-to-review
//! delays, and inter-review gaps. [`AppReviewStream`] maintains the same
//! quantities as single-pass folds over the *coalesced* (time-sorted)
//! review stream, built from the shared aggregator primitives in
//! [`racket_types::online`]:
//!
//! * [`Distinct`] for the before/during/after reviewer cardinalities;
//! * [`MinMax`] for delay extrema — its min latch is literally the batch
//!   `fold(f64::INFINITY, f64::min)`, so emission is bit-identical;
//! * [`GapAccum`] for inter-review gaps — exact integer second gaps whose
//!   min/max map to the batch's per-gap `secs as f64 / day` values through
//!   a monotone transform (same bits);
//! * [`Welford`] for tolerance-grade delay mean/variance diagnostics
//!   (never used for feature emission — see the module docs of
//!   [`racket_types::online`]).
//!
//! The f64 *sums* that feed emitted means (`delay_sum_days`,
//! `gap_sum_days`) are folded in the batch's canonical order (reviews
//! sorted stably by `posted_at`, as [`crate::DeviceObservation::reviews_for`]
//! returns them), replicating `iter().sum::<f64>()` add-for-add so the
//! emitted means match batch bit-for-bit.

pub use racket_types::online::{Distinct, GapAccum, MinMax, Welford};

use racket_types::{GoogleId, Review, SimTime, TimeInterval};

/// Seconds per day, matching the constant in [`crate::app_features`].
pub(crate) const DAY_SECS: f64 = 86_400.0;

/// Streaming sufficient statistics for the review-derived features of one
/// (app, device) instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AppReviewStream {
    /// Total reviews folded for this app.
    pub n_reviews: u64,
    /// Reviewers who posted before the monitoring window.
    pub before: Distinct<GoogleId>,
    /// Reviewers who posted during the monitoring window.
    pub during: Distinct<GoogleId>,
    /// Reviewers who posted after the monitoring window.
    pub after: Distinct<GoogleId>,
    /// Sum of non-negative install-to-review delays, in days, folded in
    /// coalesced review order (bit-compatible with the batch sum).
    pub delay_sum_days: f64,
    /// Extrema/count of the same delays (min latch = batch min fold).
    pub delays: MinMax,
    /// Tolerance-grade delay mean/variance (diagnostics only).
    pub delay_stats: Welford,
    /// Exact integer inter-review gaps, in seconds.
    pub gaps: GapAccum,
    /// Sum of inter-review gaps in days, folded in coalesced order
    /// (bit-compatible with the batch sum; `gaps.sum / DAY` is *not*).
    pub gap_sum_days: f64,
    /// Time of the previously folded review (gap anchor).
    pub last_posted: Option<SimTime>,
}

impl AppReviewStream {
    /// The empty stream.
    pub fn new() -> Self {
        AppReviewStream::default()
    }

    /// Fold the next review in coalesced (nondecreasing `posted_at`)
    /// order. `install_time` is the app's install time on the device;
    /// `monitoring` is the device's monitored window.
    pub fn fold(&mut self, review: &Review, install_time: SimTime, monitoring: TimeInterval) {
        self.n_reviews += 1;

        // (1) reviewer sets relative to the monitoring window.
        if review.posted_at < monitoring.start {
            self.before.fold(review.reviewer);
        } else if review.posted_at < monitoring.end {
            self.during.fold(review.reviewer);
        } else {
            self.after.fold(review.reviewer);
        }

        // (2) install-to-review delay (non-negative only, §6.3).
        let d = review.posted_at.signed_delta_secs(install_time);
        if d >= 0 {
            let days = d as f64 / DAY_SECS;
            self.delay_sum_days += days;
            self.delays.fold(days);
            self.delay_stats.fold(days);
        }

        // (3) inter-review gap from the previous review.
        if let Some(last) = self.last_posted {
            let gap_days = (review.posted_at - last).as_secs() as f64 / DAY_SECS;
            self.gap_sum_days += gap_days;
        }
        self.gaps.fold(review.posted_at.as_secs());
        self.last_posted = Some(review.posted_at);
    }

    /// Emitted §7.1 family (2): `(avg_install_review_days,
    /// min_install_review_days)` with the −1 sentinels.
    pub fn delay_features(&self) -> (f64, f64) {
        if self.delays.count == 0 {
            (-1.0, -1.0)
        } else {
            (
                self.delay_sum_days / self.delays.count as f64,
                self.delays.min,
            )
        }
    }

    /// Emitted §7.1 family (3): `(mean, min, max)` inter-review days with
    /// the −1 sentinels.
    pub fn gap_features(&self) -> (f64, f64, f64) {
        if self.gaps.count == 0 {
            (-1.0, -1.0, -1.0)
        } else {
            (
                self.gap_sum_days / self.gaps.count as f64,
                self.gaps.min as f64 / DAY_SECS,
                self.gaps.max as f64 / DAY_SECS,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{AppId, Rating};

    fn review(reviewer: u64, day: u64) -> Review {
        Review::new(
            AppId(1),
            GoogleId(reviewer),
            SimTime::from_days(day),
            Rating::FIVE,
        )
    }

    #[test]
    fn review_stream_matches_hand_computed_features() {
        let monitoring = TimeInterval::new(SimTime::from_days(10), SimTime::from_days(14));
        let install = SimTime::from_days(2);
        let mut s = AppReviewStream::new();
        for r in [review(1, 3), review(2, 12), review(1, 13)] {
            s.fold(&r, install, monitoring);
        }
        assert_eq!(s.n_reviews, 3);
        assert_eq!(s.before.len(), 1);
        assert_eq!(s.during.len(), 2);
        assert_eq!(s.after.len(), 0);
        let (avg, min) = s.delay_features();
        assert!((avg - 22.0 / 3.0).abs() < 1e-12);
        assert_eq!(min, 1.0);
        let (mean, gmin, gmax) = s.gap_features();
        assert_eq!((mean, gmin, gmax), (5.0, 1.0, 9.0));
        // Welford diagnostics agree with the exact mean in tolerance.
        assert!((s.delay_stats.mean - avg).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_emits_sentinels() {
        let s = AppReviewStream::new();
        assert_eq!(s.delay_features(), (-1.0, -1.0));
        assert_eq!(s.gap_features(), (-1.0, -1.0, -1.0));
    }
}
