//! §7.1 app-usage features.
//!
//! One instance is an (app A, device D) pair: "features extracted from the
//! use of A on the device D" (§7.2). The eleven feature families of §7.1
//! expand into the 19 numeric columns below. Missing-value semantics: time
//! features use −1.0 when the quantity is undefined (e.g. the app was
//! never reviewed from the device), so tree learners can branch on
//! presence, and VirusTotal's coverage gap maps to 0 flags.

use crate::observation::DeviceObservation;
use racket_types::AppId;

/// Column names of the app-usage feature vector, aligned with
/// [`app_features`]. These names appear in the Figure 13 importance plot.
pub const APP_FEATURE_NAMES: [&str; 19] = [
    "n_reviewing_accounts_before", // (1) device accounts reviewing before install of RacketStore
    "n_reviewing_accounts_during", // (1) … while RacketStore was installed
    "n_reviewing_accounts_after",  // (1) … after it was uninstalled
    "avg_install_review_days",     // (2) mean install-to-review delay
    "min_install_review_days",     // (2) fastest review after install
    "mean_inter_review_days",      // (3) consecutive review gaps, mean
    "min_inter_review_days",       // (3) … min
    "max_inter_review_days",       // (3) … max
    "opened_multiple_days",        // (4) 0/1
    "fg_snapshots_per_day",        // (5) on-screen fast snapshots per active day
    "device_snapshots_per_day",    // (6) device-wide snapshots per active day
    "inner_retention_days",        // (7) installed coverage during monitoring
    "installed_before_racketstore", // (7) 0/1
    "installed_at_end",            // (7) 0/1
    "n_normal_permissions",        // (8)
    "n_dangerous_permissions",     // (8)
    "n_permissions_granted",       // (9)
    "n_permissions_denied",        // (9)
    "vt_flags",                    // (10)
];

/// Index of the install/uninstall-count feature appended by
/// [`app_features`] — kept separate in the names list because the paper
/// counts family (11) as one feature over both event kinds.
pub const N_APP_FEATURES: usize = APP_FEATURE_NAMES.len() + 2;

/// Full column names including family (11).
pub fn app_feature_names() -> Vec<String> {
    let mut names: Vec<String> = APP_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    names.push("n_installs_monitored".into()); // (11)
    names.push("n_uninstalls_monitored".into()); // (11)
    names
}

/// Extract the §7.1 feature vector for app `app` on the observed device.
///
/// # Panics
/// If the app was never observed on the device (no metadata).
pub fn app_features(obs: &DeviceObservation, app: AppId) -> Vec<f64> {
    let info = obs
        .record
        .apps
        .get(&app)
        .unwrap_or_else(|| panic!("{app} was never observed on this device"));
    let day = 86_400.0;
    let monitoring = obs.monitoring;
    let reviews = obs.reviews_for(app);

    // (1) reviewing accounts relative to the monitoring window.
    let mut before = std::collections::HashSet::new();
    let mut during = std::collections::HashSet::new();
    let mut after = std::collections::HashSet::new();
    for r in &reviews {
        if r.posted_at < monitoring.start {
            before.insert(r.reviewer);
        } else if r.posted_at < monitoring.end {
            during.insert(r.reviewer);
        } else {
            after.insert(r.reviewer);
        }
    }

    // (2) install-to-review delays (positive deltas only, §6.3).
    let deltas: Vec<f64> = reviews
        .iter()
        .filter_map(|r| {
            let d = r.posted_at.signed_delta_secs(info.install_time);
            (d >= 0).then_some(d as f64 / day)
        })
        .collect();
    let (avg_delay, min_delay) = if deltas.is_empty() {
        (-1.0, -1.0)
    } else {
        (
            deltas.iter().sum::<f64>() / deltas.len() as f64,
            deltas.iter().copied().fold(f64::INFINITY, f64::min),
        )
    };

    // (3) inter-review times between consecutive device reviews of the app.
    let gaps: Vec<f64> = reviews
        .windows(2)
        .map(|w| (w[1].posted_at - w[0].posted_at).as_secs() as f64 / day)
        .collect();
    let (gap_mean, gap_min, gap_max) = if gaps.is_empty() {
        (-1.0, -1.0, -1.0)
    } else {
        (
            gaps.iter().sum::<f64>() / gaps.len() as f64,
            gaps.iter().copied().fold(f64::INFINITY, f64::min),
            gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    };

    // (4)–(5) foreground behaviour from fast snapshots.
    let fg = obs.record.foreground.get(&app);
    let opened_multiple_days = fg.is_some_and(|days| days.len() > 1);
    let fg_per_day = fg
        .map(|days| days.values().sum::<u64>() as f64 / obs.record.active_days().max(1) as f64)
        .unwrap_or(0.0);

    // (6) device-wide snapshot rate.
    let device_rate = obs.record.avg_snapshots_per_day();

    // (7) inner retention: installed coverage inside the monitoring window.
    let installed_before = info.install_time < monitoring.start;
    let installed_at_end = obs.record.installed_now.contains(&app);
    let retention_start = info.install_time.max(monitoring.start);
    let retention_end = if installed_at_end {
        monitoring.end
    } else {
        // Uninstalled during monitoring: last uninstall event if observed.
        obs.record
            .uninstall_events
            .iter()
            .filter(|(a, _)| *a == app)
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(monitoring.start)
    };
    let retention_days = if retention_end > retention_start {
        (retention_end - retention_start).as_secs() as f64 / day
    } else {
        0.0
    };

    // (8)–(9) permission footprint.
    let perms = &info.permissions;

    // (10) VirusTotal flags; unavailable reports count as 0.
    let vt = obs.vt_flags.get(&app).copied().flatten().unwrap_or(0);

    // (11) churn of this app during monitoring.
    let n_installs = obs
        .record
        .install_events
        .iter()
        .filter(|(a, _)| *a == app)
        .count();
    let n_uninstalls = obs
        .record
        .uninstall_events
        .iter()
        .filter(|(a, _)| *a == app)
        .count();

    vec![
        before.len() as f64,
        during.len() as f64,
        after.len() as f64,
        avg_delay,
        min_delay,
        gap_mean,
        gap_min,
        gap_max,
        f64::from(u8::from(opened_multiple_days)),
        fg_per_day,
        device_rate,
        retention_days,
        f64::from(u8::from(installed_before)),
        f64::from(u8::from(installed_at_end)),
        perms.normal_count() as f64,
        perms.dangerous_count() as f64,
        perms.granted.len() as f64,
        perms.denied.len() as f64,
        f64::from(vt),
        n_installs as f64,
        n_uninstalls as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{
        ApkHash, FastSnapshot, GoogleId, InstallDelta, InstallId, InstalledApp, ParticipantId,
        Permission, PermissionProfile, Rating, Review, SimTime, Snapshot, TimeInterval,
    };
    use std::collections::{HashMap, HashSet};

    const P: ParticipantId = ParticipantId(111_111);
    const I: InstallId = InstallId(1);

    fn base_observation() -> DeviceObservation {
        let mut server = racket_collect::CollectionServer::new([P]);
        let perms = PermissionProfile {
            requested: vec![
                Permission::Internet,
                Permission::Camera,
                Permission::ReadContacts,
            ],
            granted: vec![Permission::Camera],
            denied: vec![Permission::ReadContacts],
        };
        // App installed on day 2 (before monitoring starts on day 10).
        server.ingest_snapshot(&Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_days(10),
            foreground_app: Some(AppId(1)),
            screen_on: true,
            battery_pct: 90,
            install_events: vec![InstallDelta::Installed(InstalledApp {
                stopped: false,
                ..InstalledApp::fresh(AppId(1), SimTime::from_days(2), perms, ApkHash([1; 16]))
            })],
        }));
        // A second day of foreground observations.
        server.ingest_snapshot(&Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_days(11),
            foreground_app: Some(AppId(1)),
            screen_on: true,
            battery_pct: 85,
            install_events: vec![],
        }));
        let record = server.record(I).unwrap().clone();
        DeviceObservation {
            record,
            monitoring: TimeInterval::new(SimTime::from_days(10), SimTime::from_days(14)),
            google_ids: vec![GoogleId(1), GoogleId(2)],
            reviews_by_app: HashMap::new(),
            vt_flags: HashMap::new(),
            preinstalled: HashSet::new(),
        }
    }

    #[test]
    fn feature_vector_has_stable_width_and_names() {
        let obs = base_observation();
        let v = app_features(&obs, AppId(1));
        assert_eq!(v.len(), N_APP_FEATURES);
        assert_eq!(app_feature_names().len(), N_APP_FEATURES);
    }

    #[test]
    fn unreviewed_app_uses_sentinels() {
        let obs = base_observation();
        let v = app_features(&obs, AppId(1));
        assert_eq!(v[3], -1.0, "avg delay sentinel");
        assert_eq!(v[4], -1.0, "min delay sentinel");
        assert_eq!(v[5], -1.0, "inter-review sentinel");
    }

    #[test]
    fn review_timing_features() {
        let mut obs = base_observation();
        // Three reviews from two accounts: day 3 (before monitoring),
        // day 12 and day 13 (during).
        obs.reviews_by_app.insert(
            AppId(1),
            vec![
                Review::new(AppId(1), GoogleId(1), SimTime::from_days(3), Rating::FIVE),
                Review::new(AppId(1), GoogleId(2), SimTime::from_days(12), Rating::FIVE),
                Review::new(AppId(1), GoogleId(1), SimTime::from_days(13), Rating::FOUR),
            ],
        );
        let v = app_features(&obs, AppId(1));
        assert_eq!(v[0], 1.0, "one account reviewed before monitoring");
        assert_eq!(v[1], 2.0, "two accounts during");
        assert_eq!(v[2], 0.0);
        // Install on day 2 → deltas 1, 10, 11 days; mean = 22/3.
        assert!((v[3] - 22.0 / 3.0).abs() < 1e-9, "avg delay {}", v[3]);
        assert!((v[4] - 1.0).abs() < 1e-9, "min delay {}", v[4]);
        // Gaps: 9 and 1 days.
        assert!((v[5] - 5.0).abs() < 1e-9, "gap mean {}", v[5]);
        assert!((v[6] - 1.0).abs() < 1e-9);
        assert!((v[7] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn foreground_and_retention_features() {
        let obs = base_observation();
        let v = app_features(&obs, AppId(1));
        assert_eq!(v[8], 1.0, "opened on days 10 and 11");
        assert_eq!(v[9], 1.0, "2 fg snapshots over 2 active days");
        assert_eq!(v[10], 1.0, "2 snapshots over 2 active days");
        // Installed before monitoring and still installed: full window.
        assert!((v[11] - 4.0).abs() < 1e-9, "retention {}", v[11]);
        assert_eq!(v[12], 1.0);
        assert_eq!(v[13], 1.0);
    }

    #[test]
    fn permission_features() {
        let obs = base_observation();
        let v = app_features(&obs, AppId(1));
        assert_eq!(v[14], 1.0, "internet is the only normal permission");
        assert_eq!(v[15], 2.0, "camera + contacts dangerous");
        assert_eq!(v[16], 1.0, "camera granted");
        assert_eq!(v[17], 1.0, "contacts denied");
    }

    #[test]
    fn vt_flags_default_zero_and_pass_through() {
        let mut obs = base_observation();
        assert_eq!(app_features(&obs, AppId(1))[18], 0.0);
        obs.vt_flags.insert(AppId(1), Some(9));
        assert_eq!(app_features(&obs, AppId(1))[18], 9.0);
        obs.vt_flags.insert(AppId(1), None); // coverage gap
        assert_eq!(app_features(&obs, AppId(1))[18], 0.0);
    }

    #[test]
    #[should_panic(expected = "never observed")]
    fn unknown_app_panics() {
        app_features(&base_observation(), AppId(99));
    }
}
