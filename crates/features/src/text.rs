//! Review-text features — the EXPERIMENTS.md ablation column.
//!
//! These columns are extracted from the per-install streaming
//! [`racket_text::TextSketch`] (folded at snapshot-ingest time from
//! reported reviews) and are **not** part of the default §7.1 vector:
//! the paper's classifiers never saw review text, so the baseline vector
//! stays at [`crate::N_APP_FEATURES`] columns and these ride along only
//! in the `+text` ablation run ([`app_features_with_text`]). A text-off
//! study has an empty sketch and every pair gets the all-sentinel row,
//! so the ablation degrades to the baseline rather than erroring.

use crate::observation::DeviceObservation;
use racket_text::hamming;
use racket_types::AppId;

/// Column names of the text ablation block, aligned with
/// [`text_features`].
pub const TEXT_FEATURE_NAMES: [&str; 4] = [
    "n_texted_reviews",            // reviews of this app reported with text
    "mean_review_len",             // mean text length in bytes (−1 if none)
    "rating_sentiment_divergence", // mean |rating tone − lexicon tone| (−1 if none)
    "crossacct_neardup_degree",    // same-app near-dup pairs across accounts
];

/// Hamming threshold for the within-device cross-account near-duplicate
/// degree — matches the detector's `text_max_hamming` default so the
/// feature counts exactly the pairs the campaign text source would
/// verify.
const NEAR_DUP_HAMMING: u32 = 6;

/// Extract the text ablation block for app `app` on the observed device.
///
/// Unlike [`crate::app_features`] this never panics on an unseen app: a
/// pair with no texted reviews is a legitimate observation (text-off
/// studies, organic devices) and maps to the sentinel row
/// `[0, −1, −1, 0]`.
pub fn text_features(obs: &DeviceObservation, app: AppId) -> Vec<f64> {
    let rows: Vec<&racket_text::ReviewRow> = obs
        .record
        .stream
        .text()
        .rows()
        .filter(|r| r.app == app.raw())
        .collect();
    if rows.is_empty() {
        return vec![0.0, -1.0, -1.0, 0.0];
    }
    let n = rows.len() as f64;
    let mean_len = rows.iter().map(|r| f64::from(r.len)).sum::<f64>() / n;

    // Rating–text divergence: both tones normalised to [−1, 1] (rating
    // centred on 3 stars, lexicon score clamped at ±3), mean absolute
    // disagreement halved into [0, 1]. A 5★ review reading "crashes a
    // lot" scores near 1; an honest review near 0.
    let divergence = rows
        .iter()
        .map(|r| {
            let rating_tone = (f64::from(r.rating) - 3.0) / 2.0;
            let text_tone = f64::from(r.sentiment.clamp(-3, 3)) / 3.0;
            (rating_tone - text_tone).abs() / 2.0
        })
        .sum::<f64>()
        / n;

    // Cross-account similarity degree: distinct reviewer pairs on this
    // app whose texts verify as near-duplicates. Organizer-scripted
    // account farms recycle one phrasing across their gmail pool;
    // personal texts are keyed per identity and stay distant.
    let mut neardup_pairs = 0u64;
    for (i, a) in rows.iter().enumerate() {
        for b in &rows[i + 1..] {
            if a.reviewer != b.reviewer && hamming(a.simhash, b.simhash) <= NEAR_DUP_HAMMING {
                neardup_pairs += 1;
            }
        }
    }

    vec![n, mean_len, divergence, neardup_pairs as f64]
}

/// The `+text` ablation vector: the default §7.1 columns followed by the
/// [`TEXT_FEATURE_NAMES`] block.
pub fn app_features_with_text(obs: &DeviceObservation, app: AppId) -> Vec<f64> {
    let mut v = crate::app_features(obs, app);
    v.extend(text_features(obs, app));
    v
}

/// Column names aligned with [`app_features_with_text`].
pub fn app_feature_names_with_text() -> Vec<String> {
    let mut names = crate::app_feature_names();
    names.extend(TEXT_FEATURE_NAMES.iter().map(|s| s.to_string()));
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{
        FastSnapshot, GoogleId, InstallId, ParticipantId, Rating, ReviewEvent, SimTime,
        SlowSnapshot, Snapshot, TimeInterval,
    };
    use std::collections::{HashMap, HashSet};

    const P: ParticipantId = ParticipantId(111_111);
    const I: InstallId = InstallId(1);
    const A: AppId = AppId(1);

    fn observation(reviews: Vec<ReviewEvent>) -> DeviceObservation {
        let mut server = racket_collect::CollectionServer::new([P]);
        server.ingest_snapshot(&Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_days(10),
            foreground_app: Some(A),
            screen_on: true,
            battery_pct: 90,
            install_events: vec![racket_types::InstallDelta::Installed(
                racket_types::InstalledApp::fresh(
                    A,
                    SimTime::from_days(9),
                    racket_types::PermissionProfile::default(),
                    racket_types::ApkHash([1; 16]),
                ),
            )],
        }));
        server.ingest_snapshot(&Snapshot::Slow(SlowSnapshot {
            install_id: I,
            participant_id: P,
            android_id: None,
            time: SimTime::from_days(10),
            accounts: vec![],
            save_mode: false,
            stopped_apps: vec![],
            review_events: reviews,
        }));
        DeviceObservation {
            record: server.record(I).unwrap().clone(),
            monitoring: TimeInterval::new(SimTime::from_days(10), SimTime::from_days(14)),
            google_ids: vec![GoogleId(1), GoogleId(2)],
            reviews_by_app: HashMap::new(),
            vt_flags: HashMap::new(),
            preinstalled: HashSet::new(),
        }
    }

    fn review(reviewer: u64, t: u64, stars: u8, text: &str) -> ReviewEvent {
        ReviewEvent {
            app: A,
            reviewer: GoogleId(reviewer),
            time: SimTime::from_secs(t),
            rating: Rating::new(stars).unwrap(),
            text: text.to_owned(),
        }
    }

    #[test]
    fn textless_pair_gets_sentinels() {
        let obs = observation(vec![]);
        assert_eq!(text_features(&obs, A), vec![0.0, -1.0, -1.0, 0.0]);
        assert_eq!(
            app_features_with_text(&obs, A).len(),
            app_feature_names_with_text().len()
        );
    }

    #[test]
    fn honest_review_has_low_divergence() {
        let obs = observation(vec![review(1, 100, 5, "great app works perfectly love it")]);
        let v = text_features(&obs, A);
        assert_eq!(v[0], 1.0);
        assert!(v[1] > 10.0, "mean length {}", v[1]);
        assert!(v[2] < 0.2, "divergence {}", v[2]);
        assert_eq!(v[3], 0.0);
    }

    #[test]
    fn dishonest_rating_diverges_from_text() {
        let obs = observation(vec![review(1, 100, 5, "terrible crashes a lot useless")]);
        let v = text_features(&obs, A);
        assert!(v[2] > 0.8, "divergence {}", v[2]);
    }

    #[test]
    fn cross_account_copies_raise_the_degree() {
        let template = "great app works perfectly love the new design";
        let obs = observation(vec![
            review(1, 100, 5, template),
            review(2, 200, 5, template),
            review(
                3,
                300,
                5,
                "completely different words about weather patterns",
            ),
        ]);
        let v = text_features(&obs, A);
        assert_eq!(v[0], 3.0);
        assert_eq!(v[3], 1.0, "exactly the template pair");
    }

    #[test]
    fn same_account_copies_do_not_count() {
        let template = "great app works perfectly love the new design";
        let obs = observation(vec![
            review(1, 100, 5, template),
            review(1, 200, 4, template),
        ]);
        let v = text_features(&obs, A);
        assert_eq!(v[3], 0.0, "one reviewer repeating is not cross-account");
    }
}
