//! Feature extraction for the RacketStore detectors.
//!
//! Two feature families, straight from the paper:
//!
//! * [`app`] — the §7.1 *app-usage* features of one (app, device) instance,
//!   modelling the engagement of the device's user with that app: who
//!   reviewed it from the device and when (relative to install and to the
//!   monitoring window), how often it is on screen, how long it stays
//!   installed, its permission footprint and VirusTotal flags;
//! * [`device`] — the §8.1 *device-usage* features: installed/stopped app
//!   counts, churn, account composition, review totals, and the *app
//!   suspiciousness* ratio produced by feeding each installed app through
//!   the §7 app classifier.
//!
//! Both operate on a [`DeviceObservation`] — the joined per-device view the
//! study pipeline assembles from the collection server's install records,
//! the review crawler and the VirusTotal reports.
//!
//! The [`online`] and [`streaming`] modules add the streaming analysis
//! engine (ARCHITECTURE.md §7): single-pass review-side aggregators and a
//! per-device [`DeviceStreamState`] that emits both feature vectors
//! bitwise-equal to the batch extractors, with no post-hoc scan.

#![deny(missing_docs)]

pub mod app;
pub mod device;
pub mod observation;
pub mod online;
pub mod streaming;
pub mod text;

pub use app::{app_feature_names, app_features, APP_FEATURE_NAMES, N_APP_FEATURES};
pub use device::{device_features, DEVICE_FEATURE_NAMES};
pub use observation::DeviceObservation;
pub use online::AppReviewStream;
pub use streaming::DeviceStreamState;
pub use text::{
    app_feature_names_with_text, app_features_with_text, text_features, TEXT_FEATURE_NAMES,
};
