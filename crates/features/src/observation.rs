//! The joined per-device observation that features are extracted from.

use racket_collect::InstallRecord;
use racket_types::{AppId, GoogleId, Review, TimeInterval};
use std::collections::{HashMap, HashSet};

/// Everything the study knows about one (coalesced) physical device:
/// the server-side snapshot aggregate, joined with the crawled reviews
/// posted by the device's accounts and the VirusTotal verdicts for its
/// installed apks.
#[derive(Debug, Clone)]
pub struct DeviceObservation {
    /// Server-side snapshot aggregate (post-fingerprinting).
    pub record: InstallRecord,
    /// The monitored window (RacketStore install interval).
    pub monitoring: TimeInterval,
    /// Google IDs of the Gmail accounts registered on the device, as
    /// resolved by the Google-ID crawler (§5).
    pub google_ids: Vec<GoogleId>,
    /// Reviews posted by those Google IDs, grouped by app. Includes apps
    /// no longer (or never observed) installed — the paper's "total apps
    /// reviewed" counts these.
    pub reviews_by_app: HashMap<AppId, Vec<Review>>,
    /// VirusTotal flag counts for installed apps; `None` when VirusTotal
    /// has no report for the apk (the §6.4 coverage gap).
    pub vt_flags: HashMap<AppId, Option<u8>>,
    /// Apps that shipped with the device image.
    pub preinstalled: HashSet<AppId>,
}

impl DeviceObservation {
    /// Reviews posted by device accounts for one app, sorted by time.
    pub fn reviews_for(&self, app: AppId) -> Vec<&Review> {
        let mut reviews: Vec<&Review> = self
            .reviews_by_app
            .get(&app)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        reviews.sort_by_key(|r| r.posted_at);
        reviews
    }

    /// Number of distinct apps reviewed from device accounts, installed
    /// or not (Figure 6, right).
    pub fn total_apps_reviewed(&self) -> usize {
        self.reviews_by_app
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .count()
    }

    /// Number of *currently installed* apps reviewed from device accounts
    /// (Figure 6, center).
    pub fn installed_and_reviewed(&self) -> usize {
        self.record
            .installed_now
            .iter()
            .filter(|app| self.reviews_by_app.get(app).is_some_and(|v| !v.is_empty()))
            .count()
    }

    /// Total reviews posted from device accounts (Figure 6 right, summed).
    pub fn total_reviews(&self) -> usize {
        self.reviews_by_app.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{InstallId, ParticipantId, Rating, SimTime};

    fn observation() -> DeviceObservation {
        let mut server = racket_collect::CollectionServer::new([ParticipantId(111_111)]);
        // Seed a record through direct ingestion.
        server.ingest_snapshot(&racket_types::Snapshot::Fast(racket_types::FastSnapshot {
            install_id: InstallId(1),
            participant_id: ParticipantId(111_111),
            time: SimTime::from_days(10),
            foreground_app: None,
            screen_on: false,
            battery_pct: 50,
            install_events: vec![racket_types::InstallDelta::Installed(
                racket_types::InstalledApp::fresh(
                    AppId(1),
                    SimTime::from_days(2),
                    racket_types::PermissionProfile::default(),
                    racket_types::ApkHash([1; 16]),
                ),
            )],
        }));
        let record = server.record(InstallId(1)).unwrap().clone();
        let mut reviews_by_app = HashMap::new();
        reviews_by_app.insert(
            AppId(1),
            vec![Review::new(
                AppId(1),
                GoogleId(9),
                SimTime::from_days(3),
                Rating::FIVE,
            )],
        );
        reviews_by_app.insert(
            AppId(2), // reviewed but not installed
            vec![
                Review::new(AppId(2), GoogleId(9), SimTime::from_days(4), Rating::FIVE),
                Review::new(AppId(2), GoogleId(10), SimTime::from_days(5), Rating::FOUR),
            ],
        );
        DeviceObservation {
            record,
            monitoring: TimeInterval::new(SimTime::from_days(10), SimTime::from_days(14)),
            google_ids: vec![GoogleId(9), GoogleId(10)],
            reviews_by_app,
            vt_flags: HashMap::new(),
            preinstalled: HashSet::new(),
        }
    }

    #[test]
    fn review_accessors() {
        let obs = observation();
        assert_eq!(obs.total_apps_reviewed(), 2);
        assert_eq!(obs.installed_and_reviewed(), 1);
        assert_eq!(obs.total_reviews(), 3);
        let sorted = obs.reviews_for(AppId(2));
        assert_eq!(sorted.len(), 2);
        assert!(sorted[0].posted_at <= sorted[1].posted_at);
        assert!(obs.reviews_for(AppId(99)).is_empty());
    }
}
