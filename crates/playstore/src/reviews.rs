//! The Play-Store review log.
//!
//! Append-only per-app review storage with the newest-first pagination the
//! real store exposes and the paper's crawler consumes (§5). Also indexes
//! reviews by reviewer Google ID, which is how the study joined the
//! accounts registered on participant devices to the 217,041 reviews they
//! had posted.

use racket_types::{AppId, GoogleId, Rating, RatingSummary, Review, SimTime};
use std::collections::HashMap;

/// Append-only review store with per-app and per-reviewer indexes.
#[derive(Debug, Clone, Default)]
pub struct ReviewStore {
    /// Per-app reviews in posting order (oldest first).
    by_app: HashMap<AppId, Vec<Review>>,
    /// Per-reviewer review references `(app, index into by_app[app])`.
    by_reviewer: HashMap<GoogleId, Vec<(AppId, usize)>>,
    /// Per-app rating aggregates.
    summaries: HashMap<AppId, RatingSummary>,
    /// Background review volume per app: reviews posted by the wider user
    /// base outside the simulated fleet. Counted (the store's public
    /// review total, which the §7.2 "≥ 15,000 reviews" labeling rule
    /// reads) but not materialized — the crawler never needs their bodies.
    background: HashMap<AppId, u64>,
    total: u64,
}

impl ReviewStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a review.
    ///
    /// Google Play allows one review per (account, app); a re-review
    /// *replaces* the old one. The same policy applies here: a second
    /// review from the same Google ID updates the original entry's rating
    /// and timestamp instead of appending.
    pub fn post(&mut self, review: Review) {
        let app_log = self.by_app.entry(review.app).or_default();
        // Replace an existing review by the same account, if any.
        if let Some(refs) = self.by_reviewer.get(&review.reviewer) {
            if let Some(&(_, idx)) = refs.iter().find(|(a, _)| *a == review.app) {
                let summary = self.summaries.entry(review.app).or_default();
                summary.star_sum = summary.star_sum - u64::from(app_log[idx].rating.stars())
                    + u64::from(review.rating.stars());
                app_log[idx] = review;
                return;
            }
        }
        let idx = app_log.len();
        app_log.push(review.clone());
        self.by_reviewer
            .entry(review.reviewer)
            .or_default()
            .push((review.app, idx));
        self.summaries
            .entry(review.app)
            .or_default()
            .add(review.rating);
        self.total += 1;
    }

    /// Merge a store built elsewhere (e.g. by one device's history
    /// simulation on a worker thread) into this one.
    ///
    /// Reviews are re-posted app by app in ascending [`AppId`] order, each
    /// app's log in its original posting order, so the result is a pure
    /// function of `other`'s contents — never of the thread that built it.
    /// Re-posting (rather than splicing the maps) preserves the
    /// `by_reviewer` index invariant and the one-review-per-(account, app)
    /// policy across store boundaries. Background volume is summed.
    pub fn absorb(&mut self, other: ReviewStore) {
        let mut apps: Vec<(AppId, Vec<Review>)> = other.by_app.into_iter().collect();
        apps.sort_by_key(|(app, _)| *app);
        for (_, log) in apps {
            for review in log {
                self.post(review);
            }
        }
        let mut background: Vec<(AppId, u64)> = other.background.into_iter().collect();
        background.sort_by_key(|(app, _)| *app);
        for (app, n) in background {
            self.seed_background(app, n);
        }
    }

    /// Total number of (distinct account, app) reviews stored.
    pub fn total_reviews(&self) -> u64 {
        self.total
    }

    /// Number of reviews for one app.
    pub fn review_count(&self, app: AppId) -> usize {
        self.by_app.get(&app).map_or(0, Vec::len)
    }

    /// Aggregate rating of an app.
    pub fn rating(&self, app: AppId) -> Option<f64> {
        self.summaries.get(&app).and_then(RatingSummary::aggregate)
    }

    /// Newest-first page of an app's reviews: `offset` newest reviews are
    /// skipped, up to `limit` returned. This is the interface the crawler
    /// consumes (reviews "sorted by timestamp", §5).
    pub fn newest_page(&self, app: AppId, offset: usize, limit: usize) -> Vec<&Review> {
        let Some(log) = self.by_app.get(&app) else {
            return Vec::new();
        };
        let mut sorted: Vec<&Review> = log.iter().collect();
        sorted.sort_by_key(|r| std::cmp::Reverse(r.posted_at));
        sorted.into_iter().skip(offset).take(limit).collect()
    }

    /// All reviews ever posted by a Google ID (the join the Google-ID
    /// crawler performs).
    pub fn reviews_by(&self, reviewer: GoogleId) -> Vec<&Review> {
        self.by_reviewer
            .get(&reviewer)
            .map(|refs| {
                refs.iter()
                    .map(|&(app, idx)| &self.by_app[&app][idx])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The review a Google ID posted for one app, if any.
    pub fn review_for(&self, reviewer: GoogleId, app: AppId) -> Option<&Review> {
        self.by_reviewer.get(&reviewer).and_then(|refs| {
            refs.iter()
                .find(|(a, _)| *a == app)
                .map(|&(a, idx)| &self.by_app[&a][idx])
        })
    }

    /// Apps that have at least one review.
    pub fn reviewed_apps(&self) -> impl Iterator<Item = AppId> + '_ {
        self.by_app.keys().copied()
    }

    /// Seed `n` background reviews for an app (wider-world volume; see
    /// the `background` field).
    pub fn seed_background(&mut self, app: AppId, n: u64) {
        *self.background.entry(app).or_insert(0) += n;
    }

    /// The app's total public review count: materialized fleet reviews
    /// plus background volume. This is what the store page displays and
    /// what the §7.2 non-suspicious labeling rule thresholds on.
    pub fn public_review_count(&self, app: AppId) -> u64 {
        self.review_count(app) as u64 + self.background.get(&app).copied().unwrap_or(0)
    }
}

/// Convenience constructor used by tests and the fleet simulator.
pub fn review(app: AppId, reviewer: GoogleId, t: SimTime, stars: u8) -> Review {
    Review::new(
        app,
        reviewer,
        t,
        Rating::new(stars).expect("stars in 1..=5"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_count() {
        let mut s = ReviewStore::new();
        s.post(review(AppId(1), GoogleId(1), SimTime::from_secs(10), 5));
        s.post(review(AppId(1), GoogleId(2), SimTime::from_secs(20), 4));
        s.post(review(AppId(2), GoogleId(1), SimTime::from_secs(30), 1));
        assert_eq!(s.total_reviews(), 3);
        assert_eq!(s.review_count(AppId(1)), 2);
        assert_eq!(s.rating(AppId(1)), Some(4.5));
        assert_eq!(s.rating(AppId(3)), None);
    }

    #[test]
    fn re_review_replaces() {
        let mut s = ReviewStore::new();
        s.post(review(AppId(1), GoogleId(1), SimTime::from_secs(10), 1));
        s.post(review(AppId(1), GoogleId(1), SimTime::from_secs(99), 5));
        assert_eq!(s.total_reviews(), 1);
        assert_eq!(s.review_count(AppId(1)), 1);
        assert_eq!(s.rating(AppId(1)), Some(5.0));
        let r = s.review_for(GoogleId(1), AppId(1)).unwrap();
        assert_eq!(r.posted_at, SimTime::from_secs(99));
    }

    #[test]
    fn newest_page_ordering_and_pagination() {
        let mut s = ReviewStore::new();
        for i in 0..10 {
            s.post(review(
                AppId(1),
                GoogleId(i),
                SimTime::from_secs(i * 100),
                5,
            ));
        }
        let page = s.newest_page(AppId(1), 0, 3);
        assert_eq!(page.len(), 3);
        assert_eq!(page[0].posted_at, SimTime::from_secs(900));
        assert_eq!(page[2].posted_at, SimTime::from_secs(700));
        let page2 = s.newest_page(AppId(1), 8, 5);
        assert_eq!(page2.len(), 2, "pagination clamps at the end");
        assert!(s.newest_page(AppId(9), 0, 5).is_empty());
    }

    #[test]
    fn reviewer_index() {
        let mut s = ReviewStore::new();
        s.post(review(AppId(1), GoogleId(7), SimTime::from_secs(1), 5));
        s.post(review(AppId(2), GoogleId(7), SimTime::from_secs(2), 5));
        s.post(review(AppId(3), GoogleId(8), SimTime::from_secs(3), 2));
        assert_eq!(s.reviews_by(GoogleId(7)).len(), 2);
        assert_eq!(s.reviews_by(GoogleId(9)).len(), 0);
        assert!(s.review_for(GoogleId(8), AppId(3)).is_some());
        assert!(s.review_for(GoogleId(8), AppId(1)).is_none());
    }

    #[test]
    fn background_volume_counts_without_materializing() {
        let mut s = ReviewStore::new();
        s.post(review(AppId(1), GoogleId(1), SimTime::from_secs(1), 5));
        s.seed_background(AppId(1), 20_000);
        s.seed_background(AppId(1), 5_000);
        assert_eq!(s.public_review_count(AppId(1)), 25_001);
        assert_eq!(s.review_count(AppId(1)), 1, "bodies not materialized");
        assert_eq!(s.newest_page(AppId(1), 0, 10).len(), 1);
        assert_eq!(s.public_review_count(AppId(2)), 0);
    }

    #[test]
    fn absorb_merges_reviews_background_and_indexes() {
        let mut a = ReviewStore::new();
        a.post(review(AppId(1), GoogleId(1), SimTime::from_secs(10), 5));
        a.seed_background(AppId(1), 100);
        let mut b = ReviewStore::new();
        b.post(review(AppId(2), GoogleId(2), SimTime::from_secs(20), 4));
        b.post(review(AppId(1), GoogleId(2), SimTime::from_secs(30), 3));
        b.seed_background(AppId(1), 50);
        a.absorb(b);
        assert_eq!(a.total_reviews(), 3);
        assert_eq!(a.review_count(AppId(1)), 2);
        assert_eq!(a.public_review_count(AppId(1)), 152);
        // The reviewer index survives the merge.
        assert_eq!(a.reviews_by(GoogleId(2)).len(), 2);
        assert!(a.review_for(GoogleId(2), AppId(2)).is_some());
    }

    #[test]
    fn absorb_applies_re_review_policy_across_stores() {
        let mut a = ReviewStore::new();
        a.post(review(AppId(1), GoogleId(1), SimTime::from_secs(10), 1));
        let mut b = ReviewStore::new();
        b.post(review(AppId(1), GoogleId(1), SimTime::from_secs(99), 5));
        a.absorb(b);
        assert_eq!(a.total_reviews(), 1, "same (account, app) replaces");
        assert_eq!(a.rating(AppId(1)), Some(5.0));
    }

    #[test]
    fn reviewed_apps_iterates_keys() {
        let mut s = ReviewStore::new();
        s.post(review(AppId(1), GoogleId(1), SimTime::from_secs(1), 5));
        s.post(review(AppId(5), GoogleId(1), SimTime::from_secs(2), 5));
        let mut apps: Vec<AppId> = s.reviewed_apps().collect();
        apps.sort();
        assert_eq!(apps, vec![AppId(1), AppId(5)]);
    }
}
