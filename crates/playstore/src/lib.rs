//! Simulated Google Play substrate.
//!
//! The study's server-side data sources (§3 Figure 3, §5) were the Google
//! Play Store — queried by a review crawler that collects each app's most
//! recent reviews every 12 hours — a Gmail→Google-ID side channel used to
//! join registered accounts to their Play reviews, and VirusTotal (62 AV
//! engines) for apk verdicts. None of those are reachable from a
//! reproduction environment, so this crate implements behaviour-preserving
//! simulators for all three:
//!
//! * [`AppCatalog`] — a synthetic app population with categories,
//!   permission profiles, popularity weights, promoted (ASO-campaign) apps
//!   and malware-carrying builds;
//! * [`ReviewStore`] + [`ReviewCrawler`] — an append-only review log with
//!   newest-first pagination, crawled under the paper's exact policy
//!   (100,000-review cap on first contact, crawl-until-seen afterwards);
//! * [`GoogleIdDirectory`] — the e-mail → Google ID mapping (the Gmail
//!   search functionality the authors reported to Google's VRP);
//! * [`VirusTotalSim`] — per-apk flag counts across 62 engines, with the
//!   coverage gaps the paper observed (12,431 of 18,079 hashes resolvable).

#![deny(missing_docs)]

pub mod catalog;
pub mod crawler;
pub mod directory;
pub mod reviews;
pub mod virustotal;

pub use catalog::{AppCatalog, CatalogConfig};
pub use crawler::ReviewCrawler;
pub use directory::GoogleIdDirectory;
pub use reviews::ReviewStore;
pub use virustotal::{VirusTotalSim, VtReport, VT_ENGINE_COUNT};
