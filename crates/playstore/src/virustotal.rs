//! VirusTotal simulator.
//!
//! §6.4 analyses the hashes of apks installed on participant devices with
//! VirusTotal's 62 detection engines: 18,079 distinct hashes were queried,
//! 12,431 were available, 177 apps were flagged by more than one engine,
//! and a ≥ 7-flag threshold (above the 4 of Pendlebury et al.) marks the
//! "most malicious" samples of Figure 12.
//!
//! [`VirusTotalSim`] serves per-hash reports from the catalog's malware
//! ground truth, with a configurable availability gap (hashes the real
//! service had never seen).

use racket_types::ApkHash;
use std::collections::HashMap;

/// Number of detection engines VirusTotal ran in the study.
pub const VT_ENGINE_COUNT: u8 = 62;

/// The ≥-flags threshold used for Figure 12's "most malicious" samples.
pub const HIGH_CONFIDENCE_FLAGS: u8 = 7;

/// One VirusTotal report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VtReport {
    /// Number of engines (out of [`VT_ENGINE_COUNT`]) flagging the apk.
    pub flags: u8,
}

impl VtReport {
    /// Whether the report crosses the Figure 12 high-confidence threshold.
    pub fn is_high_confidence_malware(&self) -> bool {
        self.flags >= HIGH_CONFIDENCE_FLAGS
    }
}

/// The simulated VirusTotal service.
///
/// Queries take `&self` (the budget counter is atomic) so the study's
/// assembly phase can resolve reports from several worker threads at once.
#[derive(Debug, Default)]
pub struct VirusTotalSim {
    reports: HashMap<ApkHash, VtReport>,
    unavailable: std::collections::HashSet<ApkHash>,
    queries: std::sync::atomic::AtomicU64,
}

impl Clone for VirusTotalSim {
    fn clone(&self) -> Self {
        VirusTotalSim {
            reports: self.reports.clone(),
            unavailable: self.unavailable.clone(),
            queries: std::sync::atomic::AtomicU64::new(self.queries_issued()),
        }
    }
}

impl VirusTotalSim {
    /// Build from the catalog's malware ground truth: every known hash gets
    /// a clean (0-flag) report, the listed malware hashes get their flag
    /// counts, and `unavailable` hashes return `None` (the 18,079 − 12,431
    /// coverage gap).
    pub fn new(
        all_hashes: impl IntoIterator<Item = ApkHash>,
        malware: &[(ApkHash, u8)],
        unavailable: impl IntoIterator<Item = ApkHash>,
    ) -> Self {
        let mut reports = HashMap::new();
        for h in all_hashes {
            reports.insert(h, VtReport { flags: 0 });
        }
        for &(h, flags) in malware {
            reports.insert(
                h,
                VtReport {
                    flags: flags.min(VT_ENGINE_COUNT),
                },
            );
        }
        VirusTotalSim {
            reports,
            unavailable: unavailable.into_iter().collect(),
            queries: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Query one hash. `None` means VirusTotal has no report for it.
    pub fn query(&self, hash: ApkHash) -> Option<VtReport> {
        self.queries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if self.unavailable.contains(&hash) {
            return None;
        }
        self.reports.get(&hash).copied()
    }

    /// Number of queries issued (the study's research-license budget).
    pub fn queries_issued(&self) -> u64 {
        self.queries.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of hashes with available reports.
    pub fn available_count(&self) -> usize {
        self.reports.len()
            - self
                .reports
                .keys()
                .filter(|h| self.unavailable.contains(h))
                .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(b: u8) -> ApkHash {
        ApkHash([b; 16])
    }

    #[test]
    fn clean_flagged_and_missing() {
        let vt = VirusTotalSim::new([h(1), h(2), h(3)], &[(h(2), 9)], [h(3)]);
        assert_eq!(vt.query(h(1)), Some(VtReport { flags: 0 }));
        let m = vt.query(h(2)).unwrap();
        assert_eq!(m.flags, 9);
        assert!(m.is_high_confidence_malware());
        assert_eq!(vt.query(h(3)), None, "coverage gap");
        assert_eq!(vt.query(h(9)), None, "never-seen hash");
        assert_eq!(vt.queries_issued(), 4);
        assert_eq!(vt.available_count(), 2);
    }

    #[test]
    fn threshold_matches_figure_12() {
        assert!(!VtReport { flags: 6 }.is_high_confidence_malware());
        assert!(VtReport { flags: 7 }.is_high_confidence_malware());
    }

    #[test]
    fn flags_clamped_to_engine_count() {
        let vt = VirusTotalSim::new([h(1)], &[(h(1), 200)], []);
        assert_eq!(vt.query(h(1)).unwrap().flags, VT_ENGINE_COUNT);
    }
}
