//! The Gmail → Google ID side channel.
//!
//! §5: the authors found that responses of Gmail's e-mail search
//! functionality embed the account's Google ID, letting a third party map
//! any Gmail address to the ID under which its Play reviews are posted.
//! They reported this to Google's VRP (issue 156369357); Google ruled it
//! "intended behavior". [`GoogleIdDirectory`] models that lookup.

use racket_types::{AccountId, GoogleId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Registry mapping Gmail accounts to their Google IDs.
///
/// In the simulation, accounts are created with their Google identity at
/// fleet-generation time; the directory is the *server-side* view that the
/// Google-ID crawler queries, one lookup per registered Gmail address.
/// Lookups take `&self` (the counter is atomic) so the study's assembly
/// phase can resolve accounts from several worker threads at once.
#[derive(Debug, Default)]
pub struct GoogleIdDirectory {
    by_account: HashMap<AccountId, GoogleId>,
    lookups: AtomicU64,
}

impl Clone for GoogleIdDirectory {
    fn clone(&self) -> Self {
        GoogleIdDirectory {
            by_account: self.by_account.clone(),
            lookups: AtomicU64::new(self.lookups.load(Ordering::Relaxed)),
        }
    }
}

impl GoogleIdDirectory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a Gmail account's identity (done at account creation).
    pub fn register(&mut self, account: AccountId, google_id: GoogleId) {
        self.by_account.insert(account, google_id);
    }

    /// Merge every registration of `other` into this directory (used when
    /// per-device directories built in parallel are folded into the fleet
    /// directory). Lookup counts are summed.
    pub fn absorb(&mut self, other: GoogleIdDirectory) {
        self.by_account.extend(other.by_account);
        self.lookups
            .fetch_add(other.lookups.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resolve an account to its Google ID — the Gmail-search side channel.
    /// Counts each lookup, mirroring that every resolution costs a crawl
    /// request.
    pub fn lookup(&self, account: AccountId) -> Option<GoogleId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.by_account.get(&account).copied()
    }

    /// Number of side-channel lookups issued so far.
    pub fn lookups_issued(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Number of registered accounts.
    pub fn len(&self) -> usize {
        self.by_account.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.by_account.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_merges_registrations_and_counts() {
        let mut a = GoogleIdDirectory::new();
        a.register(AccountId(1), GoogleId(100));
        a.lookup(AccountId(1));
        let mut b = GoogleIdDirectory::new();
        b.register(AccountId(2), GoogleId(200));
        b.lookup(AccountId(2));
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.lookup(AccountId(2)), Some(GoogleId(200)));
        assert_eq!(a.lookups_issued(), 3);
    }

    #[test]
    fn register_and_lookup() {
        let mut d = GoogleIdDirectory::new();
        d.register(AccountId(1), GoogleId(100));
        assert_eq!(d.lookup(AccountId(1)), Some(GoogleId(100)));
        assert_eq!(d.lookup(AccountId(2)), None);
        assert_eq!(d.lookups_issued(), 2);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn re_register_overwrites() {
        let mut d = GoogleIdDirectory::new();
        d.register(AccountId(1), GoogleId(100));
        d.register(AccountId(1), GoogleId(200));
        assert_eq!(d.lookup(AccountId(1)), Some(GoogleId(200)));
        assert_eq!(d.len(), 1);
    }
}
