//! The review crawler.
//!
//! §5: *"The review crawler … collects reviews posted for apps installed on
//! participant devices every 12 hours. … The first time an app was
//! processed, we collected reviews until hitting a threshold of 100,000
//! reviews. In subsequent collection efforts, we collected the most recent
//! reviews until finding a previously collected review."*
//!
//! [`ReviewCrawler`] implements exactly that incremental policy against a
//! [`ReviewStore`], maintaining its own local copy of everything crawled.

use crate::reviews::ReviewStore;
use racket_types::{AppId, GoogleId, Review, SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Crawl cadence from the paper.
pub const CRAWL_PERIOD: SimDuration = SimDuration(12 * 3600);
/// First-contact review cap from the paper.
pub const FIRST_CRAWL_CAP: usize = 100_000;
/// Page size per store query (an implementation knob; the paper queries
/// "sorted by timestamp" pages).
const PAGE: usize = 200;

/// Incremental, stateful crawler over a [`ReviewStore`].
#[derive(Debug, Clone, Default)]
pub struct ReviewCrawler {
    /// Everything crawled so far, keyed by app.
    collected: HashMap<AppId, Vec<Review>>,
    /// Identity of already-seen reviews: (app, reviewer, posted_at).
    seen: HashSet<(AppId, GoogleId, SimTime)>,
    /// Apps known to the crawler (first crawl done).
    known: HashSet<AppId>,
    /// Last crawl time, if any.
    last_crawl: Option<SimTime>,
}

impl ReviewCrawler {
    /// Create an idle crawler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a crawl is due at `now` (every 12 h).
    pub fn is_due(&self, now: SimTime) -> bool {
        match self.last_crawl {
            None => true,
            Some(t) => now.saturating_since(t) >= CRAWL_PERIOD,
        }
    }

    /// Crawl one app: first contact pulls up to [`FIRST_CRAWL_CAP`] newest
    /// reviews; afterwards, newest-first until a previously collected
    /// review is encountered. Returns the number of new reviews collected.
    pub fn crawl_app(&mut self, store: &ReviewStore, app: AppId) -> usize {
        let first_contact = self.known.insert(app);
        let cap = if first_contact {
            FIRST_CRAWL_CAP
        } else {
            usize::MAX
        };
        let mut new_reviews = Vec::new();
        let mut offset = 0;
        'pages: loop {
            let page = store.newest_page(app, offset, PAGE);
            if page.is_empty() {
                break;
            }
            for r in &page {
                let key = (r.app, r.reviewer, r.posted_at);
                if self.seen.contains(&key) {
                    // Incremental stop condition: we've caught up.
                    break 'pages;
                }
                new_reviews.push((*r).clone());
                if new_reviews.len() >= cap {
                    break 'pages;
                }
            }
            offset += page.len();
        }
        for r in &new_reviews {
            self.seen.insert((r.app, r.reviewer, r.posted_at));
        }
        let n = new_reviews.len();
        self.collected.entry(app).or_default().extend(new_reviews);
        n
    }

    /// Crawl a set of apps (the apps currently installed on participant
    /// devices) and stamp the crawl time. Returns total new reviews.
    pub fn crawl_all(
        &mut self,
        store: &ReviewStore,
        apps: impl IntoIterator<Item = AppId>,
        now: SimTime,
    ) -> usize {
        let mut total = 0;
        for app in apps {
            total += self.crawl_app(store, app);
        }
        self.last_crawl = Some(now);
        total
    }

    /// All reviews collected for one app (crawl order).
    pub fn reviews(&self, app: AppId) -> &[Review] {
        self.collected.get(&app).map_or(&[], Vec::as_slice)
    }

    /// Collected reviews for `app` posted by a given Google ID — the join
    /// used for install-to-review analysis (§6.3).
    pub fn reviews_by(&self, app: AppId, reviewer: GoogleId) -> Vec<&Review> {
        self.reviews(app)
            .iter()
            .filter(|r| r.reviewer == reviewer)
            .collect()
    }

    /// Total reviews collected across all apps.
    pub fn total_collected(&self) -> usize {
        self.collected.values().map(Vec::len).sum()
    }

    /// Number of distinct apps crawled so far.
    pub fn apps_crawled(&self) -> usize {
        self.known.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reviews::review;

    fn store_with(n: u64) -> ReviewStore {
        let mut s = ReviewStore::new();
        for i in 0..n {
            s.post(review(AppId(1), GoogleId(i), SimTime::from_secs(i * 10), 5));
        }
        s
    }

    #[test]
    fn first_crawl_collects_everything_under_cap() {
        let store = store_with(500);
        let mut c = ReviewCrawler::new();
        let n = c.crawl_app(&store, AppId(1));
        assert_eq!(n, 500);
        assert_eq!(c.total_collected(), 500);
        assert_eq!(c.apps_crawled(), 1);
    }

    #[test]
    fn incremental_crawl_stops_at_seen_reviews() {
        let mut store = store_with(300);
        let mut c = ReviewCrawler::new();
        c.crawl_all(&store, [AppId(1)], SimTime::EPOCH);
        // 40 new reviews arrive later.
        for i in 0..40 {
            store.post(review(
                AppId(1),
                GoogleId(1000 + i),
                SimTime::from_secs(100_000 + i * 5),
                4,
            ));
        }
        let n = c.crawl_app(&store, AppId(1));
        assert_eq!(n, 40, "only the new reviews are collected");
        assert_eq!(c.total_collected(), 340);
    }

    #[test]
    fn repeat_crawl_without_changes_collects_nothing() {
        let store = store_with(50);
        let mut c = ReviewCrawler::new();
        c.crawl_app(&store, AppId(1));
        assert_eq!(c.crawl_app(&store, AppId(1)), 0);
        assert_eq!(c.total_collected(), 50);
    }

    #[test]
    fn crawl_cadence() {
        let store = store_with(10);
        let mut c = ReviewCrawler::new();
        assert!(c.is_due(SimTime::EPOCH));
        c.crawl_all(&store, [AppId(1)], SimTime::EPOCH);
        assert!(!c.is_due(SimTime::from_hours(11)));
        assert!(c.is_due(SimTime::from_hours(12)));
    }

    #[test]
    fn reviews_by_reviewer_filter() {
        let mut store = ReviewStore::new();
        store.post(review(AppId(1), GoogleId(5), SimTime::from_secs(1), 5));
        store.post(review(AppId(1), GoogleId(6), SimTime::from_secs(2), 5));
        let mut c = ReviewCrawler::new();
        c.crawl_app(&store, AppId(1));
        assert_eq!(c.reviews_by(AppId(1), GoogleId(5)).len(), 1);
        assert_eq!(c.reviews_by(AppId(1), GoogleId(9)).len(), 0);
    }

    #[test]
    fn unknown_app_returns_empty() {
        let c = ReviewCrawler::new();
        assert!(c.reviews(AppId(99)).is_empty());
    }
}
