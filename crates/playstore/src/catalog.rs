//! The synthetic app catalog.
//!
//! The study saw 12,341 distinct apps on participant devices (§5). The
//! catalog generates a population with the structure the analyses need:
//!
//! * a small set of *system* apps preinstalled on every device;
//! * popular consumer apps with Zipf-like popularity (what regular users
//!   install);
//! * a long tail of obscure apps;
//! * *promoted* apps — the targets of ASO campaigns, advertised in the
//!   Facebook groups the authors infiltrated (§7.2's suspicious-app rule
//!   requires knowing which apps were advertised for promotion);
//! * apps not on the Play Store at all, including *modded* builds (§6.3);
//! * a minority of malware-carrying builds with VirusTotal flags (§6.4).

use racket_types::{ApkHash, AppCategory, AppId, AppMetadata, Permission};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Sizing and composition of the generated catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogConfig {
    /// Preinstalled system apps (store, mail, maps, browser, dialer, …).
    pub n_system: usize,
    /// Popular consumer apps.
    pub n_popular: usize,
    /// Long-tail consumer apps.
    pub n_tail: usize,
    /// ASO-promoted apps.
    pub n_promoted: usize,
    /// Apps only available outside Google Play (incl. modded builds).
    pub n_off_store: usize,
    /// Fraction of promoted apps whose builds carry malware flags.
    pub promoted_malware_rate: f64,
    /// Fraction of tail apps whose builds carry malware flags.
    pub tail_malware_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            n_system: 12,
            n_popular: 400,
            n_tail: 1200,
            n_promoted: 300,
            n_off_store: 40,
            promoted_malware_rate: 0.12,
            tail_malware_rate: 0.02,
            seed: 2021,
        }
    }
}

/// The generated catalog plus the metadata the simulator needs per app.
#[derive(Debug, Clone)]
pub struct AppCatalog {
    apps: Vec<AppMetadata>,
    /// Popularity weight per app (index = AppId.0).
    popularity: Vec<f64>,
    /// Indices of each slice of the population.
    system: Vec<AppId>,
    consumer: Vec<AppId>,
    promoted: Vec<AppId>,
    off_store: Vec<AppId>,
    /// Apk hashes flagged as malware, with engine-flag counts.
    malware: Vec<(ApkHash, u8)>,
}

impl AppCatalog {
    /// Generate a catalog from a config.
    pub fn generate(config: &CatalogConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut apps = Vec::new();
        let mut popularity = Vec::new();
        let mut system = Vec::new();
        let mut consumer = Vec::new();
        let mut promoted = Vec::new();
        let mut off_store = Vec::new();
        let mut malware = Vec::new();

        let mut next_id = 0u32;
        let mut push = |apps: &mut Vec<AppMetadata>,
                        popularity: &mut Vec<f64>,
                        rng: &mut StdRng,
                        package: String,
                        category: AppCategory,
                        weight: f64,
                        on_play_store: bool,
                        modded: bool| {
            let id = AppId(next_id);
            next_id += 1;
            let permissions = Self::sample_permissions(rng, category);
            let mut hash = [0u8; 16];
            rng.fill(&mut hash);
            apps.push(AppMetadata {
                id,
                package,
                category,
                permissions,
                apk_hash: ApkHash(hash),
                on_play_store,
                modded,
            });
            popularity.push(weight);
            id
        };

        // System apps: ship with the image, always present, highly used.
        const SYSTEM_PACKAGES: [&str; 12] = [
            "com.android.vending",
            "com.google.android.gm",
            "com.google.android.apps.maps",
            "com.android.chrome",
            "com.samsung.android.messaging",
            "com.samsung.android.incallui",
            "com.google.android.music",
            "com.android.camera",
            "com.android.gallery3d",
            "com.android.settings",
            "com.google.android.youtube",
            "com.android.dialer",
        ];
        for i in 0..config.n_system {
            let pkg = SYSTEM_PACKAGES
                .get(i)
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("com.android.system{i}"));
            let id = push(
                &mut apps,
                &mut popularity,
                &mut rng,
                pkg,
                AppCategory::System,
                0.0, // never chosen for installation; preinstalled instead
                true,
                false,
            );
            system.push(id);
        }

        // Popular consumer apps: Zipf weights.
        let consumer_categories = [
            AppCategory::Social,
            AppCategory::Communication,
            AppCategory::Game,
            AppCategory::Entertainment,
            AppCategory::Shopping,
            AppCategory::Music,
            AppCategory::Finance,
            AppCategory::Photography,
            AppCategory::Tools,
            AppCategory::News,
        ];
        for i in 0..config.n_popular {
            let category = consumer_categories[i % consumer_categories.len()];
            let id = push(
                &mut apps,
                &mut popularity,
                &mut rng,
                format!("com.popular.app{i}"),
                category,
                1.0 / (i + 1) as f64, // Zipf
                true,
                false,
            );
            consumer.push(id);
        }

        // Long tail.
        for i in 0..config.n_tail {
            let category = consumer_categories[(i * 7) % consumer_categories.len()];
            let is_malware = rng.gen_bool(config.tail_malware_rate);
            let id = push(
                &mut apps,
                &mut popularity,
                &mut rng,
                format!("com.tail.app{i}"),
                category,
                0.002,
                true,
                false,
            );
            consumer.push(id);
            if is_malware {
                malware.push((apps[id.0 as usize].apk_hash, rng.gen_range(1..=10)));
            }
        }

        // Promoted apps: obscure, permission-hungry, sometimes malicious.
        for i in 0..config.n_promoted {
            let category = consumer_categories[(i * 3) % consumer_categories.len()];
            let id = push(
                &mut apps,
                &mut popularity,
                &mut rng,
                format!("com.promo.app{i}"),
                category,
                0.0005, // essentially never organically installed
                true,
                false,
            );
            promoted.push(id);
            if rng.gen_bool(config.promoted_malware_rate) {
                // Promoted malware draws more engine flags (§6.4: worker
                // malware tends to be flagged by more engines).
                malware.push((apps[id.0 as usize].apk_hash, rng.gen_range(5..=20)));
            }
        }

        // Off-store apps, half of them modded builds of popular apps.
        for i in 0..config.n_off_store {
            let modded = i % 2 == 0;
            let id = push(
                &mut apps,
                &mut popularity,
                &mut rng,
                if modded {
                    format!("com.modded.premium{i}")
                } else {
                    format!("com.thirdparty.app{i}")
                },
                AppCategory::Entertainment,
                0.001,
                false,
                modded,
            );
            off_store.push(id);
            if modded && rng.gen_bool(0.3) {
                malware.push((apps[id.0 as usize].apk_hash, rng.gen_range(2..=15)));
            }
        }

        AppCatalog {
            apps,
            popularity,
            system,
            consumer,
            promoted,
            off_store,
            malware,
        }
    }

    /// Sample a permission manifest for a category: every app gets the
    /// basic normal permissions plus a category-dependent number of
    /// dangerous ones.
    fn sample_permissions(rng: &mut StdRng, category: AppCategory) -> Vec<Permission> {
        let mut perms = vec![Permission::Internet, Permission::AccessNetworkState];
        if rng.gen_bool(0.6) {
            perms.push(Permission::WakeLock);
        }
        if rng.gen_bool(0.3) {
            perms.push(Permission::ReceiveBootCompleted);
        }
        if rng.gen_bool(0.4) {
            perms.push(Permission::Vibrate);
        }
        let dangerous: Vec<Permission> = Permission::dangerous().collect();
        let n_dangerous = match category {
            AppCategory::System => rng.gen_range(2..6),
            AppCategory::Social | AppCategory::Communication => rng.gen_range(4..10),
            AppCategory::Game | AppCategory::Entertainment => rng.gen_range(1..5),
            _ => rng.gen_range(0..7),
        };
        let mut pool = dangerous;
        pool.shuffle(rng);
        perms.extend(pool.into_iter().take(n_dangerous));
        perms
    }

    /// All apps.
    pub fn apps(&self) -> &[AppMetadata] {
        &self.apps
    }

    /// Metadata of one app.
    pub fn app(&self, id: AppId) -> &AppMetadata {
        &self.apps[id.0 as usize]
    }

    /// Number of apps in the catalog.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Preinstalled system apps.
    pub fn system_apps(&self) -> &[AppId] {
        &self.system
    }

    /// Consumer apps (popular + tail) a regular user installs from.
    pub fn consumer_apps(&self) -> &[AppId] {
        &self.consumer
    }

    /// ASO-campaign target apps.
    pub fn promoted_apps(&self) -> &[AppId] {
        &self.promoted
    }

    /// Apps not distributed through Google Play.
    pub fn off_store_apps(&self) -> &[AppId] {
        &self.off_store
    }

    /// The malware ground truth: `(apk hash, engines flagging it)` pairs,
    /// consumed by [`crate::VirusTotalSim`].
    pub fn malware_hashes(&self) -> &[(ApkHash, u8)] {
        &self.malware
    }

    /// Sample a consumer app, weighted by popularity.
    pub fn sample_consumer_app(&self, rng: &mut impl Rng) -> AppId {
        self.sample_consumer_prefix(rng, self.consumer.len())
    }

    /// Sample from the `k` most popular consumer apps only.
    ///
    /// Models taste breadth: ASO workers' *personal* installs concentrate
    /// on mainstream apps, while regular users also reach deep into the
    /// long tail (niche games, local services) — which is what leaves the
    /// §7.2 non-suspicious rule a population of regular-exclusive apps.
    pub fn sample_mainstream_app(&self, rng: &mut impl Rng, k: usize) -> AppId {
        self.sample_consumer_prefix(rng, k.clamp(1, self.consumer.len()))
    }

    fn sample_consumer_prefix(&self, rng: &mut impl Rng, k: usize) -> AppId {
        let slice = &self.consumer[..k.min(self.consumer.len())];
        let total: f64 = slice.iter().map(|id| self.popularity[id.0 as usize]).sum();
        let mut target = rng.gen::<f64>() * total;
        for &id in slice {
            target -= self.popularity[id.0 as usize];
            if target <= 0.0 {
                return id;
            }
        }
        *slice.last().expect("catalog has consumer apps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> AppCatalog {
        AppCatalog::generate(&CatalogConfig::default())
    }

    #[test]
    fn population_sizes() {
        let cfg = CatalogConfig::default();
        let c = catalog();
        assert_eq!(
            c.len(),
            cfg.n_system + cfg.n_popular + cfg.n_tail + cfg.n_promoted + cfg.n_off_store
        );
        assert_eq!(c.system_apps().len(), cfg.n_system);
        assert_eq!(c.promoted_apps().len(), cfg.n_promoted);
        assert_eq!(c.off_store_apps().len(), cfg.n_off_store);
        assert!(!c.is_empty());
    }

    #[test]
    fn app_ids_are_dense_indices() {
        let c = catalog();
        for (i, app) in c.apps().iter().enumerate() {
            assert_eq!(app.id.0 as usize, i);
        }
    }

    #[test]
    fn system_apps_are_system_category_and_on_store() {
        let c = catalog();
        for &id in c.system_apps() {
            let m = c.app(id);
            assert_eq!(m.category, AppCategory::System);
            assert!(m.on_play_store);
        }
    }

    #[test]
    fn off_store_apps_not_on_play() {
        let c = catalog();
        for &id in c.off_store_apps() {
            assert!(!c.app(id).on_play_store);
        }
        assert!(c.off_store_apps().iter().any(|&id| c.app(id).modded));
    }

    #[test]
    fn every_app_requests_internet() {
        let c = catalog();
        for app in c.apps() {
            assert!(app.permissions.contains(&Permission::Internet));
        }
    }

    #[test]
    fn popular_apps_sampled_more_often() {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; c.len()];
        for _ in 0..5000 {
            counts[c.sample_consumer_app(&mut rng).0 as usize] += 1;
        }
        // The single most popular app beats any individual tail app.
        let first_popular = c.consumer_apps()[0].0 as usize;
        let tail_start = c.consumer_apps()[200].0 as usize;
        assert!(counts[first_popular] > counts[tail_start] * 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AppCatalog::generate(&CatalogConfig::default());
        let b = AppCatalog::generate(&CatalogConfig::default());
        assert_eq!(a.apps(), b.apps());
        assert_eq!(a.malware_hashes(), b.malware_hashes());
    }

    #[test]
    fn malware_exists_and_references_real_hashes() {
        let c = catalog();
        assert!(!c.malware_hashes().is_empty());
        for (hash, flags) in c.malware_hashes() {
            assert!(*flags >= 1);
            assert!(c.apps().iter().any(|a| a.apk_hash == *hash));
        }
    }
}
