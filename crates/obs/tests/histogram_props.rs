//! Property tests for histogram merge algebra.
//!
//! The pipeline merges per-thread/per-lane histogram shards in whatever
//! order workers retire, so determinism of the merged totals requires the
//! merge to be commutative and associative with `empty()` as identity.

use proptest::prelude::*;
use racket_obs::{HistogramSnapshot, LocalHistogram};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let shared = racket_obs::AtomicHistogram::new();
    let mut local = LocalHistogram::new();
    for &v in values {
        local.record(v);
    }
    shared.merge_local(&local);
    shared.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let a = snapshot_of(&xs);
        let b = snapshot_of(&ys);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..48),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..48),
        zs in proptest::collection::vec(0u64..1_000_000_000, 0..48),
    ) {
        let a = snapshot_of(&xs);
        let b = snapshot_of(&ys);
        let c = snapshot_of(&zs);
        prop_assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c))
        );
    }

    #[test]
    fn merge_equals_concatenated_recording(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        ys in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let split = merged(&snapshot_of(&xs), &snapshot_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(split, snapshot_of(&all));
    }

    #[test]
    fn empty_is_identity(
        xs in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let a = snapshot_of(&xs);
        prop_assert_eq!(merged(&a, &HistogramSnapshot::empty()), a.clone());
        prop_assert_eq!(merged(&HistogramSnapshot::empty(), &a), a);
    }

    #[test]
    fn quantiles_stay_within_observed_range(
        xs in proptest::collection::vec(1u64..1_000_000_000, 1..128),
        q in 0.0f64..=1.0,
    ) {
        let s = snapshot_of(&xs);
        let est = s.quantile(q);
        let lo = *xs.iter().min().unwrap() as f64;
        let hi = *xs.iter().max().unwrap() as f64;
        prop_assert!(est >= lo && est <= hi, "q={q} est={est} range=[{lo},{hi}]");
    }
}
