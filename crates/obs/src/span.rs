//! Lightweight tracing spans and the per-stage timing tree.
//!
//! A span is a named wall-clock scope: creating one starts a timer, and
//! dropping it records the elapsed nanoseconds into the histogram
//! `span.<name>` of its registry. Names are slash-separated stage paths
//! (`"simulate/day/lane"`); the hierarchy is encoded in the name, never in
//! thread-local state, so spans opened on rayon worker threads land in the
//! right place without any ambient context.
//!
//! [`render_timing_tree`] folds the `span.*` histograms of a snapshot back
//! into an indented per-stage report. Child stages can sum to more than
//! their parent's wall time: parallel lanes each record their own span, so
//! a 4-thread day loop shows ~4× the day wall time under `lane` — that gap
//! *is* the parallelism, and watching it shrink is the point of the tree.

use crate::registry::{HistogramHandle, Registry};
use std::time::Instant;

/// Histogram-name prefix shared by every span.
pub const SPAN_PREFIX: &str = "span.";

/// An in-flight span; records its duration on drop.
#[derive(Debug)]
pub struct SpanGuard {
    hist: HistogramHandle,
    /// `Some` when the span carries fields: (registry, path, rendered).
    trace: Option<(Registry, String, String)>,
    start: Instant,
}

impl SpanGuard {
    /// Elapsed time so far, in nanoseconds.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = self.elapsed_nanos();
        self.hist.record(nanos);
        if let Some((registry, path, fields)) = self.trace.take() {
            registry.trace(&path, fields, nanos);
        }
    }
}

impl Registry {
    /// Open a span named `name` (a slash-separated stage path).
    pub fn span(&self, name: &str) -> SpanGuard {
        SpanGuard {
            hist: self.histogram(&format!("{SPAN_PREFIX}{name}")),
            trace: None,
            start: Instant::now(),
        }
    }

    /// Open a span that also records a bounded trace event with rendered
    /// `key=value` fields when it closes (see [`crate::span!`]).
    pub fn span_with(&self, name: &str, fields: String) -> SpanGuard {
        SpanGuard {
            hist: self.histogram(&format!("{SPAN_PREFIX}{name}")),
            trace: Some((self.clone(), name.to_string(), fields)),
            start: Instant::now(),
        }
    }
}

/// Open a span on a registry: `span!(reg, "fleet_gen")`, or with fields,
/// `span!(reg, "simulate/day/lane", device = idx)`. Bind the result
/// (`let _span = span!(…)`) — the span closes when the guard drops.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name)
    };
    ($registry:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $registry.span_with(
            $name,
            [$(format!(concat!(stringify!($key), "={}"), $value)),+].join(" "),
        )
    };
}

/// One rendered row of the timing tree.
struct TreeRow {
    depth: usize,
    label: String,
    count: u64,
    total_secs: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Render the `span.*` histograms of a snapshot as an indented tree.
///
/// Rows are sorted depth-first in name order; each shows the completion
/// count, total wall time and p50/p95/p99 single-span latencies.
pub fn render_timing_tree(snapshot: &crate::registry::RegistrySnapshot) -> String {
    let mut rows: Vec<TreeRow> = Vec::new();
    for (name, hist) in &snapshot.histograms {
        let Some(path) = name.strip_prefix(SPAN_PREFIX) else {
            continue;
        };
        let depth = path.matches('/').count();
        let label = path.rsplit('/').next().unwrap_or(path).to_string();
        rows.push(TreeRow {
            depth,
            label,
            count: hist.count,
            total_secs: hist.sum_secs(),
            p50_ms: hist.quantile(0.50) / 1e6,
            p95_ms: hist.quantile(0.95) / 1e6,
            p99_ms: hist.quantile(0.99) / 1e6,
        });
    }
    // BTreeMap iteration already yields parents before children
    // ("span.simulate" < "span.simulate/day"), so rows are depth-first.
    let mut out = String::new();
    out.push_str("stage                              count    total      p50      p95      p99\n");
    for row in &rows {
        let indent = "  ".repeat(row.depth);
        out.push_str(&format!(
            "{:<30} {:>9} {:>7.2}s {:>7.2}ms {:>7.2}ms {:>7.2}ms\n",
            format!("{indent}{}", row.label),
            row.count,
            row.total_secs,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn span_records_into_prefixed_histogram() {
        let reg = Registry::new();
        {
            let _s = reg.span("stage_a");
        }
        let snap = reg.snapshot();
        let h = snap.histogram("span.stage_a").expect("span histogram");
        assert_eq!(h.count, 1);
        assert!(snap.span_secs("stage_a") >= 0.0);
    }

    #[test]
    fn span_macro_with_fields_records_trace_event() {
        let reg = Registry::new();
        {
            let _s = crate::span!(reg, "lane", device = 7, day = 2);
        }
        let events = reg.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].path, "lane");
        assert_eq!(events[0].fields, "device=7 day=2");
        assert_eq!(reg.snapshot().histogram("span.lane").unwrap().count, 1);
    }

    #[test]
    fn plain_span_macro_records_no_trace_event() {
        let reg = Registry::new();
        {
            let _s = crate::span!(reg, "quiet");
        }
        assert!(reg.events().is_empty());
    }

    #[test]
    fn timing_tree_nests_by_slash_path() {
        let reg = Registry::new();
        {
            let _outer = reg.span("simulate");
            let _inner = reg.span("simulate/day");
        }
        let tree = render_timing_tree(&reg.snapshot());
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[1].starts_with("simulate"), "{tree}");
        assert!(lines[2].starts_with("  day"), "{tree}");
    }

    #[test]
    fn nested_spans_accumulate_counts() {
        let reg = Registry::new();
        for _ in 0..5 {
            let _s = reg.span("a/b");
        }
        assert_eq!(reg.snapshot().histogram("span.a/b").unwrap().count, 5);
    }
}
