//! The metrics registry: named counters, gauges and histograms.
//!
//! A [`Registry`] is a cheap `Arc` handle; clones share state. Looking a
//! metric up by name takes a short-lived lock on the name table, but the
//! returned [`Counter`]/[`HistogramHandle`] records with plain atomics —
//! hot paths resolve their handle once and then record lock-free. All
//! recording operations are commutative, so metric *values* are
//! independent of thread interleaving (the §3 determinism contract:
//! metrics are excluded from output fingerprints, but counter totals still
//! reproduce bit-for-bit across thread counts; only wall-clock histograms
//! vary run to run).

use crate::histogram::{AtomicHistogram, HistogramSnapshot, LocalHistogram};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Trace events recorded with field payloads are capped at this many per
/// registry (cardinality control; aggregation is never capped).
pub const MAX_TRACE_EVENTS: usize = 4096;

/// One span completion that carried `key = value` fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span path (slash-separated stage name).
    pub path: String,
    /// Rendered `key=value` fields.
    pub fields: String,
    /// Span duration in nanoseconds.
    pub nanos: u64,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
    events: Mutex<Vec<TraceEvent>>,
}

/// A shared, clonable metrics registry.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.lock().len())
            .field("gauges", &self.inner.gauges.lock().len())
            .field("histograms", &self.inner.histograms.lock().len())
            .finish()
    }
}

/// A monotone counter handle (lock-free after lookup).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle (lock-free recording after lookup).
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Record one value.
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Merge a retiring per-thread/per-lane shard.
    pub fn merge_local(&self, local: &LocalHistogram) {
        self.0.merge_local(local);
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut table = self.inner.counters.lock();
        Counter(Arc::clone(table.entry(name.to_string()).or_default()))
    }

    /// Add `n` to the counter named `name` (lookup + add convenience).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Set the gauge named `name` (last write wins).
    pub fn gauge_set(&self, name: &str, v: u64) {
        let mut table = self.inner.gauges.lock();
        table
            .entry(name.to_string())
            .or_default()
            .store(v, Ordering::Relaxed);
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut table = self.inner.histograms.lock();
        HistogramHandle(Arc::clone(
            table
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        ))
    }

    /// Record one value into the histogram named `name`.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Append a trace event (dropped silently past [`MAX_TRACE_EVENTS`]).
    pub fn trace(&self, path: &str, fields: String, nanos: u64) {
        let mut events = self.inner.events.lock();
        if events.len() < MAX_TRACE_EVENTS {
            events.push(TraceEvent {
                path: path.to_string(),
                fields,
                nanos,
            });
        }
    }

    /// Copy of the recorded trace events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().clone()
    }

    /// Freeze every metric into a serializable snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A frozen registry: plain maps, serializable, mergeable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Fold another snapshot in: counters and histograms add (commutative),
    /// gauges take the other side's value when present (last write wins).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Total seconds spent in the span named `name` (0.0 when absent).
    pub fn span_secs(&self, name: &str) -> f64 {
        self.histogram(&format!("{}{name}", crate::span::SPAN_PREFIX))
            .map(|h| h.sum_secs())
            .unwrap_or(0.0)
    }
}

static GLOBAL: OnceLock<RwLock<Registry>> = OnceLock::new();

fn global_cell() -> &'static RwLock<Registry> {
    GLOBAL.get_or_init(|| RwLock::new(Registry::new()))
}

/// The process-default registry (a cheap clone of the installed handle).
///
/// Components without an explicit registry parameter — per-fold CV spans
/// in `racket-ml`, per-device fleet-generation timing — record here.
/// Harnesses that need per-run isolation (e.g. `bench_pipeline`) swap in a
/// fresh registry with [`install_global`] around each run; the study
/// driver itself always uses its own private registry, so test
/// parallelism never pollutes study metrics.
pub fn global() -> Registry {
    global_cell().read().clone()
}

/// Replace the process-default registry, returning the previous one.
pub fn install_global(registry: Registry) -> Registry {
    std::mem::replace(&mut *global_cell().write(), registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = Registry::new();
        let c = reg.counter("uploads");
        c.add(3);
        c.inc();
        reg.add("uploads", 6);
        assert_eq!(c.get(), 10);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("uploads"), 10);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let reg = Registry::new();
        reg.gauge_set("threads", 4);
        reg.gauge_set("threads", 8);
        assert_eq!(reg.snapshot().gauge("threads"), 8);
    }

    #[test]
    fn clones_share_state() {
        let reg = Registry::new();
        let other = reg.clone();
        other.add("x", 5);
        assert_eq!(reg.snapshot().counter("x"), 5);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = Registry::new();
        a.add("c", 1);
        a.record("h", 10);
        let b = Registry::new();
        b.add("c", 2);
        b.record("h", 20);
        b.gauge_set("g", 7);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.gauge("g"), 7);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.add("c", 42);
        reg.gauge_set("g", 9);
        reg.record("h", 1234);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn trace_events_are_bounded() {
        let reg = Registry::new();
        for i in 0..(MAX_TRACE_EVENTS + 10) {
            reg.trace("p", format!("i={i}"), 1);
        }
        assert_eq!(reg.events().len(), MAX_TRACE_EVENTS);
    }

    #[test]
    fn install_global_swaps_the_default() {
        let fresh = Registry::new();
        let prev = install_global(fresh.clone());
        global().add("swap_test", 2);
        assert_eq!(fresh.snapshot().counter("swap_test"), 2);
        install_global(prev);
    }
}
