//! Log-bucketed latency/size histograms.
//!
//! The bucket layout is HdrHistogram-style: values are grouped by octave
//! (power of two) with [`SUB`] linear sub-buckets per octave, giving a
//! worst-case relative quantile error of `1 / SUB` (12.5%) across the full
//! `u64` range with a fixed 496-slot table. Recording is a single atomic
//! increment, so concurrent recorders never contend on a lock and the
//! result is independent of interleaving — the commutativity the pipeline's
//! determinism contract relies on (metrics never enter the output
//! fingerprint, but their *counts* must still be thread-count stable).
//!
//! Three forms cooperate:
//!
//! * [`AtomicHistogram`] — the shared, registry-owned sink;
//! * [`LocalHistogram`] — an unsynchronized per-thread (or per-lane) shard,
//!   merged into an atomic histogram in one pass when the shard retires;
//! * [`HistogramSnapshot`] — a frozen copy with quantile arithmetic and a
//!   commutative, associative [`HistogramSnapshot::merge`] (property-tested
//!   in `tests/histogram_props.rs`).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (8 → ≤ 12.5% relative quantile error).
pub const SUB: usize = 8;
const SUB_BITS: u32 = 3;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = 61 * SUB + SUB; // indexes 0..=495

/// Bucket index for a value (monotone in `v`, exact below [`SUB`]).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (exp - SUB_BITS + 1) as usize * SUB + sub
    }
}

/// Inclusive-exclusive `[lo, hi)` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB {
        (i as u64, i as u64 + 1)
    } else {
        let octave = (i / SUB) as u32;
        let sub = (i % SUB) as u64;
        let exp = octave + SUB_BITS - 1;
        let width = 1u64 << (exp - SUB_BITS);
        let lo = (1u64 << exp) + sub * width;
        (lo, lo.saturating_add(width))
    }
}

/// Shared histogram: every field is an atomic, so recording from any
/// number of threads is lock-free and commutative.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold a retiring per-thread shard in (one atomic add per non-empty
    /// bucket).
    pub fn merge_local(&self, local: &LocalHistogram) {
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        if local.count > 0 {
            self.count.fetch_add(local.count, Ordering::Relaxed);
            self.sum.fetch_add(local.sum, Ordering::Relaxed);
            self.min.fetch_min(local.min, Ordering::Relaxed);
            self.max.fetch_max(local.max, Ordering::Relaxed);
        }
    }

    /// Freeze the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Unsynchronized histogram shard for a single thread or lane; merged into
/// an [`AtomicHistogram`] (or another snapshot) when the owner retires.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty shard.
    pub fn new() -> LocalHistogram {
        LocalHistogram {
            buckets: vec![0; BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value (no synchronization).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A frozen histogram: what snapshots, reports and the BENCH emitter
/// consume. `min`/`max` carry their empty-state sentinels (`u64::MAX`/`0`)
/// so that [`merge`](HistogramSnapshot::merge) has an identity element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (dense, [`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (`0` when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The merge identity: an empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Fold another snapshot in. Commutative and associative with
    /// [`empty`](HistogramSnapshot::empty) as identity (property-tested),
    /// which is what lets per-thread shards merge in any retirement order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile (`q ∈ [0, 1]`) by linear interpolation inside
    /// the covering bucket; exact at the recorded `min`/`max` endpoints.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                let into = (rank - (cum - n)) as f64 / n as f64;
                let est = lo as f64 + into * (hi - lo) as f64;
                // The true extrema are tracked exactly; clamp the bucket
                // interpolation into them.
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Sum interpreted as nanoseconds, in seconds (span histograms record
    /// nanosecond durations).
    pub fn sum_secs(&self) -> f64 {
        self.sum as f64 / 1e9
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i >= last, "index decreased at v={v}");
            assert!(i - last <= 1, "index skipped at v={v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "v={v} outside [{lo},{hi}) of bucket {i}");
            last = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_below_sub() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v + 1));
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        let p95 = s.quantile(0.95);
        let p99 = s.quantile(0.99);
        assert!((400.0..=620.0).contains(&p50), "p50 = {p50}");
        assert!((850.0..=1000.0).contains(&p95), "p95 = {p95}");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= 1000.0);
    }

    #[test]
    fn local_shard_merges_into_atomic() {
        let shared = AtomicHistogram::new();
        shared.record(10);
        let mut local = LocalHistogram::new();
        local.record(20);
        local.record(30);
        shared.merge_local(&local);
        let s = shared.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 60);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let h = AtomicHistogram::new();
        h.record(7);
        h.record(99);
        let base = h.snapshot();
        let mut merged = base.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, base);
        let mut from_empty = HistogramSnapshot::empty();
        from_empty.merge(&base);
        assert_eq!(from_empty, base);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0.0);
        assert_eq!(HistogramSnapshot::empty().mean(), 0.0);
    }
}
