//! `racket-obs` — the observability subsystem of the RacketStore pipeline.
//!
//! Large-scale app-usage measurement lives or dies by per-stage
//! instrumentation (the paper's study ingested 58.3M snapshots from 803
//! devices); this crate provides the three primitives the pipeline records
//! itself with, designed so observability composes with the determinism
//! contract in ARCHITECTURE.md:
//!
//! * [`Registry`] — named counters, gauges and log-bucketed latency
//!   histograms. Recording is commutative (plain atomic adds), so every
//!   *count* is bit-identical across thread counts and interleavings; only
//!   wall-clock durations vary. Nothing in a registry ever enters a study
//!   output fingerprint.
//! * [`span!`] / [`SpanGuard`] — lightweight tracing spans: a named
//!   wall-clock scope recorded into `span.<name>` on drop, with
//!   slash-separated names encoding the stage hierarchy
//!   ([`render_timing_tree`] prints it).
//! * [`LocalHistogram`] — unsynchronized per-thread/per-lane histogram
//!   shards, merged into the shared registry when the owner retires
//!   (merge is associative and commutative — property-tested — so
//!   retirement order is irrelevant).
//!
//! [`RegistrySnapshot`] freezes a registry into serializable maps; the
//! `bench_pipeline` binary in `racket-bench` turns snapshots into
//! `BENCH_pipeline.json`, the repository's machine-readable perf
//! trajectory.

#![deny(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod span;

pub use histogram::{AtomicHistogram, HistogramSnapshot, LocalHistogram};
pub use registry::{
    global, install_global, Counter, HistogramHandle, Registry, RegistrySnapshot, TraceEvent,
};
pub use span::{render_timing_tree, SpanGuard, SPAN_PREFIX};
