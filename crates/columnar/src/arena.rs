//! Scratch-buffer arena for recursive analyze kernels.
//!
//! The gradient-boosting split search allocates per *node*: one sorted
//! pair list per candidate feature (derived by stable partition from the
//! parent's lists) plus two child row-index partitions, across
//! `n_rounds × 2^depth` nodes per fit. [`ScratchArena`] pools those
//! buffers so steady-state rounds mostly recycle instead of allocating.
//!
//! # Lifetime rules
//!
//! * A buffer taken from the pool is always **cleared** — no value
//!   survives a round trip, so reuse can change allocation counts but
//!   never results (property-tested below).
//! * The arena is owned by a single fit call and dropped with it; it is
//!   deliberately not `Sync` — parallel fits each own their own arena
//!   (the same ownership discipline as the delivery path's LZSS
//!   workspaces, ARCHITECTURE.md §6).
//! * Returning a buffer (`put_*`) is optional — a buffer that is not
//!   returned simply drops, and the pool re-allocates on the next take.

use crate::kernel::SortPair;

/// Pools of reusable scratch buffers for columnar kernels.
#[derive(Debug, Default)]
pub struct ScratchArena {
    pairs: Vec<Vec<SortPair>>,
    indices: Vec<Vec<u32>>,
}

impl ScratchArena {
    /// An empty arena (no buffers pooled yet).
    pub fn new() -> ScratchArena {
        ScratchArena::default()
    }

    /// Take a cleared sort-pair buffer (capacity retained from prior use).
    pub fn take_pairs(&mut self) -> Vec<SortPair> {
        let mut buf = self.pairs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a sort-pair buffer to the pool.
    pub fn put_pairs(&mut self, buf: Vec<SortPair>) {
        self.pairs.push(buf);
    }

    /// Take a cleared row-index buffer (capacity retained from prior use).
    pub fn take_indices(&mut self) -> Vec<u32> {
        let mut buf = self.indices.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a row-index buffer to the pool.
    pub fn put_indices(&mut self, buf: Vec<u32>) {
        self.indices.push(buf);
    }

    /// Buffers currently pooled (for tests and diagnostics).
    pub fn pooled(&self) -> usize {
        self.pairs.len() + self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn take_returns_cleared_buffers_with_capacity() {
        let mut arena = ScratchArena::new();
        let mut p = arena.take_pairs();
        p.extend((0..100).map(|i| (i as f64, i)));
        let cap = p.capacity();
        arena.put_pairs(p);
        let p2 = arena.take_pairs();
        assert!(p2.is_empty(), "reused buffer must be cleared");
        assert!(p2.capacity() >= cap, "capacity survives the round trip");
        assert_eq!(arena.pooled(), 0);
    }

    proptest! {
        /// Arena reuse never changes kernel results: sorting through a
        /// fresh buffer and through an arbitrarily reused buffer yields
        /// bit-identical pair sequences.
        #[test]
        fn reuse_is_result_invariant(
            values in proptest::collection::vec(-1e9f64..1e9, 1..64),
            junk in proptest::collection::vec(-1e9f64..1e9, 0..64),
        ) {
            let mut arena = ScratchArena::new();
            // Pollute a pooled buffer with junk from a previous "node".
            let mut polluted = arena.take_pairs();
            polluted.extend(junk.iter().enumerate().map(|(i, &v)| (v, i as u32)));
            arena.put_pairs(polluted);

            let mut reused = arena.take_pairs();
            reused.extend(values.iter().enumerate().map(|(i, &v)| (v, i as u32)));
            crate::kernel::sort_pairs(&mut reused);

            let mut fresh: Vec<SortPair> =
                values.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            crate::kernel::sort_pairs(&mut fresh);

            prop_assert_eq!(reused.len(), fresh.len());
            for (a, b) in reused.iter().zip(&fresh) {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                prop_assert_eq!(a.1, b.1);
            }
        }
    }
}
