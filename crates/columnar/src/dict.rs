//! Dictionary encoding: sparse external identifiers → dense `u32` codes.
//!
//! The collection side names things with sparse IDs (9-digit install IDs,
//! catalog-wide app IDs, account-service enums). Columnar stores index
//! arrays by *position*, so every ID family gets a [`Dict`] assigning
//! codes `0, 1, 2, …` in first-seen order. Encoding is stable (the same
//! key always returns the same code) and lossless (`value(code)` returns
//! the original key) — the round trip is property-tested below.

use std::collections::HashMap;
use std::hash::Hash;

/// A bidirectional dictionary encoder for one identifier family.
///
/// Codes are dense and assigned in first-seen order, so a dictionary
/// built from a canonically ordered scan (e.g. install records sorted by
/// install ID) assigns the same codes on every run.
#[derive(Debug, Clone)]
pub struct Dict<K> {
    codes: HashMap<K, u32>,
    values: Vec<K>,
}

// Manual impl: the derive would wrongly require `K: Default`.
impl<K> Default for Dict<K> {
    fn default() -> Dict<K> {
        Dict {
            codes: HashMap::new(),
            values: Vec::new(),
        }
    }
}

impl<K: Copy + Eq + Hash> Dict<K> {
    /// An empty dictionary.
    pub fn new() -> Dict<K> {
        Dict {
            codes: HashMap::new(),
            values: Vec::new(),
        }
    }

    /// The code for `key`, assigning the next dense code on first sight.
    ///
    /// # Panics
    /// If the dictionary would exceed `u32::MAX` entries.
    pub fn encode(&mut self, key: K) -> u32 {
        if let Some(&code) = self.codes.get(&key) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.codes.insert(key, code);
        self.values.push(key);
        code
    }

    /// The code for `key`, if it was ever encoded.
    pub fn code(&self, key: K) -> Option<u32> {
        self.codes.get(&key).copied()
    }

    /// The key behind `code`.
    ///
    /// # Panics
    /// If `code` was never assigned.
    pub fn value(&self, code: u32) -> K {
        self.values[code as usize]
    }

    /// Number of distinct keys encoded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate keys in code order (`value(0), value(1), …`).
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn codes_are_dense_and_stable() {
        let mut d = Dict::new();
        assert_eq!(d.encode(42u64), 0);
        assert_eq!(d.encode(7), 1);
        assert_eq!(d.encode(42), 0, "re-encoding returns the same code");
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1), 7);
        assert_eq!(d.code(7), Some(1));
        assert_eq!(d.code(99), None);
        let keys: Vec<u64> = d.iter().copied().collect();
        assert_eq!(keys, vec![42, 7]);
    }

    proptest! {
        /// Round trip: value(encode(k)) == k for every key, and codes are
        /// exactly 0..n in first-seen order.
        #[test]
        fn encode_decode_round_trips(keys in proptest::collection::vec(any::<u32>(), 0..200)) {
            let mut d = Dict::new();
            for &k in &keys {
                let code = d.encode(k);
                prop_assert_eq!(d.value(code), k);
            }
            // Dense codes, one per distinct key, in first-seen order.
            let mut seen = Vec::new();
            for &k in &keys {
                if !seen.contains(&k) {
                    seen.push(k);
                }
            }
            prop_assert_eq!(d.len(), seen.len());
            for (expect, &k) in seen.iter().enumerate() {
                prop_assert_eq!(d.code(k), Some(expect as u32));
                prop_assert_eq!(d.value(expect as u32), k);
            }
        }

        /// Encoding order determines codes; re-encounters never perturb them.
        #[test]
        fn reencoding_is_idempotent(keys in proptest::collection::vec(any::<u16>(), 1..100)) {
            let mut a = Dict::new();
            for &k in &keys {
                a.encode(k);
            }
            let mut b = a.clone();
            for &k in &keys {
                b.encode(k);
            }
            prop_assert_eq!(a.len(), b.len());
            for code in 0..a.len() as u32 {
                prop_assert_eq!(a.value(code), b.value(code));
            }
        }
    }
}
