//! Quantile binning and gradient histograms for approximate split finding.
//!
//! The exact-greedy split search (the default — it is what the golden
//! F1 pins were baselined on) sorts every node's rows per feature. The
//! histogram path trades that `O(n log n)` per node for one quantile
//! binning pass per *fit* plus an `O(n)` histogram build per node, at the
//! cost of candidate thresholds restricted to bin edges. It is **not**
//! bit-identical to the exact search, so `racket-ml` keeps it opt-out of
//! the pinned paths; ARCHITECTURE.md §9 records the tradeoff.

/// A feature column quantized to dense bin codes.
///
/// `codes[i]` is the bin of row `i`; `edges[b]` is the *upper inclusive*
/// value bound of bin `b`, so candidate thresholds for a binned split are
/// exactly the edges. Bins are built from value quantiles: equal values
/// always share a bin, and codes are monotone in the underlying value.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedColumn {
    /// Per-row bin code, `< edges.len()`.
    pub codes: Vec<u16>,
    /// Upper inclusive value bound per bin, strictly increasing.
    pub edges: Vec<f64>,
}

/// Quantile-bin one feature column into at most `max_bins` bins.
///
/// Distinct values ≤ `max_bins` degenerate to one bin per value (the
/// histogram split search is then exhaustive over this column). Empty
/// columns produce zero bins.
///
/// # Panics
/// If `max_bins == 0`, or the column contains NaN (the same values the
/// exact search rejects).
pub fn bin_column(col: &[f64], max_bins: usize) -> BinnedColumn {
    assert!(max_bins > 0, "max_bins must be positive");
    if col.is_empty() {
        return BinnedColumn {
            codes: Vec::new(),
            edges: Vec::new(),
        };
    }
    let mut sorted = col.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
    sorted.dedup();

    let edges: Vec<f64> = if sorted.len() <= max_bins {
        sorted
    } else {
        // Quantile cuts: the b-th edge is the value at rank
        // ceil((b+1) * n / max_bins) - 1 over the distinct values, which
        // always includes the maximum as the last edge.
        let n = sorted.len();
        let mut edges = Vec::with_capacity(max_bins);
        for b in 0..max_bins {
            let rank = ((b + 1) * n).div_ceil(max_bins) - 1;
            let v = sorted[rank];
            if edges.last() != Some(&v) {
                edges.push(v);
            }
        }
        edges
    };

    let codes = col
        .iter()
        .map(|&v| {
            // First edge ≥ v; total_cmp is safe here (NaN already rejected).
            edges.partition_point(|&e| e < v) as u16
        })
        .collect();
    BinnedColumn { codes, edges }
}

/// Per-bin gradient/hessian sums for one node × one feature.
///
/// Built in row-index order (the batch-canonical fold order for the
/// histogram path): `build` adds each selected row's `(g, h)` to its bin
/// in the order the indices are given, so two builds over the same index
/// sequence are bitwise identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GradHistogram {
    /// Gradient sum per bin.
    pub sum_g: Vec<f64>,
    /// Hessian sum per bin.
    pub sum_h: Vec<f64>,
    /// Row count per bin.
    pub count: Vec<u32>,
}

impl GradHistogram {
    /// Accumulate the histogram for the rows in `idx` over one binned
    /// column.
    ///
    /// # Panics
    /// If a code in `idx` is out of range for the column's bins.
    pub fn build(col: &BinnedColumn, g: &[f64], h: &[f64], idx: &[u32]) -> GradHistogram {
        let n_bins = col.edges.len();
        let mut hist = GradHistogram {
            sum_g: vec![0.0; n_bins],
            sum_h: vec![0.0; n_bins],
            count: vec![0; n_bins],
        };
        for &i in idx {
            let b = col.codes[i as usize] as usize;
            hist.sum_g[b] += g[i as usize];
            hist.sum_h[b] += h[i as usize];
            hist.count[b] += 1;
        }
        hist
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.count.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn few_distinct_values_get_one_bin_each() {
        let col = [2.0, 1.0, 2.0, 3.0, 1.0];
        let b = bin_column(&col, 16);
        assert_eq!(b.edges, vec![1.0, 2.0, 3.0]);
        assert_eq!(b.codes, vec![1, 0, 1, 2, 0]);
    }

    #[test]
    fn empty_column_yields_no_bins() {
        let b = bin_column(&[], 8);
        assert!(b.codes.is_empty());
        assert!(b.edges.is_empty());
    }

    #[test]
    fn histogram_matches_naive_sums() {
        let col = bin_column(&[0.0, 1.0, 0.0, 2.0, 1.0, 1.0], 4);
        let g = [0.5, -0.25, 1.0, 2.0, -1.5, 0.125];
        let h = [1.0, 1.0, 0.5, 0.25, 1.0, 2.0];
        let idx: Vec<u32> = vec![0, 1, 2, 4, 5]; // row 3 excluded
        let hist = GradHistogram::build(&col, &g, &h, &idx);
        assert_eq!(hist.n_bins(), 3);
        assert_eq!(hist.count, vec![2, 3, 0]);
        assert_eq!(hist.sum_g[0], 0.5 + 1.0);
        assert_eq!(hist.sum_g[1], -0.25 + -1.5 + 0.125);
        assert_eq!(hist.sum_h[1], 1.0 + 1.0 + 2.0);
        assert_eq!(hist.sum_g[2], 0.0);
    }

    proptest! {
        /// Binning is monotone and lossless up to bin resolution: codes
        /// never decrease as values increase, every value is ≤ its bin
        /// edge, and equal values always share a bin.
        #[test]
        fn binning_is_monotone(
            col in proptest::collection::vec(-1e6f64..1e6, 1..256),
            max_bins in 1usize..32,
        ) {
            let b = bin_column(&col, max_bins);
            prop_assert!(b.edges.len() <= max_bins);
            prop_assert!(b.edges.windows(2).all(|w| w[0] < w[1]));
            for (i, &v) in col.iter().enumerate() {
                let code = b.codes[i] as usize;
                prop_assert!(code < b.edges.len());
                prop_assert!(v <= b.edges[code]);
                if code > 0 {
                    prop_assert!(v > b.edges[code - 1]);
                }
            }
            // Equal values share a bin; order of codes follows values.
            for i in 0..col.len() {
                for j in 0..col.len() {
                    if col[i] == col[j] {
                        prop_assert_eq!(b.codes[i], b.codes[j]);
                    } else if col[i] < col[j] {
                        prop_assert!(b.codes[i] <= b.codes[j]);
                    }
                }
            }
        }

        /// Histogram totals equal the direct per-row sums (same fold
        /// order: row-index order).
        #[test]
        fn histogram_totals_match_direct_fold(
            values in proptest::collection::vec((-1e3f64..1e3, 0.1f64..2.0, -10.0f64..10.0), 1..128),
            max_bins in 1usize..16,
        ) {
            let col: Vec<f64> = values.iter().map(|v| v.2).collect();
            let g: Vec<f64> = values.iter().map(|v| v.0).collect();
            let h: Vec<f64> = values.iter().map(|v| v.1).collect();
            let binned = bin_column(&col, max_bins);
            let idx: Vec<u32> = (0..col.len() as u32).collect();
            let hist = GradHistogram::build(&binned, &g, &h, &idx);

            let mut g_naive = vec![0.0; binned.edges.len()];
            let mut n_naive = vec![0u32; binned.edges.len()];
            for (i, &code) in binned.codes.iter().enumerate() {
                g_naive[code as usize] += g[i];
                n_naive[code as usize] += 1;
            }
            for b in 0..binned.edges.len() {
                prop_assert_eq!(hist.sum_g[b].to_bits(), g_naive[b].to_bits());
                prop_assert_eq!(hist.count[b], n_naive[b]);
            }
        }
    }
}
