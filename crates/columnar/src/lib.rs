//! Columnar (struct-of-arrays) storage and kernels for the analyze side
//! of the RacketStore pipeline.
//!
//! BENCH_pipeline.json showed the analyze stage group dominating non-wire
//! runs: feature builds and learner inner loops walked row-oriented state
//! (`Vec<Vec<f64>>` feature matrices, `HashMap`-of-`BTreeMap` install
//! records), paying a pointer chase per comparison. This crate is the
//! storage layer that removes those chases — ARCHITECTURE.md §9 documents
//! the memory layout, the dictionary-encoding scheme and the arena
//! lifetime rules; this crate-level doc is the API-side summary.
//!
//! # Column families
//!
//! * [`ColumnMatrix`] — a column-major `f64` feature matrix. One
//!   contiguous buffer, columns back to back; `col(f)[i]` is the bitwise
//!   value of row-major `rows[i][f]`. This is the layout the
//!   gradient-boosting split search scans (one column at a time).
//! * [`FlatMatrix`] — a row-major flat `f64` matrix (one contiguous
//!   buffer, rows back to back). This is the layout for per-row kernels —
//!   batch model scoring and KNN distance loops — where a whole row is
//!   consumed at once and must be contiguous.
//! * [`Dict`] — a dictionary encoder mapping sparse external identifiers
//!   (app / account-service / install IDs) to dense `u32` codes, so
//!   columnar stores index arrays instead of hashing IDs.
//! * [`hist::BinnedColumn`] / [`hist::GradHistogram`] — quantile-binned
//!   feature codes and the gradient-histogram kernel for approximate
//!   (histogram-based) split finding.
//!
//! # The row→column equivalence contract
//!
//! Transposing storage must never change analysis output. Every value in
//! a [`ColumnMatrix`] or [`FlatMatrix`] is a bit-for-bit copy of its
//! row-major source — construction performs no arithmetic — and every
//! kernel in this crate folds floats in the **batch-canonical order**:
//! the exact operation sequence of the row-oriented code it replaces.
//! Concretely:
//!
//! * the **batch-canonical order** itself is defined over rows and
//!   features: node row sets are ascending by row index; each feature's
//!   scan order is the stable sort by `(feature value, row index)`; and
//!   gradient/hessian sums fold in ascending row order. Any population
//!   path (batch transpose, streaming adoption, presort-plus-partition)
//!   that reproduces these orders reproduces the floats bit for bit;
//! * [`kernel::sort_pairs`] is a *stable* sort keyed by the same
//!   `partial_cmp` comparator as the row-oriented split search: applied
//!   to pairs whose row indices are ascending it yields exactly the
//!   `(value, row)` order above, and a stable partition of the result
//!   preserves that order for each child node — which is why the GBT fit
//!   sorts each feature once and never re-sorts per node;
//! * [`kernel::sq_dist`] folds squared differences left to right over the
//!   row slice, the same `Iterator::sum` expression the row-oriented KNN
//!   used.
//!
//! Consumers that promise bit-identical results (`racket-ml`'s gradient
//! boosting, the detection service's scoring paths) are held to this
//! contract by the `tests/columnar_equivalence.rs` differential harness.
//!
//! # Arena lifetime rules
//!
//! [`ScratchArena`] pools the per-node scratch buffers of recursive
//! kernels (sort-pair buffers, index partitions). Buffers are cleared on
//! every take, so no value ever survives a round trip through the pool —
//! reuse affects allocation count only, never results (property-tested in
//! [`arena`]). Pools are plain `Vec`s owned by one fit: they are neither
//! `Send` nor shared, and they drop with the training call.

#![deny(missing_docs)]

pub mod arena;
pub mod column;
pub mod dict;
pub mod hist;
pub mod kernel;
pub mod shingle;

pub use arena::ScratchArena;
pub use column::{ColumnMatrix, FlatMatrix};
pub use dict::Dict;
pub use hist::{bin_column, BinnedColumn, GradHistogram};
pub use kernel::{sort_pairs, sq_dist, SortPair};
pub use shingle::{pack_shingle, shingle_set, unpack_shingle};
