//! Vectorizable inner-loop kernels for the analyze hot paths.
//!
//! Each kernel replaces a row-oriented loop whose comparisons or folds
//! chased `Vec<Vec<f64>>` pointers, and each is **bit-identical** to the
//! loop it replaces: same comparator, same fold order, same panics. The
//! row→column equivalence contract (crate docs, ARCHITECTURE.md §9) rests
//! on these functions.

/// A `(feature value, row index)` pair — the unit the split-search sort
/// moves. 16 bytes, contiguous, no indirection in the comparator.
pub type SortPair = (f64, u32);

/// Stable-sort pairs by feature value.
///
/// This is the columnar form of the batch-canonical split search's
/// per-feature ordering: a stable sort by feature value over pairs whose
/// row indices are ascending, which yields exactly the `(value, row)`
/// lexicographic order the equivalence contract pins. The GBT fit sorts
/// every feature's full pair list **once**; per-node lists are then
/// derived by stable partition, which preserves this order without
/// re-sorting (see `racket-ml`'s `gbt` module docs).
///
/// # Panics
/// On NaN feature values, with the row-oriented search's message.
pub fn sort_pairs(pairs: &mut [SortPair]) {
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));
}

/// Squared Euclidean distance between two contiguous rows.
///
/// The exact expression (and therefore fold order) of the row-oriented
/// KNN's inner loop — `zip → map → sum`, left to right — so distances are
/// bitwise unchanged by the flat-matrix layout.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sort_is_stable_on_ties() {
        // Equal keys keep their input order — with ascending-row input
        // this is what produces the canonical (value, row) order.
        let mut pairs: Vec<SortPair> = vec![(1.0, 5), (0.0, 3), (1.0, 1), (0.0, 9), (1.0, 0)];
        sort_pairs(&mut pairs);
        let idx: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        assert_eq!(idx, vec![3, 9, 5, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "NaN feature value")]
    fn nan_keys_panic_like_the_row_search() {
        let mut pairs: Vec<SortPair> = vec![(f64::NAN, 0), (1.0, 1)];
        sort_pairs(&mut pairs);
    }

    proptest! {
        /// Sorting pairs yields the same index permutation as sorting an
        /// index vector through row lookups — the equivalence the GBT
        /// split search is built on.
        #[test]
        fn pair_sort_equals_index_sort(
            values in proptest::collection::vec(-1e6f64..1e6, 1..128),
            // A shuffled starting arrangement (ties must follow it).
            seed in any::<u64>(),
        ) {
            let n = values.len();
            // Deterministic pseudo-shuffle of 0..n from the seed.
            let mut start: Vec<u32> = (0..n as u32).collect();
            let mut s = seed | 1;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                start.swap(i, j);
            }

            let mut idx = start.clone();
            idx.sort_by(|&a, &b| {
                values[a as usize].partial_cmp(&values[b as usize]).expect("NaN")
            });

            let mut pairs: Vec<SortPair> =
                start.iter().map(|&i| (values[i as usize], i)).collect();
            sort_pairs(&mut pairs);

            let pair_idx: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            prop_assert_eq!(pair_idx, idx);
        }

        /// sq_dist folds identically to the reference expression.
        #[test]
        fn sq_dist_matches_reference(
            a in proptest::collection::vec(-1e3f64..1e3, 1..32),
            b in proptest::collection::vec(-1e3f64..1e3, 1..32),
        ) {
            let reference: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            prop_assert_eq!(sq_dist(&a, &b).to_bits(), reference.to_bits());
        }
    }
}
