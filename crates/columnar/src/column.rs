//! Contiguous `f64` matrices: column-major for scan kernels, row-major
//! flat for per-row kernels.
//!
//! Both types hold one contiguous allocation and copy their source values
//! bit for bit — construction performs no arithmetic, which is what makes
//! the row→column equivalence contract (crate docs) trivially auditable:
//! `ColumnMatrix::from_rows(rows).col(f)[i]` has the same bit pattern as
//! `rows[i][f]`, and `FlatMatrix::from_rows(rows).row(i)` is bitwise
//! `rows[i]`.

/// A column-major `f64` matrix: all of column 0, then all of column 1, …
///
/// The layout for *scan* kernels — the gradient-boosting split search
/// reads one feature for every row before moving to the next feature, so
/// a column must be a contiguous slice.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatrix {
    /// `n_rows * n_cols` values, column-major.
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl ColumnMatrix {
    /// Transpose a row-major matrix into columnar storage (bitwise copy).
    ///
    /// # Panics
    /// If the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> ColumnMatrix {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = vec![0.0; n_rows * n_cols];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n_cols, "ragged feature matrix");
            for (f, &v) in row.iter().enumerate() {
                data[f * n_rows + i] = v;
            }
        }
        ColumnMatrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// One feature column as a contiguous slice (length [`Self::n_rows`]).
    ///
    /// # Panics
    /// If `f >= n_cols`.
    pub fn col(&self, f: usize) -> &[f64] {
        assert!(f < self.n_cols, "column {f} out of {}", self.n_cols);
        &self.data[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// One cell — `get(i, f)` is bitwise the source's `rows[i][f]`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.col(col)[row]
    }
}

/// A row-major flat `f64` matrix: row 0, then row 1, … in one allocation.
///
/// The layout for *per-row* kernels (batch scoring, KNN distances): a row
/// is a contiguous slice, and consecutive rows are adjacent, so batch
/// loops stream through memory instead of chasing `Vec<Vec<f64>>`
/// pointers.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMatrix {
    /// `n_rows * n_cols` values, row-major.
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl FlatMatrix {
    /// An empty matrix with a fixed column count, ready for
    /// [`FlatMatrix::push_row`].
    pub fn new(n_cols: usize) -> FlatMatrix {
        FlatMatrix {
            data: Vec::new(),
            n_rows: 0,
            n_cols,
        }
    }

    /// Pack a row-major matrix into one flat allocation (bitwise copy).
    ///
    /// # Panics
    /// If the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> FlatMatrix {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut m = FlatMatrix::new(n_cols);
        for row in rows {
            m.push_row(row);
        }
        m
    }

    /// Rebuild from raw parts (the persistence path).
    ///
    /// # Panics
    /// If `data.len() != n_rows * n_cols`.
    pub fn from_parts(data: Vec<f64>, n_rows: usize, n_cols: usize) -> FlatMatrix {
        assert_eq!(data.len(), n_rows * n_cols, "flat matrix shape mismatch");
        FlatMatrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// If `row.len() != n_cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "row arity mismatch");
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// One row as a contiguous slice — bitwise the source's `rows[i]`.
    ///
    /// # Panics
    /// If `i >= n_rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of {}", self.n_rows);
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Iterate rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        // `chunks_exact(0)` panics; an empty matrix yields no rows.
        self.data.chunks_exact(self.n_cols.max(1)).take(self.n_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, -0.0, f64::MIN_POSITIVE],
            vec![4.5, 1e300, -7.25],
            vec![0.1 + 0.2, 3.0, f64::INFINITY],
        ]
    }

    #[test]
    fn column_matrix_is_bitwise_transpose() {
        let r = rows();
        let m = ColumnMatrix::from_rows(&r);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 3);
        for (i, row) in r.iter().enumerate() {
            for (f, v) in row.iter().enumerate() {
                assert_eq!(m.get(i, f).to_bits(), v.to_bits());
                assert_eq!(m.col(f)[i].to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn flat_matrix_round_trips_rows() {
        let r = rows();
        let m = FlatMatrix::from_rows(&r);
        assert_eq!(m.n_rows(), 3);
        for (i, row) in r.iter().enumerate() {
            assert_eq!(m.row(i), row.as_slice());
        }
        let collected: Vec<&[f64]> = m.rows().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], r[2].as_slice());
    }

    #[test]
    fn flat_matrix_push_row_matches_from_rows() {
        let r = rows();
        let mut m = FlatMatrix::new(3);
        for row in &r {
            m.push_row(row);
        }
        assert_eq!(m, FlatMatrix::from_rows(&r));
    }

    #[test]
    fn empty_matrices_are_well_formed() {
        let m = ColumnMatrix::from_rows(&[]);
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
        let f = FlatMatrix::new(0);
        assert!(f.is_empty());
        assert_eq!(f.rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        ColumnMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
