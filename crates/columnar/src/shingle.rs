//! App-time shingle extraction kernels.
//!
//! The campaign detector (ARCHITECTURE.md §10) summarises a device's
//! monitored install activity as a set of *shingles*: `(app, time-bucket)`
//! pairs packed into one `u64`. Packing lives here — next to the other
//! columnar kernels — because the batch detector extracts shingles
//! straight out of the install-event column family of
//! `ColumnarSnapshots`, and the kernel must be shared bit-for-bit with
//! the incremental fold in `racket-collect` for the batch ≡ incremental
//! contract to hold.
//!
//! The packed layout is `app_code << 32 | bucket`, where
//! `bucket = t_secs / bucket_secs`. Both halves are `u32`-ranged by
//! construction: app identifiers are dense `u32`s throughout the
//! pipeline, and a `u32` bucket index covers > 8 000 simulated years at
//! the coarsest supported granularity (1 s buckets still cover the whole
//! study window of any realistic configuration; callers assert via
//! [`pack_shingle`]'s debug checks).

/// Pack one `(app, time)` observation into a shingle.
///
/// `bucket_secs` must be non-zero. The bucket index must fit in 32 bits
/// (checked in debug builds); all simulator timestamps are far below
/// that at the default 6-hour granularity.
#[inline]
pub fn pack_shingle(app: u32, t_secs: u64, bucket_secs: u64) -> u64 {
    debug_assert!(bucket_secs > 0, "bucket_secs must be non-zero");
    let bucket = t_secs / bucket_secs;
    debug_assert!(bucket <= u32::MAX as u64, "bucket index overflows u32");
    ((app as u64) << 32) | (bucket & 0xFFFF_FFFF)
}

/// Recover `(app, bucket_index)` from a packed shingle.
#[inline]
pub fn unpack_shingle(s: u64) -> (u32, u32) {
    ((s >> 32) as u32, (s & 0xFFFF_FFFF) as u32)
}

/// Extract the sorted, deduplicated shingle set of one device from
/// parallel `(app, time)` event columns.
///
/// This is the batch-side extraction kernel: `apps` and `times` are the
/// slices of the install-event column family for one install record.
/// `out` is cleared first so callers can reuse one scratch buffer across
/// records. The result is ascending and unique — the canonical shingle
/// order every consumer (MinHash folds, exact-Jaccard scans) iterates in.
pub fn shingle_set(apps: &[u32], times: &[u64], bucket_secs: u64, out: &mut Vec<u64>) {
    assert_eq!(apps.len(), times.len(), "event columns must be parallel");
    out.clear();
    out.extend(
        apps.iter()
            .zip(times)
            .map(|(&a, &t)| pack_shingle(a, t, bucket_secs)),
    );
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_roundtrip() {
        let s = pack_shingle(7, 100_000, 21_600);
        assert_eq!(unpack_shingle(s), (7, 100_000 / 21_600));
        assert_eq!(unpack_shingle(pack_shingle(u32::MAX, 0, 1)), (u32::MAX, 0));
    }

    #[test]
    fn same_bucket_same_shingle() {
        let b = 21_600;
        assert_eq!(pack_shingle(3, 0, b), pack_shingle(3, b - 1, b));
        assert_ne!(pack_shingle(3, b - 1, b), pack_shingle(3, b, b));
        assert_ne!(pack_shingle(3, 0, b), pack_shingle(4, 0, b));
    }

    proptest! {
        #[test]
        fn shingle_set_is_sorted_unique_and_complete(
            events in proptest::collection::vec((0u32..50, 0u64..2_000_000), 0..80),
            bucket_secs in 1u64..100_000,
        ) {
            let apps: Vec<u32> = events.iter().map(|e| e.0).collect();
            let times: Vec<u64> = events.iter().map(|e| e.1).collect();
            let mut out = vec![0xDEAD]; // stale scratch must be cleared
            shingle_set(&apps, &times, bucket_secs, &mut out);

            let mut naive: Vec<u64> = events
                .iter()
                .map(|&(a, t)| pack_shingle(a, t, bucket_secs))
                .collect();
            naive.sort_unstable();
            naive.dedup();
            prop_assert_eq!(&out, &naive);
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
