//! K-permutation MinHash over text shingle sets.
//!
//! Same construction as the campaign crate's install-event MinHash — each
//! "permutation" is a seeded SplitMix64 hash, the signature keeps the
//! per-permutation minimum — but on its **own salted hash family**
//! ([`TEXT_MINHASH_SALT`]), so text signatures and install-event
//! signatures can never be confused and this crate stays dependency-free.
//!
//! `min` is commutative, associative and idempotent, so a signature is a
//! pure function of the shingle *set*: fold order, duplicate folds and
//! merge order are all invisible. That is the whole batch ≡ incremental
//! argument at the kernel level.

use crate::shingle::mix64;

/// Salt separating the text MinHash family from the campaign crate's
/// (`MINHASH_SALT`) and every other SplitMix64 use in the workspace.
pub const TEXT_MINHASH_SALT: u64 = 0x7E17_AB1E_5EED_F00D;

/// The seed of text permutation `k` (pure function — no seed table needs
/// to live in any record).
#[inline]
pub fn perm_seed(k: usize) -> u64 {
    mix64(TEXT_MINHASH_SALT ^ (k as u64))
}

/// Hash one shingle under a permutation seed.
#[inline]
pub fn perm_hash(shingle: u64, seed: u64) -> u64 {
    mix64(shingle ^ seed)
}

/// A MinHash signature over text shingles: `sig[k]` is the minimum of
/// `perm_hash(s, perm_seed(k))` over every shingle folded so far
/// (`u64::MAX` when empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    sig: Vec<u64>,
}

impl MinHash {
    /// The empty signature of length `k` (merge identity).
    pub fn empty(k: usize) -> Self {
        MinHash {
            sig: vec![u64::MAX; k],
        }
    }

    /// Signature length.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether no shingle has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.sig.iter().all(|&v| v == u64::MAX)
    }

    /// The raw signature rows.
    pub fn rows(&self) -> &[u64] {
        &self.sig
    }

    /// Fold one shingle into the signature.
    pub fn observe(&mut self, shingle: u64) {
        for (k, slot) in self.sig.iter_mut().enumerate() {
            let h = perm_hash(shingle, perm_seed(k));
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Merge a signature over another shingle set: elementwise min, equal
    /// to the signature of the union. Commutative, associative,
    /// idempotent, with [`MinHash::empty`] as identity.
    ///
    /// # Panics
    /// If the signature lengths differ.
    pub fn merge(&mut self, other: &MinHash) {
        assert_eq!(
            self.sig.len(),
            other.sig.len(),
            "cannot merge text MinHash signatures of different lengths"
        );
        for (a, &b) in self.sig.iter_mut().zip(&other.sig) {
            if b < *a {
                *a = b;
            }
        }
    }

    /// Jaccard estimate: fraction of agreeing rows. Two empty signatures
    /// estimate 1.0 (the `J(∅, ∅) = 1` convention).
    pub fn estimate_jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(self.sig.len(), other.sig.len());
        if self.sig.is_empty() {
            return 1.0;
        }
        let agree = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.sig.len() as f64
    }

    pub(crate) fn sig_mut(&mut self) -> &mut [u64] {
        &mut self.sig
    }
}

/// A MinHash folder with the permutation seed table precomputed — the
/// batch-rebuild / benchmark hot loop. Pinned by tests to produce
/// signatures identical to [`MinHash::observe`].
#[derive(Debug, Clone)]
pub struct TextHasher {
    seeds: Vec<u64>,
}

impl TextHasher {
    /// Build the seed table for signatures of length `k`.
    pub fn new(k: usize) -> Self {
        TextHasher {
            seeds: (0..k).map(perm_seed).collect(),
        }
    }

    /// Fold one shingle into `sig` (must have length `k`).
    #[inline]
    pub fn fold(&self, sig: &mut [u64], shingle: u64) {
        debug_assert_eq!(sig.len(), self.seeds.len());
        for (slot, &seed) in sig.iter_mut().zip(&self.seeds) {
            let h = perm_hash(shingle, seed);
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Signature of a whole shingle slice, starting from empty.
    pub fn signature(&self, shingles: &[u64]) -> MinHash {
        let mut m = MinHash::empty(self.seeds.len());
        for &s in shingles {
            self.fold(&mut m.sig, s);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_is_order_and_duplicate_insensitive() {
        let mut a = MinHash::empty(32);
        for s in [9u64, 5, 7, 7, 5] {
            a.observe(s);
        }
        let mut b = MinHash::empty(32);
        for s in [5u64, 7, 9] {
            b.observe(s);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn hasher_matches_observe() {
        let shingles = [42u64, 1, 999_999, 42];
        let mut via_observe = MinHash::empty(32);
        for &s in &shingles {
            via_observe.observe(s);
        }
        assert_eq!(TextHasher::new(32).signature(&shingles), via_observe);
    }

    #[test]
    fn family_is_distinct_from_plain_mixing() {
        // The salted family must not degenerate to unsalted SplitMix64.
        assert_ne!(perm_hash(123, perm_seed(0)), mix64(123));
        assert_ne!(perm_seed(0), perm_seed(1));
    }

    #[test]
    fn empty_signatures_estimate_one() {
        let a = MinHash::empty(32);
        assert_eq!(a.estimate_jaccard(&MinHash::empty(32)), 1.0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 32);
    }
}
