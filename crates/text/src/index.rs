//! A streaming near-duplicate index over review SimHashes.
//!
//! The index buckets each inserted SimHash under four 16-bit bands. Two
//! hashes within Hamming distance 3 of each other share at least one
//! exact band (pigeonhole over 4 bands), and copy-paste campaign
//! templates land at distance 0–2, so banding recalls them with
//! certainty while keeping bucket scans cheap. [`NearDupIndex::scan`]
//! then *verifies* every in-bucket candidate pair against a caller-chosen
//! Hamming threshold, which may exceed the banding guarantee — banding is
//! recall floor, verification is the precision gate.
//!
//! All state is B-tree keyed, so the index — and the scan report — is a
//! canonical function of the inserted **set**, independent of insertion
//! order and duplicate inserts. That makes "streaming index state ≡
//! batch-rebuilt index state" a byte-level comparison.

use crate::simhash::hamming;
use std::collections::{BTreeMap, BTreeSet};

/// Number of SimHash bands the index buckets on.
const N_BANDS: u32 = 4;
/// Bits per band (`64 / N_BANDS`).
const BAND_BITS: u32 = 64 / N_BANDS;

/// A banded near-duplicate index over `(owner, simhash)` pairs.
///
/// `owner` is an opaque caller identity (e.g. an install/app pairing);
/// pairs sharing an owner are never reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NearDupIndex {
    buckets: BTreeMap<(u8, u16), BTreeSet<(u64, u64)>>,
}

/// The result of a verification scan over a [`NearDupIndex`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NearDupScan {
    /// Verified owner pairs (`a < b`), each within the Hamming threshold
    /// on at least one SimHash pair.
    pub pairs: BTreeSet<(u64, u64)>,
    /// Distinct cross-owner candidate pairs that shared a bucket.
    pub n_candidates: usize,
    /// Candidates that passed Hamming verification.
    pub n_verified: usize,
}

impl NearDupIndex {
    /// An empty index.
    pub fn new() -> Self {
        NearDupIndex::default()
    }

    /// Insert one `(owner, simhash)` observation. Idempotent.
    pub fn insert(&mut self, owner: u64, simhash: u64) {
        for band in 0..N_BANDS {
            let key = ((simhash >> (band * BAND_BITS)) & 0xFFFF) as u16;
            self.buckets
                .entry((band as u8, key))
                .or_default()
                .insert((simhash, owner));
        }
    }

    /// Number of distinct `(band, key)` buckets in use.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Verify all in-bucket candidate pairs against `max_hamming`.
    ///
    /// A candidate is a cross-owner pair of distinct `(simhash, owner)`
    /// entries sharing at least one band bucket; it is counted once even
    /// when several bands propose it. A verified owner pair is reported
    /// once even when several SimHash pairs support it.
    pub fn scan(&self, max_hamming: u32) -> NearDupScan {
        let mut candidates: BTreeSet<((u64, u64), (u64, u64))> = BTreeSet::new();
        for entries in self.buckets.values() {
            let flat: Vec<(u64, u64)> = entries.iter().copied().collect();
            for i in 0..flat.len() {
                for j in (i + 1)..flat.len() {
                    let (a, b) = (flat[i], flat[j]);
                    if a.1 == b.1 {
                        continue;
                    }
                    candidates.insert(if a <= b { (a, b) } else { (b, a) });
                }
            }
        }
        let mut scan = NearDupScan {
            n_candidates: candidates.len(),
            ..NearDupScan::default()
        };
        for ((sim_a, own_a), (sim_b, own_b)) in candidates {
            if hamming(sim_a, sim_b) <= max_hamming {
                scan.n_verified += 1;
                scan.pairs.insert(if own_a <= own_b {
                    (own_a, own_b)
                } else {
                    (own_b, own_a)
                });
            }
        }
        scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simhash::simhash64_of_text;

    const TEMPLATE: &str = "great app works perfectly love the new design and speed";

    #[test]
    fn identical_texts_pair_across_owners() {
        let mut idx = NearDupIndex::new();
        let h = simhash64_of_text(TEMPLATE, 2);
        idx.insert(1, h);
        idx.insert(2, h);
        idx.insert(3, h);
        let scan = idx.scan(6);
        assert_eq!(scan.pairs, BTreeSet::from([(1u64, 2u64), (1, 3), (2, 3)]));
        assert_eq!(scan.n_verified, 3);
    }

    #[test]
    fn same_owner_never_pairs_with_itself() {
        let mut idx = NearDupIndex::new();
        let h = simhash64_of_text(TEMPLATE, 2);
        idx.insert(9, h);
        idx.insert(9, h ^ 1); // 1 bit apart, same owner
        let scan = idx.scan(6);
        assert!(scan.pairs.is_empty());
        assert_eq!(scan.n_candidates, 0);
    }

    #[test]
    fn distant_bucket_collisions_are_rejected_at_verification() {
        let mut idx = NearDupIndex::new();
        let h = simhash64_of_text(TEMPLATE, 2);
        // Same low band, other 48 bits inverted: candidate, not verified.
        idx.insert(1, h);
        idx.insert(2, h ^ 0xFFFF_FFFF_FFFF_0000);
        let scan = idx.scan(6);
        assert_eq!(scan.n_candidates, 1);
        assert_eq!(scan.n_verified, 0);
        assert!(scan.pairs.is_empty());
    }

    #[test]
    fn index_is_insertion_order_and_duplicate_insensitive() {
        let hashes = [
            (1u64, 111u64),
            (2, 222),
            (3, simhash64_of_text(TEMPLATE, 2)),
        ];
        let mut fwd = NearDupIndex::new();
        for &(o, h) in &hashes {
            fwd.insert(o, h);
        }
        let mut rev = NearDupIndex::new();
        for &(o, h) in hashes.iter().rev() {
            rev.insert(o, h);
            rev.insert(o, h);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.scan(6), rev.scan(6));
    }

    #[test]
    fn pigeonhole_recall_within_three_bits() {
        let h = simhash64_of_text(TEMPLATE, 2);
        let mut idx = NearDupIndex::new();
        idx.insert(1, h);
        idx.insert(2, h ^ 0b1011); // 3 bits flipped, all in one band
        let scan = idx.scan(3);
        assert_eq!(scan.pairs, BTreeSet::from([(1u64, 2u64)]));
    }
}
