//! The per-install streaming text sketch.
//!
//! A [`TextSketch`] is folded one review at a time at snapshot-ingest
//! time (inside `StreamAggregates`) and rebuilt in batch from the
//! columnar review family; both paths must produce identical sketches.
//! The state is engineered for exactly that contract, mirroring the
//! campaign sketch's algebra:
//!
//! * each review reduces to one canonical [`ReviewRow`] (pure function of
//!   the review fields and the sketch parameters) kept in a B-tree set —
//!   fold **order-insensitive** and **idempotent**;
//! * the install-level MinHash folds each inserted row's shingles, and
//!   `min` makes duplicate and out-of-order folds invisible;
//! * [`TextSketch::merge`] is commutative and associative with the
//!   default sketch as identity, so sharded ingest merges freely.

use crate::minhash::{perm_hash, perm_seed, MinHash};
use crate::sentiment::{sentiment_score, token_vote};
use crate::shingle::for_each_token_and_shingle;
use crate::simhash::{simhash64, simhash64_of_text};

/// Text-kernel parameters shared by every sketch in a study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextParams {
    /// Words per shingle.
    pub shingle_k: usize,
    /// MinHash signature length (capped at [`TextParams::MAX_N_HASHES`]).
    pub n_hashes: usize,
}

impl TextParams {
    /// Largest supported MinHash signature (the fold's stack seed table).
    pub const MAX_N_HASHES: usize = 64;
}

impl Default for TextParams {
    /// 2-word shingles, 32 permutations: short review texts need narrow
    /// shingles to overlap, and 32 rows estimate Jaccard to ±0.09 at one
    /// standard error — plenty for a *feature*, cheap enough for the
    /// per-review ingest fold.
    fn default() -> Self {
        TextParams {
            shingle_k: 2,
            n_hashes: 32,
        }
    }
}

/// One review, reduced to the canonical fixed-width row the sketch keeps.
///
/// The row is a pure function of `(params, review)`: raw identity fields
/// plus the three content digests (length, sentiment, SimHash) every
/// text feature and the near-duplicate index read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReviewRow {
    /// Raw app identifier.
    pub app: u32,
    /// Raw reviewer (Google) identity.
    pub reviewer: u64,
    /// Posting time in seconds.
    pub time: u64,
    /// Star rating, 1–5.
    pub rating: u8,
    /// Text length in bytes.
    pub len: u32,
    /// Lexicon sentiment score of the text.
    pub sentiment: i32,
    /// 64-bit SimHash of the text's shingle set.
    pub simhash: u64,
}

impl ReviewRow {
    /// Reduce one review to its canonical row under `k`-word shingling.
    pub fn of(
        shingle_k: usize,
        app: u32,
        reviewer: u64,
        time: u64,
        rating: u8,
        text: &str,
    ) -> Self {
        ReviewRow {
            app,
            reviewer,
            time,
            rating,
            len: text.len().min(u32::MAX as usize) as u32,
            sentiment: sentiment_score(text),
            simhash: simhash64_of_text(text, shingle_k),
        }
    }
}

/// Streaming per-install text state: canonical review rows plus an
/// install-level MinHash over all review shingles.
#[derive(Debug, Clone, PartialEq)]
pub struct TextSketch {
    params: TextParams,
    rows: std::collections::BTreeSet<ReviewRow>,
    minhash: MinHash,
}

impl Default for TextSketch {
    fn default() -> Self {
        TextSketch::new(TextParams::default())
    }
}

impl TextSketch {
    /// An empty sketch with the given parameters.
    ///
    /// # Panics
    /// If `n_hashes` exceeds [`TextParams::MAX_N_HASHES`] or is zero.
    pub fn new(params: TextParams) -> Self {
        assert!(
            (1..=TextParams::MAX_N_HASHES).contains(&params.n_hashes),
            "n_hashes must be in 1..={}",
            TextParams::MAX_N_HASHES
        );
        TextSketch {
            params,
            rows: std::collections::BTreeSet::new(),
            minhash: MinHash::empty(params.n_hashes),
        }
    }

    /// The sketch parameters.
    pub fn params(&self) -> TextParams {
        self.params
    }

    /// The canonical review rows, ascending.
    pub fn rows(&self) -> impl Iterator<Item = &ReviewRow> {
        self.rows.iter()
    }

    /// Number of distinct reviews folded.
    pub fn n_reviews(&self) -> usize {
        self.rows.len()
    }

    /// Whether no review has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The install-level MinHash over all review shingles.
    pub fn minhash(&self) -> &MinHash {
        &self.minhash
    }

    /// Fold one review. Idempotent: re-folding an identical review leaves
    /// the sketch unchanged (the row set dedups it and `min` makes the
    /// MinHash refold a no-op).
    ///
    /// Equivalent to building [`ReviewRow::of`] and refolding the text's
    /// shingles, but scans the text exactly once: token votes accumulate
    /// the sentiment while the shingle hashes buffer for the SimHash vote
    /// and (for newly inserted rows) the MinHash fold. This is the ingest
    /// hot path held to the bench floor.
    pub fn observe(&mut self, app: u32, reviewer: u64, time: u64, rating: u8, text: &str) {
        // Review texts are short; a stack buffer covers them, the spill
        // vector keeps arbitrary inputs correct.
        const STACK_SHINGLES: usize = 64;
        let mut stack = [0u64; STACK_SHINGLES];
        let mut spill: Vec<u64> = Vec::new();
        let mut count = 0usize;
        let mut sentiment = 0i32;
        for_each_token_and_shingle(
            text,
            self.params.shingle_k,
            |h| sentiment += token_vote(h),
            |sh| {
                if count < STACK_SHINGLES {
                    stack[count] = sh;
                } else {
                    spill.push(sh);
                }
                count += 1;
            },
        );
        let buffered = &stack[..count.min(STACK_SHINGLES)];
        let shingles = || buffered.iter().copied().chain(spill.iter().copied());
        let row = ReviewRow {
            app,
            reviewer,
            time,
            rating,
            len: text.len().min(u32::MAX as usize) as u32,
            sentiment,
            simhash: simhash64(shingles()),
        };
        debug_assert_eq!(
            row,
            ReviewRow::of(self.params.shingle_k, app, reviewer, time, rating, text),
            "single-scan fold must agree with the canonical row reduction"
        );
        if !self.rows.insert(row) {
            return;
        }
        // Stack seed table: one `perm_seed` chain per review, not per
        // shingle — then fold the buffered shingles into the signature.
        // Shingle-major order keeps the `n` permutation hashes of one
        // shingle independent, so they pipeline.
        let n = self.params.n_hashes;
        let mut seeds = [0u64; TextParams::MAX_N_HASHES];
        for (k, s) in seeds.iter_mut().take(n).enumerate() {
            *s = perm_seed(k);
        }
        let sig = self.minhash.sig_mut();
        for sh in shingles() {
            for k in 0..n {
                let h = perm_hash(sh, seeds[k]);
                if h < sig[k] {
                    sig[k] = h;
                }
            }
        }
    }

    /// Merge another sketch (row-set union + MinHash min). Commutative,
    /// associative, idempotent; the default sketch is the identity.
    ///
    /// # Panics
    /// If the parameters differ.
    pub fn merge(&mut self, other: &TextSketch) {
        assert_eq!(
            self.params, other.params,
            "cannot merge text sketches with different parameters"
        );
        self.rows.extend(other.rows.iter().copied());
        self.minhash.merge(&other.minhash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(reviews: &[(u32, u64, u64, u8, &str)]) -> TextSketch {
        let mut s = TextSketch::default();
        for &(app, who, t, stars, text) in reviews {
            s.observe(app, who, t, stars, text);
        }
        s
    }

    #[test]
    fn observe_is_idempotent_and_order_insensitive() {
        let a = sketch_of(&[
            (1, 10, 100, 5, "great app"),
            (2, 11, 200, 1, "crashes a lot"),
            (1, 10, 100, 5, "great app"),
        ]);
        let b = sketch_of(&[
            (2, 11, 200, 1, "crashes a lot"),
            (1, 10, 100, 5, "great app"),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.n_reviews(), 2);
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let all = sketch_of(&[
            (1, 10, 100, 5, "great app works well"),
            (2, 11, 200, 2, "slow and buggy"),
            (3, 12, 300, 4, "nice design"),
        ]);
        let mut left = sketch_of(&[(1, 10, 100, 5, "great app works well")]);
        let right = sketch_of(&[
            (2, 11, 200, 2, "slow and buggy"),
            (3, 12, 300, 4, "nice design"),
        ]);
        left.merge(&right);
        assert_eq!(left, all);
        // Identity + idempotence.
        left.merge(&TextSketch::default());
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn rows_carry_content_digests() {
        let s = sketch_of(&[(7, 1, 50, 5, "Great app, love it!")]);
        let row = s.rows().next().unwrap();
        assert_eq!(row.app, 7);
        assert_eq!(row.len, 19);
        assert!(row.sentiment >= 2);
        assert_ne!(row.simhash, 0);
        assert!(!s.minhash().is_empty());
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn mixed_params_refuse_to_merge() {
        let mut a = TextSketch::new(TextParams {
            shingle_k: 2,
            n_hashes: 16,
        });
        let b = TextSketch::default();
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "n_hashes")]
    fn oversized_signature_rejected() {
        let _ = TextSketch::new(TextParams {
            shingle_k: 2,
            n_hashes: 65,
        });
    }
}
