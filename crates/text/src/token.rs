//! ASCII word tokenization with case-folded token hashing.
//!
//! A *token* is a maximal run of ASCII alphanumeric bytes; every other
//! byte is a separator. Tokens are hashed with FNV-1a over their
//! lower-cased bytes, so `"Great"`, `"great"` and `"GREAT"` hash
//! identically while never allocating — the whole tokenizer is a single
//! pass over the input bytes.

/// FNV-1a offset basis, doubling as the seed of the token hash family.
pub const TOKEN_HASH_SEED: u64 = 0xCBF2_9CE4_8422_2325;

const FNV_PRIME: u64 = 0x1_0000_0000_01B3;

/// FNV-1a over case-folded bytes; `const` so the sentiment lexicon can be
/// hashed at compile time.
pub(crate) const fn fnv1a_folded(bytes: &[u8]) -> u64 {
    let mut h = TOKEN_HASH_SEED;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i].to_ascii_lowercase() as u64;
        h = h.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    h
}

/// Call `f` with the case-folded hash of every token of `text`, in order.
///
/// The closure-based shape keeps the per-review hot path allocation-free:
/// shingling, SimHash voting and MinHash folding all run off this single
/// byte scan.
#[inline]
pub fn for_each_token_hash(text: &str, mut f: impl FnMut(u64)) {
    let mut h = TOKEN_HASH_SEED;
    let mut in_token = false;
    for &b in text.as_bytes() {
        if b.is_ascii_alphanumeric() {
            h ^= b.to_ascii_lowercase() as u64;
            h = h.wrapping_mul(FNV_PRIME);
            in_token = true;
        } else if in_token {
            f(h);
            h = TOKEN_HASH_SEED;
            in_token = false;
        }
    }
    if in_token {
        f(h);
    }
}

/// The token hashes of `text`, collected (test/diagnostic convenience;
/// hot paths use [`for_each_token_hash`]).
pub fn token_hashes(text: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for_each_token_hash(text, |h| out.push(h));
    out
}

/// Number of tokens in `text`.
pub fn token_count(text: &str) -> usize {
    let mut n = 0;
    for_each_token_hash(text, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_alphanumeric_runs() {
        assert_eq!(token_count("great app, works well!"), 4);
        assert_eq!(token_count(""), 0);
        assert_eq!(token_count("   ...   "), 0);
        assert_eq!(token_count("a1b2"), 1);
    }

    #[test]
    fn hashing_is_case_insensitive() {
        assert_eq!(token_hashes("Great App"), token_hashes("gReAt aPp"));
        assert_ne!(token_hashes("great"), token_hashes("grate"));
    }

    #[test]
    fn punctuation_only_separates() {
        assert_eq!(token_hashes("works-well"), token_hashes("works well"));
        assert_eq!(token_hashes("works  well"), token_hashes("works\nwell"));
    }

    #[test]
    fn const_hash_matches_runtime_hash() {
        const H: u64 = fnv1a_folded(b"Great");
        assert_eq!(token_hashes("great"), vec![H]);
    }
}
