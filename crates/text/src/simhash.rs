//! 64-bit SimHash over shingle sets.
//!
//! Every shingle votes its bit pattern (+1 where the shingle hash has a
//! 1-bit, −1 where it has a 0-bit); the SimHash keeps the sign of each
//! bit's tally. Similar shingle multisets therefore land at small Hamming
//! distance — the property the near-duplicate index verifies candidates
//! against.
//!
//! The tally is bit-sliced: instead of 64 scalar counters updated with a
//! per-lane shift (which no SIMD unit can vectorize), each shingle
//! ripple-carries into eight 64-lane bit planes (~3 word ops per shingle),
//! and the final sign test is a 64-lane bit-sliced comparator against
//! ⌊n/2⌋. The result is identical to the naive ±1 vote loop — `votes[b] >
//! 0` iff the ones-count of bit `b` strictly exceeds `n/2` — which the
//! tests pin against a reference implementation.

use crate::shingle::for_each_shingle;

/// Bit planes per chunk: counts up to 255 shingles before a flush.
const PLANES: usize = 8;
/// Shingles per chunk (the largest count eight planes can hold).
const CHUNK: u32 = 255;

/// Streaming 64-lane majority-vote accumulator.
///
/// `planes[j]` holds bit `j` of every lane's ones-counter; folding a
/// shingle is a ripple-carry increment of the lanes where the shingle has
/// a 1-bit. Inputs longer than one chunk spill into the 64 scalar
/// counters, so arbitrary iterator lengths stay exact.
struct Votes {
    planes: [u64; PLANES],
    counts: [u64; 64],
    chunk: u32,
    flushed: bool,
    n: u64,
}

impl Default for Votes {
    fn default() -> Self {
        Votes {
            planes: [0; PLANES],
            counts: [0; 64],
            chunk: 0,
            flushed: false,
            n: 0,
        }
    }
}

impl Votes {
    #[inline]
    fn observe(&mut self, s: u64) {
        let mut x = s;
        for p in &mut self.planes {
            let carry = *p & x;
            *p ^= x;
            x = carry;
            if x == 0 {
                break;
            }
        }
        self.n += 1;
        self.chunk += 1;
        if self.chunk == CHUNK {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for (b, c) in self.counts.iter_mut().enumerate() {
            let mut v = 0u64;
            for (j, p) in self.planes.iter().enumerate() {
                v += ((p >> b) & 1) << j;
            }
            *c += v;
        }
        self.planes = [0; PLANES];
        self.chunk = 0;
        self.flushed = true;
    }

    fn finish(mut self) -> u64 {
        if !self.flushed {
            // Single chunk: 64-lane bit-sliced `count > ⌊n/2⌋`, MSB-first.
            // `votes[b] > 0` ⟺ `2·ones > n` ⟺ `ones > ⌊n/2⌋` (both
            // parities), and ⌊n/2⌋ ≤ 127 fits the planes' width.
            let t = self.n / 2;
            let mut gt = 0u64;
            let mut eq = !0u64;
            for j in (0..PLANES).rev() {
                let tb = if (t >> j) & 1 == 1 { !0u64 } else { 0u64 };
                gt |= eq & self.planes[j] & !tb;
                eq &= !(self.planes[j] ^ tb);
            }
            return gt;
        }
        self.flush();
        let n = self.n;
        self.counts
            .iter()
            .enumerate()
            .fold(0u64, |acc, (b, &c)| acc | (u64::from(2 * c > n) << b))
    }
}

/// SimHash of a shingle-hash iterator: per-bit majority vote (+1/−1 per
/// shingle), ties resolving to 0.
pub fn simhash64(shingles: impl IntoIterator<Item = u64>) -> u64 {
    let mut votes = Votes::default();
    for s in shingles {
        votes.observe(s);
    }
    votes.finish()
}

/// SimHash of a text under `k`-word shingling — the per-review kernel.
pub fn simhash64_of_text(text: &str, k: usize) -> u64 {
    let mut votes = Votes::default();
    for_each_shingle(text, k, |s| votes.observe(s));
    votes.finish()
}

/// Hamming distance between two SimHashes.
#[inline]
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::shingle_hashes;

    /// The definitional ±1 vote loop the bit-sliced kernel must match.
    fn simhash64_reference(shingles: impl IntoIterator<Item = u64>) -> u64 {
        let mut votes = [0i64; 64];
        for s in shingles {
            for (b, v) in votes.iter_mut().enumerate() {
                *v += if (s >> b) & 1 == 1 { 1 } else { -1 };
            }
        }
        votes
            .iter()
            .enumerate()
            .fold(0u64, |acc, (b, &v)| acc | (u64::from(v > 0) << b))
    }

    #[test]
    fn bit_sliced_kernel_matches_reference_votes() {
        // Deterministic pseudo-random shingles (SplitMix64 stream), at
        // lengths straddling the chunk flush boundary.
        let stream = |len: usize| {
            let mut z = 0x9E37_79B9u64;
            (0..len).map(move |_| {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            })
        };
        for len in [0, 1, 2, 3, 13, 64, 254, 255, 256, 511, 1000] {
            assert_eq!(
                simhash64(stream(len)),
                simhash64_reference(stream(len)),
                "length {len}"
            );
        }
        // Adversarial tie-heavy inputs.
        for input in [
            vec![u64::MAX; 254],
            vec![0u64; 300],
            vec![u64::MAX, 0, u64::MAX, 0],
            vec![0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555],
        ] {
            assert_eq!(
                simhash64(input.iter().copied()),
                simhash64_reference(input.iter().copied())
            );
        }
    }

    #[test]
    fn text_kernel_matches_iterator_kernel() {
        let text = "really great app works well every day";
        assert_eq!(
            simhash64_of_text(text, 2),
            simhash64(shingle_hashes(text, 2))
        );
    }

    #[test]
    fn identical_texts_are_at_distance_zero() {
        let a = simhash64_of_text("Great app, very useful and smooth!", 2);
        let b = simhash64_of_text("great APP very useful and smooth", 2);
        assert_eq!(hamming(a, b), 0);
    }

    #[test]
    fn near_duplicates_are_closer_than_unrelated_texts() {
        let base = "great app works perfectly love the new design and speed";
        let near = "great app works perfectly love the new design and speed today";
        let far = "terrible update crashes constantly and drains my battery fast";
        let (hb, hn, hf) = (
            simhash64_of_text(base, 2),
            simhash64_of_text(near, 2),
            simhash64_of_text(far, 2),
        );
        assert!(hamming(hb, hn) < hamming(hb, hf));
        assert!(hamming(hb, hn) <= 12);
        assert!(hamming(hb, hf) > 12);
    }

    #[test]
    fn empty_text_hashes_to_zero() {
        assert_eq!(simhash64_of_text("", 2), 0);
        assert_eq!(simhash64(std::iter::empty()), 0);
    }
}
