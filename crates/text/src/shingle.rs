//! `k`-word shingle hashes over the token stream.
//!
//! A shingle is the combined hash of `k` consecutive token hashes,
//! chained through the SplitMix64 finalizer under [`SHINGLE_SALT`]. Texts
//! with fewer than `k` tokens still emit one shingle over all their
//! tokens, so even one-word reviews participate in similarity.

use crate::token::for_each_token_hash;

/// Salt separating the shingle-combination hash family from every other
/// SplitMix64 use in the workspace.
pub const SHINGLE_SALT: u64 = 0x5819_57E1_7E87_51ED;

/// SplitMix64 finalizer, the workspace-standard bit mixer.
#[inline]
pub(crate) fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Longest shingle width supported by the fixed-size rolling window.
pub const MAX_SHINGLE_K: usize = 8;

/// Call `f` with the hash of every `k`-word shingle of `text`, in order.
///
/// `k` is clamped to `1..=`[`MAX_SHINGLE_K`]. The window is a fixed stack
/// ring, so the scan allocates nothing.
#[inline]
pub fn for_each_shingle(text: &str, k: usize, f: impl FnMut(u64)) {
    for_each_token_and_shingle(text, k, |_| {}, f);
}

/// One combined scan: call `on_token` with every case-folded token hash
/// and `on_shingle` with every `k`-word shingle hash, in order. The
/// single definition [`for_each_shingle`] and the sketch's one-pass
/// review fold both run on, so the shingle sequence can never diverge
/// between them.
#[inline]
pub(crate) fn for_each_token_and_shingle(
    text: &str,
    k: usize,
    mut on_token: impl FnMut(u64),
    mut on_shingle: impl FnMut(u64),
) {
    let k = k.clamp(1, MAX_SHINGLE_K);
    let mut ring = [0u64; MAX_SHINGLE_K];
    let mut n = 0usize;
    for_each_token_hash(text, |h| {
        on_token(h);
        ring[n % MAX_SHINGLE_K] = h;
        n += 1;
        if n >= k {
            let mut s = SHINGLE_SALT ^ (k as u64);
            for back in (0..k).rev() {
                s = mix64(s ^ ring[(n - 1 - back) % MAX_SHINGLE_K]);
            }
            on_shingle(s);
        }
    });
    // Short text: one shingle over everything it has.
    if n > 0 && n < k {
        let mut s = SHINGLE_SALT ^ (k as u64);
        for &h in ring.iter().take(n) {
            s = mix64(s ^ h);
        }
        on_shingle(s);
    }
}

/// The shingle hashes of `text`, collected (test/diagnostic convenience;
/// hot paths use [`for_each_shingle`]).
pub fn shingle_hashes(text: &str, k: usize) -> Vec<u64> {
    let mut out = Vec::new();
    for_each_shingle(text, k, |s| out.push(s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_the_window() {
        assert_eq!(shingle_hashes("a b c d", 2).len(), 3);
        assert_eq!(shingle_hashes("a b c d", 3).len(), 2);
        assert_eq!(shingle_hashes("a b c d", 1).len(), 4);
    }

    #[test]
    fn short_texts_emit_one_shingle() {
        assert_eq!(shingle_hashes("solo", 3).len(), 1);
        assert_eq!(shingle_hashes("two words", 3).len(), 1);
        assert!(shingle_hashes("", 3).is_empty());
    }

    #[test]
    fn order_matters_within_a_shingle() {
        assert_ne!(shingle_hashes("good app", 2), shingle_hashes("app good", 2));
    }

    #[test]
    fn identical_texts_share_all_shingles() {
        assert_eq!(
            shingle_hashes("Really great app, works!", 2),
            shingle_hashes("really GREAT app works", 2)
        );
    }

    #[test]
    fn width_is_part_of_the_hash() {
        // A 1-shingle of one token and a clamped short-text shingle of the
        // same token under a different k must not collide by construction.
        assert_ne!(shingle_hashes("solo", 1), shingle_hashes("solo", 2));
    }
}
