//! A compile-time hashed positive/negative lexicon.
//!
//! The rating–text divergence feature needs only a sign-and-magnitude
//! sentiment estimate, so the lexicon is two short word lists hashed at
//! compile time with the same case-folded token hash the tokenizer uses —
//! scoring is a pure token scan, no allocation, no tables built at
//! runtime.

use crate::token::{fnv1a_folded, for_each_token_hash};

/// Words counted as positive evidence.
const POSITIVE: [&str; 24] = [
    "great",
    "love",
    "awesome",
    "amazing",
    "perfect",
    "excellent",
    "fantastic",
    "helpful",
    "smooth",
    "best",
    "nice",
    "good",
    "useful",
    "fun",
    "easy",
    "works",
    "recommend",
    "superb",
    "brilliant",
    "wonderful",
    "fast",
    "simple",
    "beautiful",
    "reliable",
];

/// Words counted as negative evidence.
const NEGATIVE: [&str; 24] = [
    "bad", "terrible", "awful", "crash", "crashes", "broken", "worst", "hate", "useless", "slow",
    "bug", "buggy", "scam", "spam", "annoying", "ads", "waste", "poor", "fake", "horrible",
    "freezes", "laggy", "unusable", "refund",
];

const fn hash_list<const N: usize>(words: [&str; N]) -> [u64; N] {
    let mut out = [0u64; N];
    let mut i = 0;
    while i < N {
        out[i] = fnv1a_folded(words[i].as_bytes());
        i += 1;
    }
    out
}

const POSITIVE_HASHES: [u64; 24] = hash_list(POSITIVE);
const NEGATIVE_HASHES: [u64; 24] = hash_list(NEGATIVE);

/// Both lexica as one table sorted by hash, each entry carrying its
/// vote sign — built at compile time so the per-token lookup is a
/// binary search over 48 entries instead of two linear scans. The word
/// lists are disjoint, so the merged hashes are distinct and lookup is
/// exactly equivalent to probing the two lists in order.
const SORTED_LEXICON: [(u64, i32); 48] = sort_lexicon();

const fn sort_lexicon() -> [(u64, i32); 48] {
    let mut table = [(0u64, 0i32); 48];
    let mut i = 0;
    while i < 24 {
        table[i] = (POSITIVE_HASHES[i], 1);
        table[24 + i] = (NEGATIVE_HASHES[i], -1);
        i += 1;
    }
    // Insertion sort by hash (const-evaluable).
    let mut i = 1;
    while i < 48 {
        let entry = table[i];
        let mut j = i;
        while j > 0 && table[j - 1].0 > entry.0 {
            table[j] = table[j - 1];
            j -= 1;
        }
        table[j] = entry;
        i += 1;
    }
    table
}

/// The vote of one case-folded token hash: +1 positive, −1 negative,
/// 0 outside the lexicon. The per-token kernel of [`sentiment_score`],
/// exposed to the crate so single-scan folds can reuse it.
#[inline]
pub(crate) fn token_vote(h: u64) -> i32 {
    let mut lo = 0usize;
    let mut hi = SORTED_LEXICON.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (hash, sign) = SORTED_LEXICON[mid];
        if hash == h {
            return sign;
        }
        if hash < h {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    0
}

/// Sentiment score of a text: positive-lexicon hits minus
/// negative-lexicon hits over its tokens.
pub fn sentiment_score(text: &str) -> i32 {
    let mut score = 0i32;
    for_each_token_hash(text, |h| score += token_vote(h));
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn praise_scores_positive() {
        assert!(sentiment_score("Great app, works perfectly. Love it!") >= 3);
    }

    #[test]
    fn complaints_score_negative() {
        assert!(sentiment_score("terrible update, crashes and freezes") <= -3);
    }

    #[test]
    fn neutral_text_scores_zero() {
        assert_eq!(sentiment_score("opened the settings menu twice"), 0);
        assert_eq!(sentiment_score(""), 0);
    }

    #[test]
    fn scoring_is_case_insensitive() {
        assert_eq!(
            sentiment_score("GREAT and AWFUL"),
            sentiment_score("great and awful")
        );
        assert_eq!(sentiment_score("great and awful"), 0);
    }

    #[test]
    fn lexicons_do_not_overlap() {
        for p in POSITIVE_HASHES {
            assert!(!NEGATIVE_HASHES.contains(&p));
        }
    }
}
