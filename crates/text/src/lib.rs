//! Review-text similarity kernels for the RacketStore reproduction.
//!
//! Martens & Maalej ("Towards Understanding and Detecting Fake Reviews in
//! App Stores") show that the strongest fake-review signals live in the
//! review *text*: template reuse across accounts, rating–text divergence,
//! and cross-account near-duplicates. This crate supplies the content
//! kernels those signals are computed from, with zero dependencies so the
//! hot ingest path stays self-contained:
//!
//! * [`token`] — ASCII word tokenization with case-folded token hashing;
//! * [`shingle`] — `k`-word shingle hashes over a token stream;
//! * [`simhash`] — 64-bit SimHash over shingle sets + Hamming distance;
//! * [`minhash`] — K-permutation MinHash over shingle sets, on its own
//!   salted SplitMix64 hash family (distinct from the campaign crate's);
//! * [`sentiment`] — a compile-time hashed positive/negative lexicon;
//! * [`sketch`] — [`TextSketch`], the per-install streaming fold: one
//!   canonical [`ReviewRow`] per review plus an install-level MinHash.
//!   Observation is idempotent and merge is commutative/associative with
//!   the default sketch as identity, mirroring the campaign sketch
//!   algebra — which is what makes the incremental ingest-time fold
//!   byte-identical to a batch rebuild from the columnar store;
//! * [`index`] — [`NearDupIndex`], a streaming-capable banded-bucket
//!   index over review SimHashes with Hamming verification; its state is
//!   a pure function of the inserted *set*, so batch and incremental
//!   population agree exactly.
//!
//! Everything here is deterministic: no `RandomState`, no floats in any
//! state, B-tree ordering throughout.

#![deny(missing_docs)]

pub mod index;
pub mod minhash;
pub mod sentiment;
pub mod shingle;
pub mod simhash;
pub mod sketch;
pub mod token;

pub use index::{NearDupIndex, NearDupScan};
pub use minhash::{MinHash, TextHasher, TEXT_MINHASH_SALT};
pub use sentiment::sentiment_score;
pub use shingle::{shingle_hashes, SHINGLE_SALT};
pub use simhash::{hamming, simhash64, simhash64_of_text};
pub use sketch::{ReviewRow, TextParams, TextSketch};
pub use token::{token_count, token_hashes, TOKEN_HASH_SEED};
