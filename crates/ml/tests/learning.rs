//! Property and behaviour tests across the learner implementations.

use proptest::prelude::*;
use racket_ml::{
    random_oversample, random_undersample, roc_auc, smote, Classifier, Dataset, DecisionTree,
    DecisionTreeParams, GradientBoosting, GradientBoostingParams, KNearestNeighbors, LinearSvm,
    LinearSvmParams, LogisticRegression, LogisticRegressionParams, Lvq, LvqParams, RandomForest,
    RandomForestParams,
};

/// Every learner must (a) emit probabilities in [0,1], (b) beat chance on
/// separable data, (c) be deterministic under its seed.
fn all_learners() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(DecisionTree::new(DecisionTreeParams::default())),
        Box::new(RandomForest::new(RandomForestParams {
            n_trees: 15,
            ..RandomForestParams::default()
        })),
        Box::new(GradientBoosting::new(GradientBoostingParams {
            n_rounds: 30,
            ..GradientBoostingParams::default()
        })),
        Box::new(LogisticRegression::new(LogisticRegressionParams::default())),
        Box::new(LinearSvm::new(LinearSvmParams::default())),
        Box::new(KNearestNeighbors::paper_default()),
        Box::new(Lvq::new(LvqParams::default())),
    ]
}

fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..n {
        let label = u8::from(i % 2 == 1);
        let offset = if label == 1 { 6.0 } else { -6.0 };
        x.push(vec![offset + (i % 7) as f64 * 0.3, (i % 5) as f64]);
        y.push(label);
    }
    (x, y)
}

#[test]
fn every_learner_separates_and_outputs_probabilities() {
    let (x, y) = separable(80);
    for mut model in all_learners() {
        model.fit(&x, &y);
        let mut correct = 0;
        for (row, &label) in x.iter().zip(&y) {
            let p = model.predict_proba(row);
            assert!((0.0..=1.0).contains(&p), "{}: p = {p}", model.name());
            correct += usize::from(model.predict(row) == label);
        }
        let acc = correct as f64 / x.len() as f64;
        assert!(acc > 0.95, "{} accuracy {acc}", model.name());
    }
}

#[test]
fn every_learner_is_deterministic() {
    let (x, y) = separable(60);
    for (mut a, mut b) in all_learners().into_iter().zip(all_learners()) {
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in x.iter().take(20) {
            assert_eq!(
                a.predict_proba(row),
                b.predict_proba(row),
                "{} not deterministic",
                a.name()
            );
        }
    }
}

proptest! {
    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        truths in proptest::collection::vec(0u8..2, 4..60),
        scores in proptest::collection::vec(0f64..1.0, 60),
    ) {
        let scores = &scores[..truths.len()];
        let base = roc_auc(&truths, scores);
        let squashed: Vec<f64> = scores.iter().map(|s| s * s).collect();
        prop_assert!((roc_auc(&truths, &squashed) - base).abs() < 1e-9);
        let shifted: Vec<f64> = scores.iter().map(|s| s * 100.0 + 5.0).collect();
        prop_assert!((roc_auc(&truths, &shifted) - base).abs() < 1e-9);
    }

    #[test]
    fn resamplers_always_balance(
        n_neg in 3usize..30,
        n_pos in 3usize..30,
        seed in any::<u64>(),
    ) {
        prop_assume!(n_neg != n_pos);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_neg {
            x.push(vec![i as f64, 0.0]);
            y.push(0u8);
        }
        for i in 0..n_pos {
            x.push(vec![50.0 + i as f64, 1.0]);
            y.push(1u8);
        }
        let data = Dataset::new(x, y, vec!["a".into(), "b".into()]);
        for balanced in [
            smote(&data, 3, seed),
            random_oversample(&data, seed),
            random_undersample(&data, seed),
        ] {
            prop_assert_eq!(balanced.n_positive(), balanced.n_negative());
        }
    }

    #[test]
    fn tree_depth_limit_is_respected(
        max_depth in 0usize..6,
        n in 10usize..80,
    ) {
        let (x, y) = {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for i in 0..n {
                x.push(vec![(i * 37 % 101) as f64, (i * 17 % 53) as f64]);
                y.push(u8::from(i % 3 == 0));
            }
            (x, y)
        };
        let mut tree = DecisionTree::new(DecisionTreeParams {
            max_depth,
            ..DecisionTreeParams::default()
        });
        tree.fit(&x, &y);
        prop_assert!(tree.depth() <= max_depth, "depth {} > {max_depth}", tree.depth());
    }
}
