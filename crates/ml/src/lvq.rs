//! Learning Vector Quantization (LVQ1).
//!
//! "LVQ" in Tables 1 and 2. LVQ1 maintains a codebook of prototypes per
//! class; each training sample attracts its nearest prototype if labels
//! match and repels it otherwise, with a linearly decaying learning rate.

use crate::dataset::Standardizer;
use crate::persist::{PersistError, Reader, Writer};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters of [`Lvq`].
#[derive(Debug, Clone, PartialEq)]
pub struct LvqParams {
    /// Prototypes per class.
    pub prototypes_per_class: usize,
    /// Training epochs.
    pub n_epochs: usize,
    /// Initial learning rate (decays linearly to 0).
    pub learning_rate: f64,
    /// RNG seed for prototype initialization and sample order.
    pub seed: u64,
}

impl Default for LvqParams {
    fn default() -> Self {
        LvqParams {
            prototypes_per_class: 8,
            n_epochs: 40,
            learning_rate: 0.3,
            seed: 42,
        }
    }
}

/// An LVQ1 classifier over standardized features.
#[derive(Debug, Clone)]
pub struct Lvq {
    params: LvqParams,
    prototypes: Vec<(Vec<f64>, u8)>,
    scaler: Option<Standardizer>,
}

impl Lvq {
    /// Create an unfitted model.
    pub fn new(params: LvqParams) -> Self {
        assert!(
            params.prototypes_per_class > 0,
            "need at least one prototype per class"
        );
        Lvq {
            params,
            prototypes: Vec::new(),
            scaler: None,
        }
    }

    fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Index of the nearest prototype to `row`.
    fn nearest(&self, row: &[f64]) -> usize {
        self.prototypes
            .iter()
            .enumerate()
            .min_by(|(_, (a, _)), (_, (b, _))| {
                Self::sq_dist(row, a)
                    .partial_cmp(&Self::sq_dist(row, b))
                    .expect("NaN distance")
            })
            .expect("no prototypes")
            .0
    }

    /// Number of prototypes in the fitted codebook.
    pub fn n_prototypes(&self) -> usize {
        self.prototypes.len()
    }
}

impl Classifier for Lvq {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        self.scaler = Some(scaler);
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        // Initialize prototypes with random samples of each class.
        self.prototypes.clear();
        for class in [0u8, 1u8] {
            let mut members: Vec<usize> = (0..xs.len()).filter(|&i| y[i] == class).collect();
            if members.is_empty() {
                continue; // degenerate single-class training set
            }
            members.shuffle(&mut rng);
            for m in 0..self.params.prototypes_per_class {
                let i = members[m % members.len()];
                self.prototypes.push((xs[i].clone(), class));
            }
        }

        // LVQ1 updates with linearly decaying learning rate.
        let total_steps = (self.params.n_epochs * xs.len()).max(1) as f64;
        let mut step = 0f64;
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..self.params.n_epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let alpha = self.params.learning_rate * (1.0 - step / total_steps);
                step += 1.0;
                let w = self.nearest(&xs[i]);
                let matches = self.prototypes[w].1 == y[i];
                let sign = if matches { alpha } else { -alpha };
                let proto = &mut self.prototypes[w].0;
                for (p, v) in proto.iter_mut().zip(&xs[i]) {
                    *p += sign * (v - *p);
                }
            }
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict on unfitted model");
        assert!(!self.prototypes.is_empty(), "predict on unfitted model");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        // Soft score: distance-weighted two-class comparison between the
        // nearest prototype of each class.
        let best = |class: u8| {
            self.prototypes
                .iter()
                .filter(|(_, c)| *c == class)
                .map(|(p, _)| Self::sq_dist(&r, p))
                .min_by(|a, b| a.partial_cmp(b).expect("NaN distance"))
        };
        match (best(0), best(1)) {
            (Some(d0), Some(d1)) => {
                // Logistic link on the (signed) distance difference.
                1.0 / (1.0 + (d1 - d0).exp())
            }
            (None, Some(_)) => 1.0,
            (Some(_), None) => 0.0,
            (None, None) => unreachable!("checked non-empty above"),
        }
    }

    fn name(&self) -> &'static str {
        "LVQ"
    }
}

impl Lvq {
    /// Encode the fitted model (params, prototypes, scaler).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.prototypes_per_class);
        w.usize(self.params.n_epochs);
        w.f64(self.params.learning_rate);
        w.u64(self.params.seed);
        w.usize(self.prototypes.len());
        for (proto, label) in &self.prototypes {
            w.f64s(proto);
            w.u8(*label);
        }
        w.scaler(&self.scaler);
    }

    /// Decode a model written by [`Lvq::write_to`], re-validating the
    /// constructor invariant.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = LvqParams {
            prototypes_per_class: r.usize()?,
            n_epochs: r.usize()?,
            learning_rate: r.f64()?,
            seed: r.u64()?,
        };
        if params.prototypes_per_class == 0 {
            return Err(PersistError::Malformed("need at least one prototype"));
        }
        let n_protos = r.len(9)?;
        let mut prototypes = Vec::with_capacity(n_protos);
        for _ in 0..n_protos {
            let proto = r.f64s()?;
            let label = r.u8()?;
            if label > 1 {
                return Err(PersistError::Malformed("labels must be binary"));
            }
            prototypes.push((proto, label));
        }
        let scaler = r.scaler()?;
        Ok(Lvq {
            params,
            prototypes,
            scaler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = u8::from(i % 2 == 1);
            let cx = if label == 1 { 5.0 } else { -5.0 };
            x.push(vec![cx + (i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn classifies_blobs() {
        let (x, y) = blobs(80);
        let mut lvq = Lvq::new(LvqParams::default());
        lvq.fit(&x, &y);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(r, &l)| lvq.predict(r) == l)
            .count();
        assert!(acc as f64 / x.len() as f64 > 0.95, "acc = {acc}/80");
        assert_eq!(lvq.n_prototypes(), 16);
    }

    #[test]
    fn proba_reflects_side() {
        let (x, y) = blobs(80);
        let mut lvq = Lvq::new(LvqParams::default());
        lvq.fit(&x, &y);
        assert!(lvq.predict_proba(&[6.0, 0.0]) > 0.5);
        assert!(lvq.predict_proba(&[-6.0, 0.0]) < 0.5);
    }

    #[test]
    fn single_class_training_degenerates_gracefully() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut lvq = Lvq::new(LvqParams::default());
        lvq.fit(&x, &y);
        assert_eq!(lvq.predict(&[2.0]), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(40);
        let mut a = Lvq::new(LvqParams::default());
        let mut b = Lvq::new(LvqParams::default());
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    #[should_panic(expected = "need at least one prototype per class")]
    fn zero_prototypes_rejected() {
        Lvq::new(LvqParams {
            prototypes_per_class: 0,
            ..LvqParams::default()
        });
    }
}
