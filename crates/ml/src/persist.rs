//! Model serialization: a versioned, checksummed binary codec for every
//! fitted learner, powering the live detection service.
//!
//! # Format
//!
//! ```text
//! [ magic "RKML" | version u16 LE | model tag u8 | payload len u64 LE |
//!   payload … | FNV-1a-64 checksum u64 LE ]
//! ```
//!
//! The checksum covers every byte before it, so arbitrary corruption is
//! detected before the payload is decoded; all reads are length-checked,
//! so truncated input yields [`PersistError::Truncated`] — decoding
//! returns `Err`, it never panics and never trusts a length field beyond
//! the bytes actually present.
//!
//! A round-tripped model produces bit-identical predictions: every `f64`
//! is stored via [`f64::to_bits`], and the fitted state (trees, weights,
//! prototypes, training set, scaler) is encoded exactly.

use crate::{
    Classifier, GradientBoosting, KNearestNeighbors, LinearSvm, LogisticRegression, Lvq,
    RandomForest, Standardizer,
};
use racket_columnar::FlatMatrix;

/// File magic for serialized models.
pub const MAGIC: [u8; 4] = *b"RKML";
/// Current codec version.
pub const VERSION: u16 = 1;

/// Why a model failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Input ended before the announced structure did.
    Truncated,
    /// The input does not start with the `RKML` magic.
    BadMagic,
    /// The codec version is not supported.
    BadVersion(u16),
    /// The model tag byte names no known learner.
    BadTag(u8),
    /// The trailing checksum does not match the bytes.
    Checksum,
    /// A decoded field violates a model invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "model bytes truncated"),
            PersistError::BadMagic => write!(f, "missing RKML magic"),
            PersistError::BadVersion(v) => write!(f, "unsupported model codec version {v}"),
            PersistError::BadTag(t) => write!(f, "unknown model tag {t}"),
            PersistError::Checksum => write!(f, "model checksum mismatch"),
            PersistError::Malformed(what) => write!(f, "malformed model: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// FNV-1a 64-bit hash over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte sink used by the per-model encoders.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.usize(x);
            }
            None => self.u8(0),
        }
    }

    pub(crate) fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    pub(crate) fn scaler(&mut self, scaler: &Option<Standardizer>) {
        match scaler {
            Some(s) => {
                self.u8(1);
                self.f64s(&s.means);
                self.f64s(&s.sds);
            }
            None => self.u8(0),
        }
    }
}

/// Length-checked little-endian byte source: every read verifies the
/// bytes exist, so truncated or hostile input errors instead of
/// panicking or over-allocating.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.buf.len() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `usize` that will index in-memory structures.
    pub(crate) fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::Malformed("usize overflow"))
    }

    /// A collection length about to drive an allocation of elements at
    /// least `elem_size` bytes each: bounded by the bytes remaining, so a
    /// corrupted length cannot trigger a huge allocation.
    pub(crate) fn len(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        if n.saturating_mul(elem_size.max(1)) > self.remaining() {
            return Err(PersistError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn opt_usize(&mut self) -> Result<Option<usize>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            _ => Err(PersistError::Malformed("option discriminant")),
        }
    }

    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    pub(crate) fn scaler(&mut self) -> Result<Option<Standardizer>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let means = self.f64s()?;
                let sds = self.f64s()?;
                if means.len() != sds.len() {
                    return Err(PersistError::Malformed("scaler dimension mismatch"));
                }
                Ok(Some(Standardizer { means, sds }))
            }
            _ => Err(PersistError::Malformed("scaler discriminant")),
        }
    }
}

/// A fitted learner behind one serializable type — what the live
/// detection service stores, ships and scores with.
#[derive(Debug, Clone)]
pub enum Model {
    /// Gradient-boosted trees (the paper's XGB, Table 1/2 best).
    Xgb(GradientBoosting),
    /// Random forest.
    Rf(RandomForest),
    /// Logistic regression.
    Lr(LogisticRegression),
    /// Linear (Pegasos) SVM.
    Svm(LinearSvm),
    /// K-nearest neighbours.
    Knn(KNearestNeighbors),
    /// Learning vector quantization.
    Lvq(Lvq),
}

impl Model {
    fn tag(&self) -> u8 {
        match self {
            Model::Xgb(_) => 1,
            Model::Rf(_) => 2,
            Model::Lr(_) => 3,
            Model::Svm(_) => 4,
            Model::Knn(_) => 5,
            Model::Lvq(_) => 6,
        }
    }

    /// The wrapped learner's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Xgb(m) => m.name(),
            Model::Rf(m) => m.name(),
            Model::Lr(m) => m.name(),
            Model::Svm(m) => m.name(),
            Model::Knn(m) => m.name(),
            Model::Lvq(m) => m.name(),
        }
    }

    /// Probability that `row` belongs to class 1 — the `score` fast path
    /// of the detection service.
    pub fn score(&self, row: &[f64]) -> f64 {
        match self {
            Model::Xgb(m) => m.predict_proba(row),
            Model::Rf(m) => m.predict_proba(row),
            Model::Lr(m) => m.predict_proba(row),
            Model::Svm(m) => m.predict_proba(row),
            Model::Knn(m) => m.predict_proba(row),
            Model::Lvq(m) => m.predict_proba(row),
        }
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.score(row) >= 0.5)
    }

    /// Probabilities for every row of a flat feature matrix.
    ///
    /// The boosted-tree model dispatches to its columnar batch kernel
    /// ([`GradientBoosting::predict_proba_batch`]); every other learner
    /// scores row by row over the same contiguous buffer. Either way the
    /// result is bitwise equal to calling [`Model::score`] per row.
    pub fn score_batch(&self, x: &FlatMatrix) -> Vec<f64> {
        match self {
            Model::Xgb(m) => m.predict_proba_batch(x),
            other => x.rows().map(|row| other.score(row)).collect(),
        }
    }

    /// Serialize to the `RKML` wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        match self {
            Model::Xgb(m) => m.write_to(&mut payload),
            Model::Rf(m) => m.write_to(&mut payload),
            Model::Lr(m) => m.write_to(&mut payload),
            Model::Svm(m) => m.write_to(&mut payload),
            Model::Knn(m) => m.write_to(&mut payload),
            Model::Lvq(m) => m.write_to(&mut payload),
        }
        let mut out = Vec::with_capacity(payload.buf.len() + 23);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.tag());
        out.extend_from_slice(&(payload.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload.buf);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialize a model previously produced by [`Model::to_bytes`].
    ///
    /// Returns `Err` — never panics — on truncated, corrupted or
    /// malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Model, PersistError> {
        // Envelope: magic/version/tag/len + trailing checksum.
        if bytes.len() < MAGIC.len() + 2 + 1 + 8 + 8 {
            return Err(PersistError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a64(body) != stored {
            return Err(PersistError::Checksum);
        }
        let mut r = Reader::new(body);
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let tag = r.u8()?;
        let payload_len = r.usize()?;
        if payload_len != r.remaining() {
            return Err(PersistError::Malformed("payload length mismatch"));
        }
        let model = match tag {
            1 => Model::Xgb(GradientBoosting::read_from(&mut r)?),
            2 => Model::Rf(RandomForest::read_from(&mut r)?),
            3 => Model::Lr(LogisticRegression::read_from(&mut r)?),
            4 => Model::Svm(LinearSvm::read_from(&mut r)?),
            5 => Model::Knn(KNearestNeighbors::read_from(&mut r)?),
            6 => Model::Lvq(Lvq::read_from(&mut r)?),
            t => return Err(PersistError::BadTag(t)),
        };
        if r.remaining() != 0 {
            return Err(PersistError::Malformed("trailing bytes after payload"));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn reader_guards_lengths() {
        let mut r = Reader::new(&[3, 0, 0, 0, 0, 0, 0, 0, 1, 2]);
        // 3 elements of 8 bytes each cannot fit in 2 remaining bytes.
        assert_eq!(r.len(8), Err(PersistError::Truncated));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(matches!(
            Model::from_bytes(&[]),
            Err(PersistError::Truncated)
        ));
        assert!(matches!(
            Model::from_bytes(&[0u8; 64]),
            Err(PersistError::Checksum)
        ));
    }
}
