//! K-nearest-neighbours classification.
//!
//! "KNN" in Tables 1 and 2; the paper reports best performance at `k = 5`.
//! Features are standardized internally (Euclidean distance is otherwise
//! dominated by large-scale features like snapshots-per-day).
//!
//! The training set is held as a `racket-columnar` [`FlatMatrix`] — one
//! contiguous row-major buffer — so the distance loop streams through
//! memory instead of chasing a `Vec<Vec<f64>>` pointer per neighbour.
//! Distances use [`racket_columnar::sq_dist`], whose fold order is the
//! row-oriented expression's, so predictions (and the RKML byte format)
//! are unchanged by the layout.

use crate::dataset::Standardizer;
use crate::persist::{PersistError, Reader, Writer};
use crate::Classifier;
use racket_columnar::{sq_dist, FlatMatrix};

/// Brute-force KNN classifier with internal standardization.
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    train_x: FlatMatrix,
    train_y: Vec<u8>,
    scaler: Option<Standardizer>,
}

impl KNearestNeighbors {
    /// Create a classifier with the given neighbourhood size.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KNearestNeighbors {
            k,
            train_x: FlatMatrix::new(0),
            train_y: Vec::new(),
            scaler: None,
        }
    }

    /// The paper's configuration (`k = 5`).
    pub fn paper_default() -> Self {
        Self::new(5)
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        let scaler = Standardizer::fit(x);
        self.train_x = FlatMatrix::from_rows(&scaler.transform(x));
        self.train_y = y.to_vec();
        self.scaler = Some(scaler);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict on unfitted model");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        let k = self.k.min(self.train_x.n_rows());
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, u8)> = self
            .train_x
            .rows()
            .zip(&self.train_y)
            .map(|(t, &l)| (sq_dist(&r, t), l))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let votes: u32 = dists[..k].iter().map(|&(_, l)| u32::from(l)).sum();
        f64::from(votes) / k as f64
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

impl KNearestNeighbors {
    /// Encode the classifier (k, training set, scaler). The byte layout
    /// predates the flat-matrix storage and is unchanged by it: row
    /// count, column count, then row-major `f64`s.
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.k);
        w.usize(self.train_x.n_rows());
        w.usize(self.train_x.n_cols());
        for row in self.train_x.rows() {
            for &v in row {
                w.f64(v);
            }
        }
        for &label in &self.train_y {
            w.u8(label);
        }
        w.scaler(&self.scaler);
    }

    /// Decode a classifier written by [`KNearestNeighbors::write_to`],
    /// re-validating the `k > 0` constructor invariant.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let k = r.usize()?;
        if k == 0 {
            return Err(PersistError::Malformed("k must be positive"));
        }
        let rows = r.len(1)?;
        let cols = r.usize()?;
        if rows.saturating_mul(cols).saturating_mul(8) > r.remaining() {
            return Err(PersistError::Truncated);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(r.f64()?);
        }
        let train_x = FlatMatrix::from_parts(data, rows, cols);
        let mut train_y = Vec::with_capacity(rows);
        for _ in 0..rows {
            let label = r.u8()?;
            if label > 1 {
                return Err(PersistError::Malformed("labels must be binary"));
            }
            train_y.push(label);
        }
        let scaler = r.scaler()?;
        Ok(KNearestNeighbors {
            k,
            train_x,
            train_y,
            scaler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            x.push(vec![(i % 5) as f64 * 0.1, 0.0]);
            y.push(0);
            x.push(vec![10.0 + (i % 5) as f64 * 0.1, 0.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = clusters();
        let mut knn = KNearestNeighbors::paper_default();
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&[0.2, 0.0]), 0);
        assert_eq!(knn.predict(&[10.2, 0.0]), 1);
    }

    #[test]
    fn proba_is_vote_fraction() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0], vec![11.0]];
        let y = vec![0, 0, 0, 1, 1];
        let mut knn = KNearestNeighbors::new(5);
        knn.fit(&x, &y);
        // All 5 points vote: 2/5 positive.
        assert!((knn.predict_proba(&[5.0]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_train_set_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors::new(10);
        knn.fit(&x, &y);
        assert!((knn.predict_proba(&[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn standardization_balances_feature_scales() {
        // Feature 1 is informative but tiny; feature 0 is noise but huge.
        // Without standardization the noise dominates the distance.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let label = u8::from(i % 2 == 1);
            let informative = if label == 1 { 0.01 } else { -0.01 };
            let noise = ((i * 7919) % 100) as f64 * 100.0;
            x.push(vec![noise, informative]);
            y.push(label);
        }
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(r, &l)| knn.predict(r) == l)
            .count();
        assert!(acc as f64 / x.len() as f64 > 0.9, "acc = {acc}/30");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        KNearestNeighbors::new(0);
    }
}
