//! From-scratch supervised-learning stack for the RacketStore detectors.
//!
//! §7 and §8 of the paper train Extreme Gradient Boosting (XGB), Random
//! Forest (RF), Logistic Regression (LR), Support Vector Machines (SVM),
//! K-Nearest Neighbours (KNN, k = 5) and Learning Vector Quantization (LVQ)
//! on app-usage and device-usage features, evaluate them with (repeated)
//! stratified 10-fold cross-validation, balance classes with SMOTE and
//! random over/undersampling, and rank features by mean decrease in Gini.
//!
//! This crate implements all of that with no external ML dependencies:
//!
//! * [`tree`] — CART decision trees with Gini impurity,
//! * [`forest`] — bagged random forests with feature subsampling,
//! * [`gbt`] — second-order gradient-boosted trees (XGBoost-style exact
//!   greedy split finding with regularized leaf weights),
//! * [`linear`] — logistic regression and a Pegasos linear SVM,
//! * [`knn`] / [`lvq`] — instance-based learners,
//! * [`sampling`] — SMOTE and random resampling,
//! * [`eval`] — stratified k-fold CV and the metric set the paper reports
//!   (precision, recall, F1, FPR, ROC-AUC).
//!
//! All learners are deterministic given their seed, implement the common
//! [`Classifier`] trait, and operate on a plain [`Dataset`].

#![deny(missing_docs)]

pub mod dataset;
pub mod eval;
pub mod forest;
pub mod gbt;
pub mod knn;
pub mod linear;
pub mod lvq;
pub mod persist;
pub mod sampling;
pub mod tree;

pub use dataset::{Dataset, Standardizer};
pub use eval::{
    cross_validate, roc_auc, stratified_folds, ConfusionMatrix, CvReport, Metrics, Resampling,
};
pub use forest::{RandomForest, RandomForestParams};
pub use gbt::{GradientBoosting, GradientBoostingParams};
pub use knn::KNearestNeighbors;
pub use linear::{LinearSvm, LinearSvmParams, LogisticRegression, LogisticRegressionParams};
pub use lvq::{Lvq, LvqParams};
pub use persist::{Model, PersistError};
pub use sampling::{random_oversample, random_undersample, smote};
pub use tree::{DecisionTree, DecisionTreeParams};

/// A binary classifier over dense `f64` feature rows.
///
/// Labels are `0` (negative — personal use / regular device) or `1`
/// (positive — promotion use / worker device), following the paper's class
/// encoding in §7.2.
///
/// ```
/// use racket_ml::{Classifier, GradientBoosting, GradientBoostingParams};
///
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i)]).collect();
/// let y: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
/// let mut model = GradientBoosting::new(GradientBoostingParams::default());
/// model.fit(&x, &y);
/// assert_eq!(model.predict(&[2.0]), 0);
/// assert_eq!(model.predict(&[17.0]), 1);
/// ```
pub trait Classifier {
    /// Fit the model on feature rows `x` and labels `y`.
    ///
    /// # Panics
    /// Implementations panic if `x` is empty, rows are ragged, or `x` and
    /// `y` lengths differ.
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]);

    /// Probability (or score in `[0, 1]`) that `row` belongs to class 1.
    fn predict_proba(&self, row: &[f64]) -> f64;

    /// Hard prediction at the 0.5 threshold.
    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Short display name used by the experiment tables.
    fn name(&self) -> &'static str;
}

/// Classifiers that can rank features by importance.
pub trait FeatureImportance {
    /// Per-feature importance scores, normalized to sum to 1 (all zeros if
    /// the model is untrained or found no useful split).
    ///
    /// For tree ensembles this is the *mean decrease in Gini* (impurity)
    /// the paper uses for Figures 13 and 14.
    fn feature_importances(&self) -> Vec<f64>;
}

/// Validate a feature matrix / label vector pair; used by every learner.
pub(crate) fn validate_xy(x: &[Vec<f64>], y: &[u8]) {
    assert!(!x.is_empty(), "training set must not be empty");
    assert_eq!(x.len(), y.len(), "feature rows and labels must align");
    let d = x[0].len();
    assert!(d > 0, "feature rows must be non-empty");
    assert!(x.iter().all(|r| r.len() == d), "ragged feature matrix");
    assert!(y.iter().all(|&l| l <= 1), "labels must be binary (0/1)");
}
