//! Evaluation: stratified k-fold cross-validation and the paper's metrics.
//!
//! Tables 1 and 2 report precision, recall and F1 under (repeated) 10-fold
//! cross-validation; §7.2/§8.2 additionally report AUC and false-positive
//! rate, and apply class re-balancing (SMOTE / random over- and
//! undersampling) — *to the training folds only*, never the validation
//! fold, which is what [`cross_validate`] implements.

use crate::dataset::Dataset;
use crate::sampling::{random_oversample, random_undersample, smote};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Record one (truth, prediction) pair.
    pub fn record(&mut self, truth: u8, pred: u8) {
        match (truth, pred) {
            (1, 1) => self.tp += 1,
            (0, 1) => self.fp += 1,
            (0, 0) => self.tn += 1,
            (1, 0) => self.fn_ += 1,
            _ => panic!("labels must be binary"),
        }
    }

    /// Total observations recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fold another matrix's counts into this one (pooling across folds).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted positive
    /// (the vacuous-truth convention, so a conservative classifier is not
    /// penalized on a fold without positive predictions).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there are no positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate `fp / (fp + tn)`; 0.0 when there are no negatives.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }

    /// Accuracy `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }
}

/// The metric set the paper reports per classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Precision (positive predictive value).
    pub precision: f64,
    /// Recall (true-positive rate).
    pub recall: f64,
    /// F1 measure.
    pub f1: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// False-positive rate at the 0.5 threshold.
    pub fpr: f64,
    /// Accuracy at the 0.5 threshold.
    pub accuracy: f64,
}

/// ROC-AUC via the Mann–Whitney rank statistic (tie-aware midranks).
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(truths: &[u8], scores: &[f64]) -> f64 {
    assert_eq!(truths.len(), scores.len(), "truths and scores must align");
    let n_pos = truths.iter().filter(|&&t| t == 1).count();
    let n_neg = truths.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let ranks = crate::eval::average_ranks_f64(scores);
    let pos_rank_sum: f64 = truths
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t == 1)
        .map(|(_, &r)| r)
        .sum();
    let u = pos_rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Midranks with tie averaging (local copy so racket-ml stays independent
/// of racket-stats).
pub(crate) fn average_ranks_f64(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN score"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Class re-balancing strategy applied to training folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Resampling {
    /// Use the training fold as-is.
    #[default]
    None,
    /// SMOTE with the given neighbourhood size (§8.2 uses SMOTE).
    Smote {
        /// Nearest-neighbour count for interpolation.
        k: usize,
    },
    /// Random oversampling of the minority class (§7.2 ablation).
    Oversample,
    /// Random undersampling of the majority class (§7.2 ablation).
    Undersample,
}

/// Stratified k-fold assignment: returns for each row its fold index in
/// `0..k`, preserving the class ratio within every fold.
///
/// # Panics
/// If `k < 2` or `k` exceeds the size of either class... folds are still
/// produced if a class is smaller than `k`, but will then be missing that
/// class in some folds.
pub fn stratified_folds(y: &[u8], k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(!y.is_empty(), "cannot fold an empty label vector");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold = vec![0usize; y.len()];
    for class in [0u8, 1u8] {
        let mut members: Vec<usize> = (0..y.len()).filter(|&i| y[i] == class).collect();
        members.shuffle(&mut rng);
        for (pos, &i) in members.iter().enumerate() {
            fold[i] = pos % k;
        }
    }
    fold
}

/// Pooled cross-validation report.
#[derive(Debug, Clone)]
pub struct CvReport {
    /// Pooled confusion matrix over all validation folds and repeats.
    pub confusion: ConfusionMatrix,
    /// Pooled metrics.
    pub metrics: Metrics,
    /// Number of folds × repeats evaluated.
    pub n_evaluations: usize,
}

/// Repeated stratified k-fold cross-validation.
///
/// `factory` builds a fresh, unfitted classifier per fold. Resampling is
/// applied only to the training split. Predictions from every validation
/// fold (across all `repeats`) are pooled into one confusion matrix and
/// one ROC-AUC, the aggregation the paper's tables report.
///
/// Every `(repeat, fold)` pair trains and scores independently, so the
/// pairs fan out across worker threads; their per-fold results are merged
/// back in `(repeat, fold)` order, which makes the pooled report
/// bit-identical to the serial loop regardless of thread count.
pub fn cross_validate<F>(
    factory: F,
    data: &Dataset,
    k: usize,
    repeats: usize,
    resampling: Resampling,
    seed: u64,
) -> CvReport
where
    F: Fn() -> Box<dyn Classifier> + Sync,
{
    assert!(repeats >= 1, "need at least one repeat");
    let rep_folds: Vec<Vec<usize>> = (0..repeats)
        .map(|rep| stratified_folds(&data.y, k, seed.wrapping_add(rep as u64)))
        .collect();
    let pairs: Vec<(usize, usize)> = (0..repeats)
        .flat_map(|rep| (0..k).map(move |fold_id| (rep, fold_id)))
        .collect();

    // Per-fold train/score timing goes to the process-default registry
    // (`span.ml/cv_fold`, with rep/fold trace fields) — the library has no
    // study registry in scope, and harnesses that want isolated per-run
    // numbers swap the global with `racket_obs::install_global`.
    let obs = racket_obs::global();
    type FoldResult = Option<(ConfusionMatrix, Vec<u8>, Vec<f64>)>;
    let fold_results: Vec<FoldResult> = pairs
        .into_par_iter()
        .map(|(rep, fold_id)| {
            let _span = racket_obs::span!(obs, "ml/cv_fold", rep = rep, fold = fold_id);
            let folds = &rep_folds[rep];
            let train_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] != fold_id).collect();
            let valid_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == fold_id).collect();
            if valid_idx.is_empty() || train_idx.is_empty() {
                return None;
            }
            let mut train = data.select(&train_idx);
            // A fold can end up single-class on tiny datasets; resampling
            // requires both classes, so skip it in that case.
            if train.n_positive() > 0 && train.n_negative() > 0 {
                train = match resampling {
                    Resampling::None => train,
                    Resampling::Smote { k: sk } => {
                        smote(&train, sk, seed.wrapping_add(1000 + rep as u64))
                    }
                    Resampling::Oversample => {
                        random_oversample(&train, seed.wrapping_add(2000 + rep as u64))
                    }
                    Resampling::Undersample => {
                        random_undersample(&train, seed.wrapping_add(3000 + rep as u64))
                    }
                };
            }
            let mut model = factory();
            model.fit(&train.x, &train.y);
            let mut fold_cm = ConfusionMatrix::default();
            let mut fold_truths = Vec::with_capacity(valid_idx.len());
            let mut fold_scores = Vec::with_capacity(valid_idx.len());
            for &i in &valid_idx {
                let p = model.predict_proba(&data.x[i]);
                fold_cm.record(data.y[i], u8::from(p >= 0.5));
                fold_truths.push(data.y[i]);
                fold_scores.push(p);
            }
            Some((fold_cm, fold_truths, fold_scores))
        })
        .collect();

    let mut confusion = ConfusionMatrix::default();
    let mut truths = Vec::new();
    let mut scores = Vec::new();
    let mut n_evaluations = 0;
    for result in fold_results.into_iter().flatten() {
        let (fold_cm, fold_truths, fold_scores) = result;
        confusion.merge(&fold_cm);
        truths.extend(fold_truths);
        scores.extend(fold_scores);
        n_evaluations += 1;
    }

    let metrics = Metrics {
        precision: confusion.precision(),
        recall: confusion.recall(),
        f1: confusion.f1(),
        auc: roc_auc(&truths, &scores),
        fpr: confusion.fpr(),
        accuracy: confusion.accuracy(),
    };
    CvReport {
        confusion,
        metrics,
        n_evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, DecisionTreeParams};

    #[test]
    fn confusion_metrics() {
        let mut cm = ConfusionMatrix::default();
        // 8 TP, 2 FP, 88 TN, 2 FN.
        for _ in 0..8 {
            cm.record(1, 1);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        for _ in 0..88 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(1, 0);
        }
        assert_eq!(cm.total(), 100);
        assert!((cm.precision() - 0.8).abs() < 1e-12);
        assert!((cm.recall() - 0.8).abs() < 1e-12);
        assert!((cm.f1() - 0.8).abs() < 1e-12);
        assert!((cm.fpr() - 2.0 / 90.0).abs() < 1e-12);
        assert!((cm.accuracy() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn confusion_vacuous_conventions() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.fpr(), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truths = [0, 0, 1, 1];
        assert_eq!(roc_auc(&truths, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&truths, &[0.9, 0.8, 0.2, 0.1]), 0.0);
        assert_eq!(roc_auc(&truths, &[0.5, 0.5, 0.5, 0.5]), 0.5);
    }

    #[test]
    fn auc_with_ties_matches_hand_value() {
        // scores: pos {0.9, 0.5}, neg {0.5, 0.1}: one win, one tie, so
        // AUC = (1 + 0.5 + 1 + 1) pairs… compute directly: pairs (p,n):
        // (0.9,0.5)=1, (0.9,0.1)=1, (0.5,0.5)=0.5, (0.5,0.1)=1 → 3.5/4.
        let auc = roc_auc(&[1, 1, 0, 0], &[0.9, 0.5, 0.5, 0.1]);
        assert!((auc - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1, 1], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn stratified_folds_preserve_ratio() {
        // 40 negatives, 20 positives, 4 folds → each fold gets 10 neg, 5 pos.
        let y: Vec<u8> = (0..60).map(|i| u8::from(i % 3 == 0)).collect();
        let folds = stratified_folds(&y, 4, 9);
        for f in 0..4 {
            let members: Vec<usize> = (0..60).filter(|&i| folds[i] == f).collect();
            let pos = members.iter().filter(|&&i| y[i] == 1).count();
            assert_eq!(members.len(), 15);
            assert_eq!(pos, 5);
        }
    }

    #[test]
    fn stratified_folds_deterministic() {
        let y: Vec<u8> = (0..30).map(|i| u8::from(i % 2 == 0)).collect();
        assert_eq!(stratified_folds(&y, 5, 1), stratified_folds(&y, 5, 1));
        assert_ne!(stratified_folds(&y, 5, 1), stratified_folds(&y, 5, 2));
    }

    fn separable_dataset(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = u8::from(i % 2 == 1);
            let base = if label == 1 { 10.0 } else { 0.0 };
            x.push(vec![base + (i % 5) as f64 * 0.1]);
            y.push(label);
        }
        Dataset::new(x, y, vec!["f0".into()])
    }

    #[test]
    fn cv_on_separable_data_is_perfect() {
        let data = separable_dataset(100);
        let report = cross_validate(
            || Box::new(DecisionTree::new(DecisionTreeParams::default())),
            &data,
            10,
            1,
            Resampling::None,
            7,
        );
        assert_eq!(report.n_evaluations, 10);
        assert_eq!(report.confusion.total(), 100);
        assert!(report.metrics.f1 > 0.99, "f1 = {}", report.metrics.f1);
        assert!(report.metrics.auc > 0.99);
    }

    #[test]
    fn cv_with_smote_on_imbalanced_data() {
        // 90/10 imbalance; SMOTE on the train folds must not crash and the
        // minority class must still be recallable.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            x.push(vec![(i % 9) as f64 * 0.1]);
            y.push(0);
        }
        for i in 0..10 {
            x.push(vec![8.0 + (i % 3) as f64 * 0.1]);
            y.push(1);
        }
        let data = Dataset::new(x, y, vec!["f0".into()]);
        let report = cross_validate(
            || Box::new(DecisionTree::new(DecisionTreeParams::default())),
            &data,
            5,
            2,
            Resampling::Smote { k: 3 },
            11,
        );
        assert_eq!(report.n_evaluations, 10);
        assert!(
            report.metrics.recall > 0.9,
            "recall = {}",
            report.metrics.recall
        );
    }

    #[test]
    fn cv_repeats_pool_more_predictions() {
        let data = separable_dataset(40);
        let factory =
            || Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>;
        let r1 = cross_validate(factory, &data, 4, 1, Resampling::None, 3);
        let factory =
            || Box::new(DecisionTree::new(DecisionTreeParams::default())) as Box<dyn Classifier>;
        let r3 = cross_validate(factory, &data, 4, 3, Resampling::None, 3);
        assert_eq!(r1.confusion.total(), 40);
        assert_eq!(r3.confusion.total(), 120);
    }

    /// Bug-check for repeated-CV fold assignment: within every repeat,
    /// the fold vector must place each row in exactly one validation fold
    /// — i.e. it is a total assignment into `0..k` whose per-fold
    /// validation sets partition the rows. A fold id ≥ k, or two repeats
    /// sharing an RNG stream and degenerating into identical assignments,
    /// would silently skew every pooled table in the paper reproduction.
    #[test]
    fn every_row_lands_in_exactly_one_validation_fold_per_repeat() {
        let n = 103;
        let k = 10;
        let y: Vec<u8> = (0..n).map(|i| u8::from(i % 3 == 0)).collect();
        let repeats = 5;
        let seed = 42u64;
        let mut assignments = Vec::new();
        for rep in 0..repeats {
            let fold = stratified_folds(&y, k, seed.wrapping_add(rep));
            assert_eq!(fold.len(), n, "total assignment: one fold id per row");
            let mut seen = vec![0usize; k];
            for &f in &fold {
                assert!(f < k, "fold id {f} out of range");
                seen[f] += 1;
            }
            assert_eq!(seen.iter().sum::<usize>(), n, "folds partition the rows");
            for (f, &count) in seen.iter().enumerate() {
                assert!(count > 0, "fold {f} would be an empty validation set");
            }
            // The union of validation index sets, taken fold by fold, must
            // recover every row exactly once (what cross_validate iterates).
            let mut covered = vec![false; n];
            for fold_id in 0..k {
                for i in (0..n).filter(|&i| fold[i] == fold_id) {
                    assert!(!covered[i], "row {i} validated twice in one repeat");
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "every row validates once");
            assignments.push(fold);
        }
        // Distinct repeats must reshuffle: identical assignments would
        // make "repeated" CV a no-op and shrink the pooled sample.
        for rep in 1..repeats as usize {
            assert_ne!(
                assignments[0], assignments[rep],
                "repeat {rep} reused repeat 0's folds"
            );
        }
    }

    /// Stratification: each fold's class counts may deviate from a
    /// perfectly proportional split by at most one row per class (the
    /// round-robin remainder).
    #[test]
    fn stratified_folds_preserve_class_ratio_within_one_row() {
        for (n, pos_every, k, seed) in [(103, 3, 10, 7u64), (64, 4, 5, 11), (200, 2, 10, 13)] {
            let y: Vec<u8> = (0..n).map(|i| u8::from(i % pos_every == 0)).collect();
            let n_pos = y.iter().filter(|&&v| v == 1).count();
            let n_neg = n - n_pos;
            let fold = stratified_folds(&y, k, seed);
            for fold_id in 0..k {
                let pos_in_fold = (0..n).filter(|&i| fold[i] == fold_id && y[i] == 1).count();
                let neg_in_fold = (0..n).filter(|&i| fold[i] == fold_id && y[i] == 0).count();
                let pos_lo = n_pos / k;
                let neg_lo = n_neg / k;
                assert!(
                    pos_in_fold == pos_lo || pos_in_fold == pos_lo + 1,
                    "fold {fold_id}: {pos_in_fold} positives, expected {pos_lo} or {}",
                    pos_lo + 1
                );
                assert!(
                    neg_in_fold == neg_lo || neg_in_fold == neg_lo + 1,
                    "fold {fold_id}: {neg_in_fold} negatives, expected {neg_lo} or {}",
                    neg_lo + 1
                );
            }
        }
    }
}
