//! Class-balancing resamplers.
//!
//! The paper balances its heavily skewed datasets three ways: SMOTE
//! (§8.2, device classifier), random oversampling of the minority class and
//! random undersampling of the majority class (§7.2 ablations). All three
//! are implemented here, deterministic under a seed.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Indices of each class in the label vector.
fn class_indices(y: &[u8]) -> (Vec<usize>, Vec<usize>) {
    let mut neg = Vec::new();
    let mut pos = Vec::new();
    for (i, &l) in y.iter().enumerate() {
        if l == 1 {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    (neg, pos)
}

/// SMOTE: Synthetic Minority Over-sampling TEchnique (Chawla et al. 2002).
///
/// For each synthetic sample, pick a random minority instance, pick one of
/// its `k` nearest minority neighbours, and interpolate uniformly between
/// them. The minority class is grown until the classes balance. Returns a
/// new dataset with the original rows first and synthetic rows appended.
///
/// # Panics
/// If the dataset is empty or contains only one class.
pub fn smote(data: &Dataset, k: usize, seed: u64) -> Dataset {
    assert!(!data.is_empty(), "cannot SMOTE an empty dataset");
    let (neg, pos) = class_indices(&data.y);
    assert!(
        !neg.is_empty() && !pos.is_empty(),
        "SMOTE requires both classes present"
    );
    let (minority, minority_label, majority_len) = if pos.len() < neg.len() {
        (pos, 1u8, neg.len())
    } else {
        (neg, 0u8, pos.len())
    };
    let needed = majority_len - minority.len();
    if needed == 0 {
        return data.clone();
    }
    let k = k.max(1).min(minority.len().saturating_sub(1)).max(1);

    // Precompute k nearest minority neighbours of each minority sample.
    let neighbours: Vec<Vec<usize>> = minority
        .iter()
        .map(|&i| {
            let mut d: Vec<(f64, usize)> = minority
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| {
                    let dist: f64 = data.x[i]
                        .iter()
                        .zip(&data.x[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    (dist, j)
                })
                .collect();
            d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
            d.truncate(k);
            d.into_iter().map(|(_, j)| j).collect()
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = data.x.clone();
    let mut y = data.y.clone();
    for _ in 0..needed {
        let mi = rng.gen_range(0..minority.len());
        let i = minority[mi];
        let js = &neighbours[mi];
        if js.is_empty() {
            // Single minority sample: duplicate it.
            x.push(data.x[i].clone());
            y.push(minority_label);
            continue;
        }
        let j = js[rng.gen_range(0..js.len())];
        let gap: f64 = rng.gen();
        let row: Vec<f64> = data.x[i]
            .iter()
            .zip(&data.x[j])
            .map(|(a, b)| a + gap * (b - a))
            .collect();
        x.push(row);
        y.push(minority_label);
    }
    Dataset {
        x,
        y,
        feature_names: data.feature_names.clone(),
    }
}

/// Random oversampling: duplicate random minority rows until balanced.
pub fn random_oversample(data: &Dataset, seed: u64) -> Dataset {
    assert!(!data.is_empty(), "cannot resample an empty dataset");
    let (neg, pos) = class_indices(&data.y);
    assert!(
        !neg.is_empty() && !pos.is_empty(),
        "resampling requires both classes"
    );
    let (minority, majority_len) = if pos.len() < neg.len() {
        (pos, neg.len())
    } else {
        (neg, pos.len())
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = data.x.clone();
    let mut y = data.y.clone();
    for _ in 0..majority_len - minority.len() {
        let i = minority[rng.gen_range(0..minority.len())];
        x.push(data.x[i].clone());
        y.push(data.y[i]);
    }
    Dataset {
        x,
        y,
        feature_names: data.feature_names.clone(),
    }
}

/// Random undersampling: drop random majority rows until balanced.
pub fn random_undersample(data: &Dataset, seed: u64) -> Dataset {
    assert!(!data.is_empty(), "cannot resample an empty dataset");
    let (neg, pos) = class_indices(&data.y);
    assert!(
        !neg.is_empty() && !pos.is_empty(),
        "resampling requires both classes"
    );
    let (mut majority, minority) = if pos.len() < neg.len() {
        (neg, pos)
    } else {
        (pos, neg)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    majority.shuffle(&mut rng);
    majority.truncate(minority.len());
    let mut keep: Vec<usize> = minority.into_iter().chain(majority).collect();
    keep.sort_unstable();
    data.select(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> Dataset {
        // 12 negatives around the origin, 3 positives around (10, 10).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            x.push(vec![(i % 4) as f64 * 0.1, (i % 3) as f64 * 0.1]);
            y.push(0);
        }
        for i in 0..3 {
            x.push(vec![10.0 + i as f64 * 0.1, 10.0 - i as f64 * 0.1]);
            y.push(1);
        }
        Dataset::new(x, y, vec!["a".into(), "b".into()])
    }

    #[test]
    fn smote_balances_classes() {
        let d = smote(&skewed(), 5, 7);
        assert_eq!(d.n_positive(), d.n_negative());
        assert_eq!(d.len(), 24);
    }

    #[test]
    fn smote_synthetics_interpolate_minority_hull() {
        let d = smote(&skewed(), 5, 7);
        // Synthetic rows (index >= 15) lie on segments between positives,
        // so both coordinates stay within the positive cluster's bounds.
        for row in &d.x[15..] {
            assert!(row[0] >= 10.0 - 1e-9 && row[0] <= 10.2 + 1e-9, "{row:?}");
            assert!(row[1] >= 9.8 - 1e-9 && row[1] <= 10.0 + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn smote_already_balanced_is_identity() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1], vec!["a".into()]);
        assert_eq!(smote(&d, 5, 1), d);
    }

    #[test]
    fn smote_single_minority_sample_duplicates() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![9.0]],
            vec![0, 0, 0, 1],
            vec!["a".into()],
        );
        let out = smote(&d, 5, 3);
        assert_eq!(out.n_positive(), 3);
        assert!(out.x[4..].iter().all(|r| r == &vec![9.0]));
    }

    #[test]
    fn oversample_balances_by_duplication() {
        let base = skewed();
        let d = random_oversample(&base, 3);
        assert_eq!(d.n_positive(), d.n_negative());
        // Every added row is an exact copy of an original positive.
        let positives: Vec<&Vec<f64>> = base.x[12..15].iter().collect();
        for row in &d.x[base.len()..] {
            assert!(positives.contains(&row), "unexpected synthetic row {row:?}");
        }
    }

    #[test]
    fn undersample_balances_by_dropping() {
        let d = random_undersample(&skewed(), 3);
        assert_eq!(d.n_positive(), 3);
        assert_eq!(d.n_negative(), 3);
        assert_eq!(d.len(), 6);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(smote(&skewed(), 5, 11), smote(&skewed(), 5, 11));
        assert_eq!(
            random_undersample(&skewed(), 2),
            random_undersample(&skewed(), 2)
        );
    }

    #[test]
    #[should_panic(expected = "SMOTE requires both classes")]
    fn smote_single_class_panics() {
        let d = Dataset::new(vec![vec![1.0]], vec![1], vec!["a".into()]);
        smote(&d, 5, 0);
    }
}
