//! Random forests: bagged CART trees with per-node feature subsampling.
//!
//! "RF" in Tables 1 and 2 of the paper. Importance is the mean decrease in
//! Gini across trees, the measure plotted in Figures 13 and 14.

use crate::persist::{PersistError, Reader, Writer};
use crate::tree::{DecisionTree, DecisionTreeParams};
use crate::{Classifier, FeatureImportance};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features per split; `None` uses `sqrt(n_features)` (the RF default).
    pub max_features: Option<usize>,
    /// RNG seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 100,
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 42,
        }
    }
}

/// A bagged ensemble of CART trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: RandomForestParams,
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Create an unfitted forest.
    pub fn new(params: RandomForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        self.n_features = x[0].len();
        self.trees.clear();
        let n = x.len();
        let mtry = self
            .params
            .max_features
            .unwrap_or_else(|| (self.n_features as f64).sqrt().ceil() as usize)
            .max(1);
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        for t in 0..self.params.n_trees {
            // Bootstrap resample.
            let bx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let sample_x: Vec<Vec<f64>> = bx.iter().map(|&i| x[i].clone()).collect();
            let sample_y: Vec<u8> = bx.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(DecisionTreeParams {
                max_depth: self.params.max_depth,
                min_samples_split: self.params.min_samples_split,
                min_samples_leaf: self.params.min_samples_leaf,
                max_features: Some(mtry),
                seed: self
                    .params
                    .seed
                    .wrapping_add(t as u64)
                    .wrapping_mul(0x9E3779B9),
            });
            tree.fit(&sample_x, &sample_y);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict on unfitted forest");
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

impl FeatureImportance for RandomForest {
    fn feature_importances(&self) -> Vec<f64> {
        if self.trees.is_empty() {
            return Vec::new();
        }
        let mut acc = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total == 0.0 {
            return acc;
        }
        acc.iter().map(|v| v / total).collect()
    }
}

impl RandomForest {
    /// Encode the fitted forest (params + member trees).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.n_trees);
        w.usize(self.params.max_depth);
        w.usize(self.params.min_samples_split);
        w.usize(self.params.min_samples_leaf);
        w.opt_usize(self.params.max_features);
        w.u64(self.params.seed);
        w.usize(self.trees.len());
        for tree in &self.trees {
            tree.write_to(w);
        }
        w.usize(self.n_features);
    }

    /// Decode a forest written by [`RandomForest::write_to`].
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = RandomForestParams {
            n_trees: r.usize()?,
            max_depth: r.usize()?,
            min_samples_split: r.usize()?,
            min_samples_leaf: r.usize()?,
            max_features: r.opt_usize()?,
            seed: r.u64()?,
        };
        let n_trees = r.len(1)?;
        let trees = (0..n_trees)
            .map(|_| DecisionTree::read_from(r))
            .collect::<Result<Vec<_>, _>>()?;
        let n_features = r.usize()?;
        Ok(RandomForest {
            params,
            trees,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
        // Two clusters offset on feature 0, noise on feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = u8::from(i % 2 == 1);
            let base = if label == 1 { 10.0 } else { 0.0 };
            x.push(vec![base + (i % 5) as f64 * 0.1, (i % 7) as f64]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn separable_data_classified_perfectly() {
        let (x, y) = linearly_separable(60);
        let mut rf = RandomForest::new(RandomForestParams {
            n_trees: 25,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y);
        assert_eq!(rf.n_trees(), 25);
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(rf.predict(row), label);
        }
    }

    #[test]
    fn probabilities_are_calibrated_to_extremes() {
        let (x, y) = linearly_separable(60);
        let mut rf = RandomForest::new(RandomForestParams {
            n_trees: 25,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y);
        assert!(rf.predict_proba(&[12.0, 0.0]) > 0.9);
        assert!(rf.predict_proba(&[-2.0, 0.0]) < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linearly_separable(40);
        let params = RandomForestParams {
            n_trees: 10,
            ..RandomForestParams::default()
        };
        let mut a = RandomForest::new(params.clone());
        let mut b = RandomForest::new(params);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    fn importances_favor_signal_feature() {
        let (x, y) = linearly_separable(80);
        let mut rf = RandomForest::new(RandomForestParams {
            n_trees: 30,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y);
        let imp = rf.feature_importances();
        assert!(imp[0] > imp[1], "signal feature should dominate: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
