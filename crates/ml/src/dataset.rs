//! Datasets and feature standardization.

/// A labelled dataset: dense feature rows, binary labels and feature names.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Row-major feature matrix.
    pub x: Vec<Vec<f64>>,
    /// Binary labels aligned with `x` (1 = promotion/worker).
    pub y: Vec<u8>,
    /// Human-readable feature names, aligned with the columns of `x`.
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset, validating alignment.
    ///
    /// # Panics
    /// If rows are ragged, labels misalign, or names don't match columns.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<u8>, feature_names: Vec<String>) -> Self {
        assert_eq!(x.len(), y.len(), "rows and labels must align");
        if let Some(first) = x.first() {
            assert!(
                x.iter().all(|r| r.len() == first.len()),
                "ragged feature matrix"
            );
            assert_eq!(feature_names.len(), first.len(), "names must match columns");
        }
        assert!(y.iter().all(|&l| l <= 1), "labels must be binary");
        Dataset {
            x,
            y,
            feature_names,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of feature columns (0 if empty).
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Count of positive (class 1) rows.
    pub fn n_positive(&self) -> usize {
        self.y.iter().filter(|&&l| l == 1).count()
    }

    /// Count of negative (class 0) rows.
    pub fn n_negative(&self) -> usize {
        self.len() - self.n_positive()
    }

    /// Select a subset of rows by index (indices may repeat, enabling
    /// bootstrap resamples).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
        }
    }
}

/// Per-feature z-score standardizer, fit on training data only.
///
/// Distance-based learners (KNN, LVQ, SVM) are scale-sensitive; the paper's
/// pipeline standardizes features before them. Constant columns get unit
/// scale so they standardize to zero rather than NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Column means.
    pub means: Vec<f64>,
    /// Column standard deviations (1.0 where the column is constant).
    pub sds: Vec<f64>,
}

impl Standardizer {
    /// Fit on the rows of `x`.
    ///
    /// # Panics
    /// If `x` is empty or ragged.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit standardizer on empty data");
        let d = x[0].len();
        assert!(x.iter().all(|r| r.len() == d), "ragged feature matrix");
        let n = x.len() as f64;
        let mut means = vec![0.0; d];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut sds = vec![0.0; d];
        for row in x {
            for ((s, v), m) in sds.iter_mut().zip(row).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut sds {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        Standardizer { means, sds }
    }

    /// Standardize one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.sds) {
            *v = (*v - m) / s;
        }
    }

    /// Standardize a copy of the matrix.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|row| {
                let mut r = row.clone();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            vec![0, 1, 1],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn dataset_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_positive(), 2);
        assert_eq!(d.n_negative(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn dataset_select_with_repeats() {
        let d = toy();
        let s = d.select(&[0, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.x[0], s.x[1]);
        assert_eq!(s.y, vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "rows and labels must align")]
    fn dataset_rejects_misaligned_labels() {
        Dataset::new(vec![vec![1.0]], vec![0, 1], vec!["a".into()]);
    }

    #[test]
    #[should_panic(expected = "ragged feature matrix")]
    fn dataset_rejects_ragged_rows() {
        Dataset::new(
            vec![vec![1.0], vec![1.0, 2.0]],
            vec![0, 1],
            vec!["a".into()],
        );
    }

    #[test]
    fn standardizer_zero_mean_unit_sd() {
        let x = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]];
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        // Column 0: mean 3, population sd sqrt(8/3).
        let col0: Vec<f64> = t.iter().map(|r| r[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12);
        // Constant column 1 maps to zeros, not NaN.
        assert!(t.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn standardizer_applies_train_stats_to_test() {
        let train = vec![vec![0.0], vec![10.0]];
        let s = Standardizer::fit(&train);
        let mut row = vec![5.0];
        s.transform_row(&mut row);
        assert!(row[0].abs() < 1e-12, "midpoint maps to 0, got {}", row[0]);
    }
}
