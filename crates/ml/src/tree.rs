//! CART decision trees with Gini impurity.
//!
//! The tree is the building block of the random forest ([`crate::forest`])
//! and, in its weighted regression form, of the gradient-boosted ensemble
//! ([`crate::gbt`]). Split finding is exact: every feature's unique values
//! are scanned in sorted order and the split maximizing the weighted Gini
//! impurity decrease is taken. The per-feature impurity decreases are
//! accumulated so ensembles can report *mean decrease in Gini* — the
//! feature-importance measure of Figures 13 and 14.

use crate::persist::{PersistError, Reader, Writer};
use crate::{Classifier, FeatureImportance};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters of a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples each child must retain.
    pub min_samples_leaf: usize,
    /// Number of features considered per split; `None` means all (plain
    /// CART), `Some(k)` draws a random subset of size `k` per node (the
    /// random-forest behaviour).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

/// A node of the fitted tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Internal split: `feature <= threshold` goes left.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf: probability of class 1.
    Leaf { proba: f64 },
}

/// A CART binary classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    params: DecisionTreeParams,
    nodes: Vec<Node>,
    /// Accumulated (weighted) impurity decrease per feature.
    importances: Vec<f64>,
    n_features: usize,
}

impl DecisionTree {
    /// Create an unfitted tree with the given parameters.
    pub fn new(params: DecisionTreeParams) -> Self {
        DecisionTree {
            params,
            nodes: Vec::new(),
            importances: Vec::new(),
            n_features: 0,
        }
    }

    /// Gini impurity of a (weighted) class distribution.
    fn gini(pos: f64, total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let p = pos / total;
        2.0 * p * (1.0 - p)
    }

    /// Recursively grow the tree over the sample indices `idx`.
    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[u8],
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = idx.len() as f64;
        let pos = idx.iter().filter(|&&i| y[i] == 1).count() as f64;
        let node_gini = Self::gini(pos, n);

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { proba: pos / n });
            nodes.len() - 1
        };

        if depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || node_gini == 0.0
        {
            return make_leaf(&mut self.nodes);
        }

        // Candidate features for this node.
        let all: Vec<usize> = (0..self.n_features).collect();
        let feats: Vec<usize> = match self.params.max_features {
            Some(k) if k < self.n_features => {
                let mut f = all;
                f.shuffle(rng);
                f.truncate(k);
                f
            }
            _ => all,
        };

        // Exact greedy: best (feature, threshold) by impurity decrease.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, decrease)
        let mut order: Vec<usize> = idx.to_vec();
        for &f in &feats {
            order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("NaN feature value"));
            let mut left_n = 0.0;
            let mut left_pos = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_n += 1.0;
                if y[i] == 1 {
                    left_pos += 1.0;
                }
                // Can't split between equal values.
                if x[order[w]][f] == x[order[w + 1]][f] {
                    continue;
                }
                let right_n = n - left_n;
                if (left_n as usize) < self.params.min_samples_leaf
                    || (right_n as usize) < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_pos = pos - left_pos;
                let child_gini = (left_n / n) * Self::gini(left_pos, left_n)
                    + (right_n / n) * Self::gini(right_pos, right_n);
                // Accept the best split even at zero gain (an XOR-style
                // parity node needs a gainless split before depth 2 can
                // separate it); recursion stays bounded by depth and purity.
                let decrease = node_gini - child_gini;
                if decrease > best.map_or(-1.0, |(_, _, d)| d) {
                    let threshold = (x[order[w]][f] + x[order[w + 1]][f]) / 2.0;
                    best = Some((f, threshold, decrease));
                }
            }
        }

        let Some((feature, threshold, decrease)) = best else {
            return make_leaf(&mut self.nodes);
        };

        // Weight the importance by the fraction of samples reaching the node.
        self.importances[feature] += decrease * n;

        // Partition indices in place.
        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<usize> = Vec::new();
        for &i in idx.iter() {
            if x[i][feature] <= threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }

        let node_slot = self.nodes.len();
        self.nodes.push(Node::Leaf { proba: 0.0 }); // placeholder
        let left = self.grow(x, y, &mut left_idx, depth + 1, rng);
        let right = self.grow(x, y, &mut right_idx, depth + 1, rng);
        self.nodes[node_slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_slot
    }

    /// Depth of the fitted tree (leaves have depth 0); 0 if unfitted.
    pub fn depth(&self) -> usize {
        fn node_depth(nodes: &[Node], at: usize) -> usize {
            match nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + node_depth(nodes, left).max(node_depth(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            node_depth(&self.nodes, 0)
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        self.n_features = x[0].len();
        self.nodes.clear();
        self.importances = vec![0.0; self.n_features];
        let mut idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.grow(x, y, &mut idx, 0, &mut rng);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "predict on unfitted tree");
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                Node::Leaf { proba } => return proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "CART"
    }
}

impl FeatureImportance for DecisionTree {
    fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.importances.len()];
        }
        self.importances.iter().map(|v| v / total).collect()
    }
}

impl DecisionTree {
    /// Encode the fitted tree (params, node arena, importances).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.max_depth);
        w.usize(self.params.min_samples_split);
        w.usize(self.params.min_samples_leaf);
        w.opt_usize(self.params.max_features);
        w.u64(self.params.seed);
        w.usize(self.nodes.len());
        for node in &self.nodes {
            match *node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.u8(0);
                    w.usize(feature);
                    w.f64(threshold);
                    w.usize(left);
                    w.usize(right);
                }
                Node::Leaf { proba } => {
                    w.u8(1);
                    w.f64(proba);
                }
            }
        }
        w.f64s(&self.importances);
        w.usize(self.n_features);
    }

    /// Decode a tree written by [`DecisionTree::write_to`]; every length
    /// and child index is validated so hostile bytes error out.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = DecisionTreeParams {
            max_depth: r.usize()?,
            min_samples_split: r.usize()?,
            min_samples_leaf: r.usize()?,
            max_features: r.opt_usize()?,
            seed: r.u64()?,
        };
        let n_nodes = r.len(9)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(match r.u8()? {
                0 => {
                    let feature = r.usize()?;
                    let threshold = r.f64()?;
                    let left = r.usize()?;
                    let right = r.usize()?;
                    if left >= n_nodes || right >= n_nodes {
                        return Err(PersistError::Malformed("tree child index out of range"));
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    }
                }
                1 => Node::Leaf { proba: r.f64()? },
                _ => return Err(PersistError::Malformed("tree node discriminant")),
            });
        }
        let importances = r.f64s()?;
        let n_features = r.usize()?;
        if nodes
            .iter()
            .any(|n| matches!(n, Node::Split { feature, .. } if *feature >= n_features))
        {
            return Err(PersistError::Malformed("split feature out of range"));
        }
        Ok(DecisionTree {
            params,
            nodes,
            importances,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish dataset that a depth-2 tree separates perfectly.
    fn xor_data() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let a = i as f64;
                let b = j as f64;
                x.push(vec![a, b]);
                y.push(u8::from((a < 2.0) != (b < 2.0)));
            }
        }
        (x, y)
    }

    #[test]
    fn fits_xor_exactly() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(t.predict(row), label);
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y);
        assert_eq!(t.n_nodes(), 1, "pure data trains a single leaf");
        assert_eq!(t.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn max_depth_zero_is_prior() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 0, 1];
        let mut t = DecisionTree::new(DecisionTreeParams {
            max_depth: 0,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y);
        assert_eq!(t.predict_proba(&[0.0]), 0.25);
    }

    #[test]
    fn min_samples_leaf_respected() {
        // With min_samples_leaf = 3 and 4 points, only 3|1 splits are barred;
        // no valid split exists, so the tree is a single leaf.
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 1, 1];
        let mut t = DecisionTree::new(DecisionTreeParams {
            min_samples_leaf: 3,
            ..DecisionTreeParams::default()
        });
        t.fit(&x, &y);
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn importances_concentrate_on_informative_feature() {
        // Feature 0 is decisive; feature 1 is constant noise.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 7.0]).collect();
        let y: Vec<u8> = (0..20).map(|i| u8::from(i >= 10)).collect();
        let mut t = DecisionTree::new(DecisionTreeParams::default());
        t.fit(&x, &y);
        let imp = t.feature_importances();
        assert!(imp[0] > 0.99, "informative feature dominates: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gini_values() {
        assert_eq!(DecisionTree::gini(0.0, 10.0), 0.0);
        assert_eq!(DecisionTree::gini(5.0, 10.0), 0.5);
        assert_eq!(DecisionTree::gini(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "predict on unfitted tree")]
    fn predict_unfitted_panics() {
        DecisionTree::new(DecisionTreeParams::default()).predict_proba(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "training set must not be empty")]
    fn fit_empty_panics() {
        DecisionTree::new(DecisionTreeParams::default()).fit(&[], &[]);
    }
}
