//! Linear models: logistic regression and a Pegasos linear SVM.
//!
//! "LR" appears in Table 1 and "SVM" in Table 2 of the paper. Both models
//! standardize features internally (fit on training data), since the
//! RacketStore features span wildly different scales (counts of snapshots
//! per day vs. ratios in `[0, 1]`).

use crate::dataset::Standardizer;
use crate::persist::{PersistError, Reader, Writer};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters of [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegressionParams {
    /// Full-batch gradient-descent iterations.
    pub n_iters: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 penalty strength.
    pub l2: f64,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams {
            n_iters: 500,
            learning_rate: 0.5,
            l2: 1e-4,
        }
    }
}

/// L2-regularized logistic regression trained by batch gradient descent on
/// standardized features.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    params: LogisticRegressionParams,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Standardizer>,
}

impl LogisticRegression {
    /// Create an unfitted model.
    pub fn new(params: LogisticRegressionParams) -> Self {
        LogisticRegression {
            params,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// The fitted weight vector (standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        self.scaler = Some(scaler);
        let n = xs.len();
        let d = xs[0].len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let lr = self.params.learning_rate;
        for _ in 0..self.params.n_iters {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &label) in xs.iter().zip(y) {
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                let err = Self::sigmoid(z) - f64::from(label);
                for (g, v) in grad_w.iter_mut().zip(row) {
                    *g += err * v;
                }
                grad_b += err;
            }
            let scale = lr / n as f64;
            for (w, g) in self.weights.iter_mut().zip(&grad_w) {
                *w -= scale * (g + self.params.l2 * *w * n as f64);
            }
            self.bias -= scale * grad_b;
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict on unfitted model");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        let z = self.bias + r.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>();
        Self::sigmoid(z)
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

/// Hyperparameters of [`LinearSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvmParams {
    /// Number of Pegasos SGD epochs over the data.
    pub n_epochs: usize,
    /// Regularization strength λ (inverse of the usual `C`).
    pub lambda: f64,
    /// RNG seed for sample order.
    pub seed: u64,
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        LinearSvmParams {
            n_epochs: 60,
            lambda: 1e-3,
            seed: 42,
        }
    }
}

/// Linear SVM trained with the Pegasos stochastic sub-gradient algorithm
/// (Shalev-Shwartz et al.) on standardized features.
///
/// `predict_proba` maps the signed margin through a logistic link so the
/// common [`Classifier`] interface (and ROC-AUC computation) applies; the
/// decision boundary is the usual `margin >= 0`.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    params: LinearSvmParams,
    weights: Vec<f64>,
    bias: f64,
    scaler: Option<Standardizer>,
}

impl LinearSvm {
    /// Create an unfitted model.
    pub fn new(params: LinearSvmParams) -> Self {
        LinearSvm {
            params,
            weights: Vec::new(),
            bias: 0.0,
            scaler: None,
        }
    }

    /// Signed margin for a (raw, unstandardized) row.
    pub fn margin(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("margin on unfitted model");
        let mut r = row.to_vec();
        scaler.transform_row(&mut r);
        self.bias + r.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        self.scaler = Some(scaler);
        let n = xs.len();
        let d = xs[0].len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let lambda = self.params.lambda;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut t = 0u64;
        for _ in 0..self.params.n_epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let label = if y[i] == 1 { 1.0 } else { -1.0 };
                let eta = 1.0 / (lambda * t as f64);
                let z = self.bias
                    + xs[i]
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                // Sub-gradient step: shrink weights, and on margin violation
                // also step toward the violating example.
                for w in self.weights.iter_mut() {
                    *w *= 1.0 - eta * lambda;
                }
                if label * z < 1.0 {
                    for (w, v) in self.weights.iter_mut().zip(&xs[i]) {
                        *w += eta * label * v;
                    }
                    self.bias += eta * label;
                }
            }
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.margin(row)).exp())
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

impl LogisticRegression {
    /// Encode the fitted model (params, weights, bias, scaler).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.n_iters);
        w.f64(self.params.learning_rate);
        w.f64(self.params.l2);
        w.f64s(&self.weights);
        w.f64(self.bias);
        w.scaler(&self.scaler);
    }

    /// Decode a model written by [`LogisticRegression::write_to`].
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = LogisticRegressionParams {
            n_iters: r.usize()?,
            learning_rate: r.f64()?,
            l2: r.f64()?,
        };
        let weights = r.f64s()?;
        let bias = r.f64()?;
        let scaler = r.scaler()?;
        Ok(LogisticRegression {
            params,
            weights,
            bias,
            scaler,
        })
    }
}

impl LinearSvm {
    /// Encode the fitted model (params, weights, bias, scaler).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.n_epochs);
        w.f64(self.params.lambda);
        w.u64(self.params.seed);
        w.f64s(&self.weights);
        w.f64(self.bias);
        w.scaler(&self.scaler);
    }

    /// Decode a model written by [`LinearSvm::write_to`].
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = LinearSvmParams {
            n_epochs: r.usize()?,
            lambda: r.f64()?,
            seed: r.u64()?,
        };
        let weights = r.f64s()?;
        let bias = r.f64()?;
        let scaler = r.scaler()?;
        Ok(LinearSvm {
            params,
            weights,
            bias,
            scaler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let label = u8::from(i % 2 == 1);
            let offset = if label == 1 { 4.0 } else { -4.0 };
            x.push(vec![offset + (i % 5) as f64 * 0.2, (i % 3) as f64]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn lr_separable() {
        let (x, y) = separable(60);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(lr.predict(row), label);
        }
        // Weight on the informative feature dominates.
        assert!(lr.weights()[0].abs() > lr.weights()[1].abs());
    }

    #[test]
    fn lr_probabilities_ordered_by_distance() {
        let (x, y) = separable(60);
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y);
        let far_pos = lr.predict_proba(&[10.0, 0.0]);
        let near_pos = lr.predict_proba(&[1.0, 0.0]);
        let far_neg = lr.predict_proba(&[-10.0, 0.0]);
        assert!(far_pos > near_pos && near_pos > far_neg);
    }

    #[test]
    fn svm_separable() {
        let (x, y) = separable(60);
        let mut svm = LinearSvm::new(LinearSvmParams::default());
        svm.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(svm.predict(row), label);
        }
    }

    #[test]
    fn svm_margin_sign_matches_prediction() {
        let (x, y) = separable(40);
        let mut svm = LinearSvm::new(LinearSvmParams::default());
        svm.fit(&x, &y);
        for row in &x {
            assert_eq!(u8::from(svm.margin(row) >= 0.0), svm.predict(row));
        }
    }

    #[test]
    fn svm_deterministic_given_seed() {
        let (x, y) = separable(40);
        let mut a = LinearSvm::new(LinearSvmParams::default());
        let mut b = LinearSvm::new(LinearSvmParams::default());
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.margin(row), b.margin(row));
        }
    }

    #[test]
    #[should_panic(expected = "predict on unfitted model")]
    fn lr_unfitted_panics() {
        LogisticRegression::new(LogisticRegressionParams::default()).predict_proba(&[1.0]);
    }
}
