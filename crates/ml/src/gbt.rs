//! Gradient-boosted decision trees in the XGBoost style.
//!
//! "XGB" — the best performer in both Table 1 (F1 = 99.72% for the app
//! classifier) and Table 2 (F1 = 95.29% for the device classifier). The
//! implementation follows the XGBoost paper's exact greedy algorithm:
//!
//! * second-order Taylor expansion of the logistic loss — per-row gradient
//!   `g = p − y` and hessian `h = p (1 − p)`;
//! * split gain `½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`;
//! * regularized leaf weights `w = −G / (H + λ)`;
//! * shrinkage `η`, row subsampling and column subsampling per tree.
//!
//! Feature importance is total split gain per feature, the analogue of the
//! Gini importance used for Figures 13 and 14.

use crate::persist::{PersistError, Reader, Writer};
use crate::{Classifier, FeatureImportance};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters of a [`GradientBoosting`] ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoostingParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Learning rate (shrinkage) η.
    pub learning_rate: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum sum of hessians per child (xgboost's `min_child_weight`).
    pub min_child_weight: f64,
    /// Row subsample fraction per tree, in (0, 1].
    pub subsample: f64,
    /// Column subsample fraction per tree, in (0, 1].
    pub colsample: f64,
    /// RNG seed for row/column subsampling.
    pub seed: u64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        GradientBoostingParams {
            n_rounds: 100,
            max_depth: 4,
            learning_rate: 0.2,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.9,
            colsample: 0.8,
            seed: 42,
        }
    }
}

/// A node of a fitted regression tree.
#[derive(Debug, Clone)]
enum RegNode {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        weight: f64,
    },
}

/// One regression tree of the boosted ensemble.
#[derive(Debug, Clone)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                RegNode::Leaf { weight } => return weight,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted tree ensemble with logistic loss.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    params: GradientBoostingParams,
    trees: Vec<RegTree>,
    base_score: f64,
    /// Total split gain accumulated per feature.
    gain_importance: Vec<f64>,
    n_features: usize,
}

impl GradientBoosting {
    /// Create an unfitted ensemble.
    pub fn new(params: GradientBoostingParams) -> Self {
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        assert!(
            params.colsample > 0.0 && params.colsample <= 1.0,
            "colsample must be in (0, 1]"
        );
        GradientBoosting {
            params,
            trees: Vec::new(),
            base_score: 0.0,
            gain_importance: Vec::new(),
            n_features: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }

    /// Grow one regression tree on gradients/hessians over `idx`.
    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        tree: &mut Vec<RegNode>,
        x: &[Vec<f64>],
        g: &[f64],
        h: &[f64],
        idx: &[usize],
        feats: &[usize],
        depth: usize,
    ) -> usize {
        let g_sum: f64 = idx.iter().map(|&i| g[i]).sum();
        let h_sum: f64 = idx.iter().map(|&i| h[i]).sum();
        let lambda = self.params.lambda;

        let leaf = |tree: &mut Vec<RegNode>| {
            tree.push(RegNode::Leaf {
                weight: -g_sum / (h_sum + lambda),
            });
            tree.len() - 1
        };

        if depth >= self.params.max_depth || idx.len() < 2 {
            return leaf(tree);
        }

        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<(usize, f64, f64)> = None;
        let mut order: Vec<usize> = idx.to_vec();
        for &f in feats {
            order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("NaN feature value"));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                gl += g[i];
                hl += h[i];
                if x[order[w]][f] == x[order[w + 1]][f] {
                    continue;
                }
                let hr = h_sum - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gr = g_sum - gl;
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                    - self.params.gamma;
                if gain > best.map_or(1e-12, |(_, _, bg)| bg) {
                    let threshold = (x[order[w]][f] + x[order[w + 1]][f]) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return leaf(tree);
        };
        self.gain_importance[feature] += gain;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);

        let slot = tree.len();
        tree.push(RegNode::Leaf { weight: 0.0 }); // placeholder
        let left = self.grow(tree, x, g, h, &left_idx, feats, depth + 1);
        let right = self.grow(tree, x, g, h, &right_idx, feats, depth + 1);
        tree[slot] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Raw margin (log-odds) for a row.
    fn margin(&self, row: &[f64]) -> f64 {
        let mut z = self.base_score;
        for t in &self.trees {
            z += self.params.learning_rate * t.predict(row);
        }
        z
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        crate::validate_xy(x, y);
        self.n_features = x[0].len();
        self.trees.clear();
        self.gain_importance = vec![0.0; self.n_features];

        let n = x.len();
        // Base score: log-odds of the positive rate, clamped away from ±∞.
        let pos_rate =
            (y.iter().filter(|&&l| l == 1).count() as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (pos_rate / (1.0 - pos_rate)).ln();

        let mut margins = vec![self.base_score; n];
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n_cols = ((self.n_features as f64) * self.params.colsample).ceil() as usize;
        let n_rows = ((n as f64) * self.params.subsample).ceil() as usize;

        for _ in 0..self.params.n_rounds {
            // Gradients / hessians of the logistic loss at current margins.
            let mut g = vec![0.0; n];
            let mut h = vec![0.0; n];
            for i in 0..n {
                let p = Self::sigmoid(margins[i]);
                g[i] = p - f64::from(y[i]);
                h[i] = (p * (1.0 - p)).max(1e-16);
            }

            // Row subsample (without replacement) and column subsample.
            let idx: Vec<usize> = if n_rows < n {
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                all.truncate(n_rows);
                all
            } else {
                (0..n).collect()
            };
            let feats: Vec<usize> = if n_cols < self.n_features {
                let mut all: Vec<usize> = (0..self.n_features).collect();
                all.shuffle(&mut rng);
                all.truncate(n_cols.max(1));
                all
            } else {
                (0..self.n_features).collect()
            };
            // Advance the RNG even when not subsampling so seeds matter
            // uniformly across configurations.
            let _: u32 = rng.gen();

            let mut nodes = Vec::new();
            self.grow(&mut nodes, x, &g, &h, &idx, &feats, 0);
            let tree = RegTree { nodes };

            for i in 0..n {
                margins[i] += self.params.learning_rate * tree.predict(&x[i]);
            }
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict on unfitted ensemble");
        Self::sigmoid(self.margin(row))
    }

    fn name(&self) -> &'static str {
        "XGB"
    }
}

impl FeatureImportance for GradientBoosting {
    fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.gain_importance.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.gain_importance.len()];
        }
        self.gain_importance.iter().map(|v| v / total).collect()
    }
}

impl GradientBoosting {
    /// Encode the fitted ensemble (params, trees, base score,
    /// importances).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.n_rounds);
        w.usize(self.params.max_depth);
        w.f64(self.params.learning_rate);
        w.f64(self.params.lambda);
        w.f64(self.params.gamma);
        w.f64(self.params.min_child_weight);
        w.f64(self.params.subsample);
        w.f64(self.params.colsample);
        w.u64(self.params.seed);
        w.usize(self.trees.len());
        for tree in &self.trees {
            w.usize(tree.nodes.len());
            for node in &tree.nodes {
                match *node {
                    RegNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        w.u8(0);
                        w.usize(feature);
                        w.f64(threshold);
                        w.usize(left);
                        w.usize(right);
                    }
                    RegNode::Leaf { weight } => {
                        w.u8(1);
                        w.f64(weight);
                    }
                }
            }
        }
        w.f64(self.base_score);
        w.f64s(&self.gain_importance);
        w.usize(self.n_features);
    }

    /// Decode an ensemble written by [`GradientBoosting::write_to`],
    /// re-validating the constructor invariants so hostile bytes error
    /// instead of panicking.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = GradientBoostingParams {
            n_rounds: r.usize()?,
            max_depth: r.usize()?,
            learning_rate: r.f64()?,
            lambda: r.f64()?,
            gamma: r.f64()?,
            min_child_weight: r.f64()?,
            subsample: r.f64()?,
            colsample: r.f64()?,
            seed: r.u64()?,
        };
        if !(params.subsample > 0.0 && params.subsample <= 1.0) {
            return Err(PersistError::Malformed("subsample out of (0, 1]"));
        }
        if !(params.colsample > 0.0 && params.colsample <= 1.0) {
            return Err(PersistError::Malformed("colsample out of (0, 1]"));
        }
        let n_trees = r.len(9)?;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let n_nodes = r.len(9)?;
            let mut nodes = Vec::with_capacity(n_nodes);
            for _ in 0..n_nodes {
                nodes.push(match r.u8()? {
                    0 => {
                        let feature = r.usize()?;
                        let threshold = r.f64()?;
                        let left = r.usize()?;
                        let right = r.usize()?;
                        if left >= n_nodes || right >= n_nodes {
                            return Err(PersistError::Malformed(
                                "regression-tree child index out of range",
                            ));
                        }
                        RegNode::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        }
                    }
                    1 => RegNode::Leaf { weight: r.f64()? },
                    _ => return Err(PersistError::Malformed("regression-node discriminant")),
                });
            }
            trees.push(RegTree { nodes });
        }
        let base_score = r.f64()?;
        let gain_importance = r.f64s()?;
        let n_features = r.usize()?;
        Ok(GradientBoosting {
            params,
            trees,
            base_score,
            gain_importance,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_moons_like(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
        // Deterministic non-linear boundary: label = (x0² + x1 > 4).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 13) as f64 / 3.0 - 2.0;
            let b = (i % 7) as f64 - 3.0;
            x.push(vec![a, b]);
            y.push(u8::from(a * a + b > 4.0));
        }
        (x, y)
    }

    #[test]
    fn fits_nonlinear_boundary() {
        let (x, y) = two_moons_like(120);
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 60,
            ..GradientBoostingParams::default()
        });
        gbt.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| gbt.predict(row) == label)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.98,
            "acc = {correct}/{}",
            x.len()
        );
    }

    #[test]
    fn margin_moves_with_rounds() {
        let (x, y) = two_moons_like(60);
        let mut small = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 1,
            ..GradientBoostingParams::default()
        });
        let mut big = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 50,
            ..GradientBoostingParams::default()
        });
        small.fit(&x, &y);
        big.fit(&x, &y);
        assert_eq!(small.n_trees(), 1);
        assert_eq!(big.n_trees(), 50);
        // More rounds → sharper probabilities on training points.
        let sharp = |m: &GradientBoosting| {
            x.iter()
                .map(|r| (m.predict_proba(r) - 0.5).abs())
                .sum::<f64>()
        };
        assert!(sharp(&big) > sharp(&small));
    }

    #[test]
    fn importances_sum_to_one_and_rank_signal() {
        // Feature 1 is pure noise (constant), feature 0 decides the label.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 3.0]).collect();
        let y: Vec<u8> = (0..40).map(|i| u8::from(i >= 20)).collect();
        let mut gbt = GradientBoosting::new(GradientBoostingParams::default());
        gbt.fit(&x, &y);
        let imp = gbt.feature_importances();
        assert!(imp[0] > 0.99);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = two_moons_like(200);
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 80,
            subsample: 0.7,
            colsample: 0.5,
            ..GradientBoostingParams::default()
        });
        gbt.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &l)| gbt.predict(r) == l)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = two_moons_like(80);
        let params = GradientBoostingParams {
            n_rounds: 20,
            subsample: 0.8,
            ..GradientBoostingParams::default()
        };
        let mut a = GradientBoosting::new(params.clone());
        let mut b = GradientBoosting::new(params);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    #[should_panic(expected = "subsample must be in (0, 1]")]
    fn rejects_bad_subsample() {
        GradientBoosting::new(GradientBoostingParams {
            subsample: 0.0,
            ..GradientBoostingParams::default()
        });
    }
}
