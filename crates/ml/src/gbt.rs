//! Gradient-boosted decision trees in the XGBoost style.
//!
//! "XGB" — the best performer in both Table 1 (F1 = 99.72% for the app
//! classifier) and Table 2 (F1 = 95.29% for the device classifier). The
//! implementation follows the XGBoost paper's exact greedy algorithm:
//!
//! * second-order Taylor expansion of the logistic loss — per-row gradient
//!   `g = p − y` and hessian `h = p (1 − p)`;
//! * split gain `½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`;
//! * regularized leaf weights `w = −G / (H + λ)`;
//! * shrinkage `η`, row subsampling and column subsampling per tree.
//!
//! Feature importance is total split gain per feature, the analogue of the
//! Gini importance used for Figures 13 and 14.
//!
//! # Columnar split search and the batch-canonical order
//!
//! Training runs on `racket-columnar` storage. The feature matrix is
//! transposed once per fit into a [`ColumnMatrix`], each column is
//! argsorted **once per fit** into contiguous `(value, row)` pairs, and
//! every tree node derives its per-feature scan order by stable
//! partition of its parent's pair lists — no per-node sorting at all.
//!
//! That presorting demands a canonical tie order, so the split search
//! defines the **batch-canonical order**: row sets are kept ascending by
//! row index, gradient/hessian sums fold in ascending row order, and a
//! feature's scan visits rows by `(feature value, row index)` — ties
//! always break toward the lower row. The row-oriented
//! [`GradientBoosting::fit_reference`] implements exactly the same
//! order, is kept as the executable specification, and the differential
//! tests serialize both fits and compare bytes. ARCHITECTURE.md §9
//! spells out the equivalence argument.

use crate::persist::{PersistError, Reader, Writer};
use crate::{Classifier, FeatureImportance};
use racket_columnar::{sort_pairs, ColumnMatrix, FlatMatrix, ScratchArena, SortPair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Hyperparameters of a [`GradientBoosting`] ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoostingParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Learning rate (shrinkage) η.
    pub learning_rate: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum sum of hessians per child (xgboost's `min_child_weight`).
    pub min_child_weight: f64,
    /// Row subsample fraction per tree, in (0, 1].
    pub subsample: f64,
    /// Column subsample fraction per tree, in (0, 1].
    pub colsample: f64,
    /// RNG seed for row/column subsampling.
    pub seed: u64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        GradientBoostingParams {
            n_rounds: 100,
            max_depth: 4,
            learning_rate: 0.2,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.9,
            colsample: 0.8,
            seed: 42,
        }
    }
}

/// A node of a fitted regression tree.
#[derive(Debug, Clone)]
enum RegNode {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        weight: f64,
    },
}

/// One regression tree of the boosted ensemble.
#[derive(Debug, Clone)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                RegNode::Leaf { weight } => return weight,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Gradient-boosted tree ensemble with logistic loss.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    params: GradientBoostingParams,
    trees: Vec<RegTree>,
    base_score: f64,
    /// Total split gain accumulated per feature.
    gain_importance: Vec<f64>,
    n_features: usize,
}

impl GradientBoosting {
    /// Create an unfitted ensemble.
    pub fn new(params: GradientBoostingParams) -> Self {
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        assert!(
            params.colsample > 0.0 && params.colsample <= 1.0,
            "colsample must be in (0, 1]"
        );
        GradientBoosting {
            params,
            trees: Vec::new(),
            base_score: 0.0,
            gain_importance: Vec::new(),
            n_features: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }

    /// Grow one regression tree on gradients/hessians over `rows` —
    /// row-oriented **reference** implementation.
    ///
    /// This is the executable specification of the split search: the
    /// columnar [`GradientBoosting::grow_col`] must produce bit-identical
    /// trees (the `fit_matches_reference` tests and the
    /// `columnar_equivalence` harness enforce it). Everything folds in
    /// the batch-canonical order:
    ///
    /// * `rows` is ascending by row index and the gradient/hessian sums
    ///   fold in that order;
    /// * each feature's scan order is a fresh stable sort of `rows` by
    ///   feature value, so ties are visited in ascending row order;
    /// * children partition `rows`, preserving ascending order.
    #[allow(clippy::too_many_arguments)]
    fn grow_reference(
        &mut self,
        tree: &mut Vec<RegNode>,
        x: &[Vec<f64>],
        g: &[f64],
        h: &[f64],
        rows: &[usize],
        feats: &[usize],
        depth: usize,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&i| g[i]).sum();
        let h_sum: f64 = rows.iter().map(|&i| h[i]).sum();
        let lambda = self.params.lambda;

        let leaf = |tree: &mut Vec<RegNode>| {
            tree.push(RegNode::Leaf {
                weight: -g_sum / (h_sum + lambda),
            });
            tree.len() - 1
        };

        if depth >= self.params.max_depth || rows.len() < 2 {
            return leaf(tree);
        }

        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<(usize, f64, f64)> = None;
        for &f in feats {
            let mut order: Vec<usize> = rows.to_vec();
            order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("NaN feature value"));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                gl += g[i];
                hl += h[i];
                if x[order[w]][f] == x[order[w + 1]][f] {
                    continue;
                }
                let hr = h_sum - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gr = g_sum - gl;
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                    - self.params.gamma;
                if gain > best.map_or(1e-12, |(_, _, bg)| bg) {
                    let threshold = (x[order[w]][f] + x[order[w + 1]][f]) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return leaf(tree);
        };
        self.gain_importance[feature] += gain;

        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&i| x[i][feature] <= threshold);

        let slot = tree.len();
        tree.push(RegNode::Leaf { weight: 0.0 }); // placeholder
        let left = self.grow_reference(tree, x, g, h, &left_rows, feats, depth + 1);
        let right = self.grow_reference(tree, x, g, h, &right_rows, feats, depth + 1);
        tree[slot] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Grow one regression tree over presorted columnar pair lists — the
    /// default path.
    ///
    /// `rows` is the node's row set, ascending; `sorted[k]` is the node's
    /// `(value, row)` pair list for `feats[k]`, sorted by
    /// `(value, row index)`. Bit-identical to
    /// [`GradientBoosting::grow_reference`] because stable partition
    /// preserves that invariant: filtering a `(value, row)`-sorted list
    /// by the split predicate yields the child's `(value, row)`-sorted
    /// list, which is exactly what the reference's fresh stable sort of
    /// the ascending child rows produces. Gradient/hessian partial sums
    /// therefore fold in the reference's scan order, and the node's
    /// `g_sum`/`h_sum` fold over ascending `rows` like the reference —
    /// yet no node ever sorts: sorting happens once per fit, in
    /// [`GradientBoosting::fit_impl`].
    ///
    /// All buffers are recycled through the [`ScratchArena`] on every
    /// exit path.
    #[allow(clippy::too_many_arguments)]
    fn grow_col(
        &mut self,
        tree: &mut Vec<RegNode>,
        cols: &ColumnMatrix,
        g: &[f64],
        h: &[f64],
        rows: Vec<u32>,
        sorted: Vec<Vec<SortPair>>,
        feats: &[usize],
        depth: usize,
        arena: &mut ScratchArena,
    ) -> usize {
        let g_sum: f64 = rows.iter().map(|&i| g[i as usize]).sum();
        let h_sum: f64 = rows.iter().map(|&i| h[i as usize]).sum();
        let lambda = self.params.lambda;
        let n_node = rows.len();

        let recycle = |arena: &mut ScratchArena, rows: Vec<u32>, sorted: Vec<Vec<SortPair>>| {
            arena.put_indices(rows);
            for list in sorted {
                arena.put_pairs(list);
            }
        };
        let leaf = |tree: &mut Vec<RegNode>| {
            tree.push(RegNode::Leaf {
                weight: -g_sum / (h_sum + lambda),
            });
            tree.len() - 1
        };

        if depth >= self.params.max_depth || n_node < 2 {
            recycle(arena, rows, sorted);
            return leaf(tree);
        }

        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let mut best: Option<(usize, f64, f64)> = None;
        for (pairs, &f) in sorted.iter().zip(feats) {
            debug_assert_eq!(pairs.len(), n_node);
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..pairs.len() - 1 {
                let i = pairs[w].1 as usize;
                gl += g[i];
                hl += h[i];
                if pairs[w].0 == pairs[w + 1].0 {
                    continue;
                }
                let hr = h_sum - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gr = g_sum - gl;
                let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                    - self.params.gamma;
                if gain > best.map_or(1e-12, |(_, _, bg)| bg) {
                    let threshold = (pairs[w].0 + pairs[w + 1].0) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            recycle(arena, rows, sorted);
            return leaf(tree);
        };
        self.gain_importance[feature] += gain;

        // Stable partitions by the split predicate: ascending row order
        // and per-feature (value, row) order both survive filtering.
        let col = cols.col(feature);
        let mut left_rows = arena.take_indices();
        let mut right_rows = arena.take_indices();
        for &i in &rows {
            if col[i as usize] <= threshold {
                left_rows.push(i);
            } else {
                right_rows.push(i);
            }
        }
        let mut left_sorted = Vec::with_capacity(sorted.len());
        let mut right_sorted = Vec::with_capacity(sorted.len());
        for pairs in &sorted {
            let mut l = arena.take_pairs();
            let mut r = arena.take_pairs();
            for &p in pairs {
                if col[p.1 as usize] <= threshold {
                    l.push(p);
                } else {
                    r.push(p);
                }
            }
            left_sorted.push(l);
            right_sorted.push(r);
        }
        recycle(arena, rows, sorted);

        let slot = tree.len();
        tree.push(RegNode::Leaf { weight: 0.0 }); // placeholder
        let left = self.grow_col(
            tree,
            cols,
            g,
            h,
            left_rows,
            left_sorted,
            feats,
            depth + 1,
            arena,
        );
        let right = self.grow_col(
            tree,
            cols,
            g,
            h,
            right_rows,
            right_sorted,
            feats,
            depth + 1,
            arena,
        );
        tree[slot] = RegNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Raw margin (log-odds) for a row.
    fn margin(&self, row: &[f64]) -> f64 {
        let mut z = self.base_score;
        for t in &self.trees {
            z += self.params.learning_rate * t.predict(row);
        }
        z
    }

    /// Probabilities for every row of a flat feature matrix.
    ///
    /// The batch-scoring kernel: trees outer, rows inner, so tree nodes
    /// stay hot while rows stream through one contiguous buffer. Per row
    /// the margin accumulates in tree order — the same operation sequence
    /// as [`Classifier::predict_proba`] — so results are bitwise equal to
    /// scoring row by row.
    ///
    /// # Panics
    /// If the ensemble is unfitted.
    pub fn predict_proba_batch(&self, x: &FlatMatrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict on unfitted ensemble");
        let mut z = vec![self.base_score; x.n_rows()];
        for t in &self.trees {
            for (zi, row) in z.iter_mut().zip(x.rows()) {
                *zi += self.params.learning_rate * t.predict(row);
            }
        }
        z.into_iter().map(Self::sigmoid).collect()
    }

    /// Fit with the row-oriented reference split search.
    ///
    /// Identical results to [`Classifier::fit`], kept as the executable
    /// specification for the columnar engine; the differential tests
    /// serialize both fits and compare bytes.
    pub fn fit_reference(&mut self, x: &[Vec<f64>], y: &[u8]) {
        self.fit_impl(x, y, true);
    }

    /// Shared fit scaffolding: base score, per-round gradients,
    /// subsampling (one RNG stream regardless of path), tree growth via
    /// the columnar or the reference search, margin updates.
    fn fit_impl(&mut self, x: &[Vec<f64>], y: &[u8], reference: bool) {
        crate::validate_xy(x, y);
        self.n_features = x[0].len();
        self.trees.clear();
        self.gain_importance = vec![0.0; self.n_features];

        let n = x.len();
        // Base score: log-odds of the positive rate, clamped away from ±∞.
        let pos_rate =
            (y.iter().filter(|&&l| l == 1).count() as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6);
        self.base_score = (pos_rate / (1.0 - pos_rate)).ln();

        // Columnar path: transpose once, then argsort every column once
        // per fit into (value, row) pairs with ties ascending by row —
        // the batch-canonical order every node's scan inherits by stable
        // partition. (Columns containing NaN are rejected here, up
        // front, with the reference search's panic message.)
        let cols = if reference {
            None
        } else {
            assert!(
                u32::try_from(n).is_ok(),
                "columnar split search indexes rows with u32"
            );
            Some(ColumnMatrix::from_rows(x))
        };
        let presorted: Vec<Vec<SortPair>> = cols
            .iter()
            .flat_map(|cols| {
                (0..self.n_features).map(|f| {
                    let mut pairs: Vec<SortPair> = cols
                        .col(f)
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, i as u32))
                        .collect();
                    sort_pairs(&mut pairs);
                    pairs
                })
            })
            .collect();
        let mut in_sample = vec![true; n];
        let mut arena = ScratchArena::new();

        let mut margins = vec![self.base_score; n];
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n_cols = ((self.n_features as f64) * self.params.colsample).ceil() as usize;
        let n_rows = ((n as f64) * self.params.subsample).ceil() as usize;

        for _ in 0..self.params.n_rounds {
            // Gradients / hessians of the logistic loss at current margins.
            let mut g = vec![0.0; n];
            let mut h = vec![0.0; n];
            for i in 0..n {
                let p = Self::sigmoid(margins[i]);
                g[i] = p - f64::from(y[i]);
                h[i] = (p * (1.0 - p)).max(1e-16);
            }

            // Row subsample (without replacement) and column subsample.
            // The draw is a shuffle, but the trained-on set is a *set*:
            // it is canonicalized to ascending row order (the
            // batch-canonical fold order) before growing.
            let idx: Vec<usize> = if n_rows < n {
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                all.truncate(n_rows);
                all.sort_unstable();
                all
            } else {
                (0..n).collect()
            };
            let feats: Vec<usize> = if n_cols < self.n_features {
                let mut all: Vec<usize> = (0..self.n_features).collect();
                all.shuffle(&mut rng);
                all.truncate(n_cols.max(1));
                all
            } else {
                (0..self.n_features).collect()
            };
            // Advance the RNG even when not subsampling so seeds matter
            // uniformly across configurations.
            let _: u32 = rng.gen();

            let mut nodes = Vec::new();
            match &cols {
                Some(cols) => {
                    // Root row set and per-feature pair lists: filter the
                    // fit-wide presorted lists by the subsample mask —
                    // a stable filter, so the (value, row) order holds.
                    let mut root_rows = arena.take_indices();
                    root_rows.extend(idx.iter().map(|&i| i as u32));
                    let root_sorted: Vec<Vec<SortPair>> = if idx.len() == n {
                        feats
                            .iter()
                            .map(|&f| {
                                let mut list = arena.take_pairs();
                                list.extend_from_slice(&presorted[f]);
                                list
                            })
                            .collect()
                    } else {
                        in_sample.fill(false);
                        for &i in &idx {
                            in_sample[i] = true;
                        }
                        feats
                            .iter()
                            .map(|&f| {
                                let mut list = arena.take_pairs();
                                list.extend(
                                    presorted[f].iter().filter(|p| in_sample[p.1 as usize]),
                                );
                                list
                            })
                            .collect()
                    };
                    self.grow_col(
                        &mut nodes,
                        cols,
                        &g,
                        &h,
                        root_rows,
                        root_sorted,
                        &feats,
                        0,
                        &mut arena,
                    );
                }
                None => {
                    self.grow_reference(&mut nodes, x, &g, &h, &idx, &feats, 0);
                }
            }
            let tree = RegTree { nodes };

            for i in 0..n {
                margins[i] += self.params.learning_rate * tree.predict(&x[i]);
            }
            self.trees.push(tree);
        }
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        self.fit_impl(x, y, false);
    }

    fn predict_proba(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict on unfitted ensemble");
        Self::sigmoid(self.margin(row))
    }

    fn name(&self) -> &'static str {
        "XGB"
    }
}

impl FeatureImportance for GradientBoosting {
    fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.gain_importance.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.gain_importance.len()];
        }
        self.gain_importance.iter().map(|v| v / total).collect()
    }
}

impl GradientBoosting {
    /// Encode the fitted ensemble (params, trees, base score,
    /// importances).
    pub(crate) fn write_to(&self, w: &mut Writer) {
        w.usize(self.params.n_rounds);
        w.usize(self.params.max_depth);
        w.f64(self.params.learning_rate);
        w.f64(self.params.lambda);
        w.f64(self.params.gamma);
        w.f64(self.params.min_child_weight);
        w.f64(self.params.subsample);
        w.f64(self.params.colsample);
        w.u64(self.params.seed);
        w.usize(self.trees.len());
        for tree in &self.trees {
            w.usize(tree.nodes.len());
            for node in &tree.nodes {
                match *node {
                    RegNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        w.u8(0);
                        w.usize(feature);
                        w.f64(threshold);
                        w.usize(left);
                        w.usize(right);
                    }
                    RegNode::Leaf { weight } => {
                        w.u8(1);
                        w.f64(weight);
                    }
                }
            }
        }
        w.f64(self.base_score);
        w.f64s(&self.gain_importance);
        w.usize(self.n_features);
    }

    /// Decode an ensemble written by [`GradientBoosting::write_to`],
    /// re-validating the constructor invariants so hostile bytes error
    /// instead of panicking.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let params = GradientBoostingParams {
            n_rounds: r.usize()?,
            max_depth: r.usize()?,
            learning_rate: r.f64()?,
            lambda: r.f64()?,
            gamma: r.f64()?,
            min_child_weight: r.f64()?,
            subsample: r.f64()?,
            colsample: r.f64()?,
            seed: r.u64()?,
        };
        if !(params.subsample > 0.0 && params.subsample <= 1.0) {
            return Err(PersistError::Malformed("subsample out of (0, 1]"));
        }
        if !(params.colsample > 0.0 && params.colsample <= 1.0) {
            return Err(PersistError::Malformed("colsample out of (0, 1]"));
        }
        let n_trees = r.len(9)?;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let n_nodes = r.len(9)?;
            let mut nodes = Vec::with_capacity(n_nodes);
            for _ in 0..n_nodes {
                nodes.push(match r.u8()? {
                    0 => {
                        let feature = r.usize()?;
                        let threshold = r.f64()?;
                        let left = r.usize()?;
                        let right = r.usize()?;
                        if left >= n_nodes || right >= n_nodes {
                            return Err(PersistError::Malformed(
                                "regression-tree child index out of range",
                            ));
                        }
                        RegNode::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        }
                    }
                    1 => RegNode::Leaf { weight: r.f64()? },
                    _ => return Err(PersistError::Malformed("regression-node discriminant")),
                });
            }
            trees.push(RegTree { nodes });
        }
        let base_score = r.f64()?;
        let gain_importance = r.f64s()?;
        let n_features = r.usize()?;
        Ok(GradientBoosting {
            params,
            trees,
            base_score,
            gain_importance,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_moons_like(n: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
        // Deterministic non-linear boundary: label = (x0² + x1 > 4).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 13) as f64 / 3.0 - 2.0;
            let b = (i % 7) as f64 - 3.0;
            x.push(vec![a, b]);
            y.push(u8::from(a * a + b > 4.0));
        }
        (x, y)
    }

    #[test]
    fn fits_nonlinear_boundary() {
        let (x, y) = two_moons_like(120);
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 60,
            ..GradientBoostingParams::default()
        });
        gbt.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| gbt.predict(row) == label)
            .count();
        assert!(
            correct as f64 / x.len() as f64 > 0.98,
            "acc = {correct}/{}",
            x.len()
        );
    }

    #[test]
    fn margin_moves_with_rounds() {
        let (x, y) = two_moons_like(60);
        let mut small = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 1,
            ..GradientBoostingParams::default()
        });
        let mut big = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 50,
            ..GradientBoostingParams::default()
        });
        small.fit(&x, &y);
        big.fit(&x, &y);
        assert_eq!(small.n_trees(), 1);
        assert_eq!(big.n_trees(), 50);
        // More rounds → sharper probabilities on training points.
        let sharp = |m: &GradientBoosting| {
            x.iter()
                .map(|r| (m.predict_proba(r) - 0.5).abs())
                .sum::<f64>()
        };
        assert!(sharp(&big) > sharp(&small));
    }

    #[test]
    fn importances_sum_to_one_and_rank_signal() {
        // Feature 1 is pure noise (constant), feature 0 decides the label.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 3.0]).collect();
        let y: Vec<u8> = (0..40).map(|i| u8::from(i >= 20)).collect();
        let mut gbt = GradientBoosting::new(GradientBoostingParams::default());
        gbt.fit(&x, &y);
        let imp = gbt.feature_importances();
        assert!(imp[0] > 0.99);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = two_moons_like(200);
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 80,
            subsample: 0.7,
            colsample: 0.5,
            ..GradientBoostingParams::default()
        });
        gbt.fit(&x, &y);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(r, &l)| gbt.predict(r) == l)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = two_moons_like(80);
        let params = GradientBoostingParams {
            n_rounds: 20,
            subsample: 0.8,
            ..GradientBoostingParams::default()
        };
        let mut a = GradientBoosting::new(params.clone());
        let mut b = GradientBoosting::new(params);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    #[should_panic(expected = "subsample must be in (0, 1]")]
    fn rejects_bad_subsample() {
        GradientBoosting::new(GradientBoostingParams {
            subsample: 0.0,
            ..GradientBoostingParams::default()
        });
    }

    /// Serialize a fitted ensemble for byte-level comparison.
    fn bytes_of(m: &GradientBoosting) -> Vec<u8> {
        crate::Model::Xgb(m.clone()).to_bytes()
    }

    #[test]
    fn columnar_fit_matches_reference_bitwise() {
        // Integer-ish features force heavy ties — the case where the
        // stable-sort tie-order argument actually matters.
        let (x, y) = two_moons_like(150);
        let params = GradientBoostingParams {
            n_rounds: 40,
            subsample: 0.8,
            colsample: 0.5,
            ..GradientBoostingParams::default()
        };
        let mut columnar = GradientBoosting::new(params.clone());
        let mut reference = GradientBoosting::new(params);
        columnar.fit(&x, &y);
        reference.fit_reference(&x, &y);
        assert_eq!(
            bytes_of(&columnar),
            bytes_of(&reference),
            "columnar and reference fits must serialize identically"
        );
        for row in &x {
            assert_eq!(
                columnar.predict_proba(row).to_bits(),
                reference.predict_proba(row).to_bits()
            );
        }
        assert_eq!(
            columnar.feature_importances(),
            reference.feature_importances()
        );
    }

    #[test]
    fn batch_scoring_matches_per_row_bitwise() {
        let (x, y) = two_moons_like(90);
        let mut gbt = GradientBoosting::new(GradientBoostingParams {
            n_rounds: 25,
            ..GradientBoostingParams::default()
        });
        gbt.fit(&x, &y);
        let flat = FlatMatrix::from_rows(&x);
        let batch = gbt.predict_proba_batch(&flat);
        assert_eq!(batch.len(), x.len());
        for (row, p) in x.iter().zip(&batch) {
            assert_eq!(p.to_bits(), gbt.predict_proba(row).to_bits());
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// fit ≡ fit_reference on arbitrary small datasets, including
            /// constant columns, dense ties and subsampled RNG streams.
            #[test]
            fn columnar_fit_is_bitwise_reference(
                rows in proptest::collection::vec(
                    proptest::collection::vec(-4i8..4, 3), 4..40),
                labels in proptest::collection::vec(0u8..2, 40),
                seed in 0u64..1000,
            ) {
                let x: Vec<Vec<f64>> =
                    rows.iter().map(|r| r.iter().map(|&v| f64::from(v)).collect()).collect();
                let y: Vec<u8> = labels[..x.len()].to_vec();
                let params = GradientBoostingParams {
                    n_rounds: 8,
                    subsample: 0.75,
                    colsample: 0.67,
                    seed,
                    ..GradientBoostingParams::default()
                };
                let mut columnar = GradientBoosting::new(params.clone());
                let mut reference = GradientBoosting::new(params);
                columnar.fit(&x, &y);
                reference.fit_reference(&x, &y);
                prop_assert_eq!(bytes_of(&columnar), bytes_of(&reference));
            }
        }
    }
}
