//! Shared harness for the experiment binaries and benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin` that reruns the corresponding experiment on the simulated
//! fleet and prints the same rows/series the paper reports, alongside the
//! paper's published values for comparison. Results are also written as
//! CSV under `target/experiments/`.
//!
//! Scale is selected with the `RACKET_SCALE` environment variable:
//!
//! * `test`  — 60 devices, seconds per experiment (CI-friendly);
//! * `mid`   — 268 devices (default);
//! * `paper` — the full 803-device population of §5.
//!
//! The `bench_pipeline` binary additionally runs a `large` scale that is
//! not a study at all: the [`ingest_plane`] harness floods the async
//! collection server from ≥ 10⁴ concurrent connections and reports the
//! aggregate ingest throughput (floor: 1M snapshots/s).

#![deny(missing_docs)]

pub mod ingest_plane;
pub mod report;

use racket_agents::FleetConfig;
use racket_collect::CollectorConfig;
use racketstore::study::{CollectionPath, Study, StudyConfig, StudyOutput};
use std::io::Write;
use std::sync::OnceLock;

/// Experiment scale, from `RACKET_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 60 devices.
    Test,
    /// 268 devices.
    Mid,
    /// 803 devices (the paper's population).
    Paper,
}

impl Scale {
    /// Read the scale from the environment (default `mid`).
    pub fn from_env() -> Scale {
        match std::env::var("RACKET_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            Ok("paper") => Scale::Paper,
            Ok("mid") | Err(_) => Scale::Mid,
            Ok(other) => panic!("unknown RACKET_SCALE `{other}` (use test|mid|paper)"),
        }
    }

    /// The study configuration for this scale.
    pub fn config(self) -> StudyConfig {
        match self {
            Scale::Test => StudyConfig::test_scale(),
            Scale::Mid => StudyConfig {
                fleet: FleetConfig {
                    n_regular: 74,
                    n_organic: 134,
                    n_dedicated: 60,
                    history_days: 540,
                    max_study_days: 10,
                    no_android_id_rate: 0.06,
                    catalog: Default::default(),
                    seed: 2021,
                    overrides: Default::default(),
                    campaigns: Default::default(),
                    review_text: false,
                },
                collector: CollectorConfig {
                    fast_period_secs: 60,
                    slow_period_secs: 120,
                    collect_reviews: false,
                },
                path: CollectionPath::Direct,
                seed: 2021,
                faults: racket_collect::FaultPlan::none(),
            },
            Scale::Paper => StudyConfig::paper_scale(),
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Test => "test (60 devices)",
            Scale::Mid => "mid (268 devices)",
            Scale::Paper => "paper (803 devices)",
        }
    }
}

/// Run (and memoize) the study at the environment-selected scale.
pub fn study() -> &'static StudyOutput {
    static OUT: OnceLock<StudyOutput> = OnceLock::new();
    OUT.get_or_init(|| {
        let scale = Scale::from_env();
        eprintln!("[racket-bench] running study at {} scale…", scale.label());
        let t0 = std::time::Instant::now();
        let out = Study::new(scale.config()).run();
        eprintln!(
            "[racket-bench] study done in {:.1}s: {} devices, {} snapshots",
            t0.elapsed().as_secs_f64(),
            out.observations.len(),
            out.server_stats.snapshots
        );
        out
    })
}

/// Write a CSV file under `target/experiments/` (best effort).
pub fn write_csv(name: &str, header: &str, rows: impl IntoIterator<Item = String>) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(name);
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{header}");
    for row in rows {
        let _ = writeln!(f, "{row}");
    }
    eprintln!("[racket-bench] wrote {}", path.display());
}

/// Print a paper-style comparison block for one §6 feature.
pub fn print_comparison(c: &racketstore::measurements::CohortComparison) {
    println!("--- {} ---", c.name);
    println!("  regular: {}", c.regular_summary().paper_style());
    println!("  worker : {}", c.worker_summary().paper_style());
    println!(
        "  KS D = {:.4} (p = {:.2e}){}   ANOVA F = {:.2} (p = {:.2e}){}   KW H = {:.2} (p = {:.2e}){}",
        c.ks.statistic,
        c.ks.p_value,
        sig(c.ks.significant()),
        c.anova.statistic,
        c.anova.p_value,
        sig(c.anova.significant()),
        c.kruskal.statistic,
        c.kruskal.p_value,
        sig(c.kruskal.significant()),
    );
}

/// Significance marker.
pub fn sig(s: bool) -> &'static str {
    if s {
        " *"
    } else {
        "  "
    }
}

/// Format a metrics row for the Table 1/2 printers.
pub fn metrics_row(name: &str, m: &racket_ml::Metrics) -> String {
    format!(
        "{:<6} {:>9.2}% {:>9.2}% {:>9.2}% {:>8.4} {:>8.4}",
        name,
        m.precision * 100.0,
        m.recall * 100.0,
        m.f1 * 100.0,
        m.auc,
        m.fpr
    )
}

/// Header matching [`metrics_row`].
pub const METRICS_HEADER: &str = "algo    precision     recall         F1      AUC      FPR";

/// Labeling thresholds appropriate for the selected scale (small fleets
/// need a lower co-install threshold).
pub fn labeling_config() -> racketstore::labeling::LabelingConfig {
    match Scale::from_env() {
        Scale::Test => racketstore::labeling::LabelingConfig::test_scale(),
        Scale::Mid => racketstore::labeling::LabelingConfig {
            min_worker_installs: 3,
            ..Default::default()
        },
        Scale::Paper => Default::default(),
    }
}

/// The §7.2 labels over the memoized study.
pub fn labels() -> &'static racketstore::labeling::AppLabels {
    static L: OnceLock<racketstore::labeling::AppLabels> = OnceLock::new();
    L.get_or_init(|| racketstore::labeling::label_apps(study(), &labeling_config()))
}

/// The labeled app-usage dataset over the memoized study.
pub fn app_dataset() -> &'static racketstore::app_classifier::AppUsageDataset {
    static D: OnceLock<racketstore::app_classifier::AppUsageDataset> = OnceLock::new();
    D.get_or_init(|| racketstore::app_classifier::AppUsageDataset::build(study(), labels()))
}

/// The trained deployable app classifier.
pub fn app_classifier() -> &'static racketstore::app_classifier::AppClassifier {
    static C: OnceLock<racketstore::app_classifier::AppClassifier> = OnceLock::new();
    C.get_or_init(|| racketstore::app_classifier::AppClassifier::train(app_dataset()))
}

/// The §8 device dataset (≥ 2 active days; cohorts subsampled to the
/// paper's 178 + 88 at paper scale).
pub fn device_dataset() -> &'static racketstore::device_classifier::DeviceDataset {
    static D: OnceLock<racketstore::device_classifier::DeviceDataset> = OnceLock::new();
    D.get_or_init(|| {
        let subsample = match Scale::from_env() {
            Scale::Paper => Some((178, 88)),
            _ => None,
        };
        racketstore::device_classifier::DeviceDataset::build(
            study(),
            app_classifier(),
            2,
            subsample,
            7,
        )
    })
}

/// The §6 measurement report over the memoized study.
pub fn measurements() -> &'static racketstore::measurements::MeasurementReport {
    static M: OnceLock<racketstore::measurements::MeasurementReport> = OnceLock::new();
    M.get_or_init(|| racketstore::measurements::MeasurementReport::compute(study()))
}
