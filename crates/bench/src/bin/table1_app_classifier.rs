//! Table 1 — precision, recall and F1 of the app-usage classifier.
//!
//! Paper values (repeated 10-fold CV, n = 5): XGB 99.78/99.67/99.72,
//! RF 99.33/99.23/99.27, LR 99.22/99.00/99.11, KNN 96.88/96.88/96.88,
//! LVQ 90.99/94.54/92.73; AUC > 0.99 for XGB.

use racket_bench::{app_dataset, metrics_row, write_csv, METRICS_HEADER};
use racket_ml::Resampling;
use racketstore::app_classifier::{evaluate, CV_REPEATS};

fn main() {
    let ds = app_dataset();
    println!("== Table 1: app-usage classifier ==");
    println!(
        "dataset: {} suspicious + {} non-suspicious instances (paper: 2,994 + 345)\n",
        ds.n_suspicious(),
        ds.n_regular()
    );
    let repeats = if std::env::var("RACKET_FAST").is_ok() {
        1
    } else {
        CV_REPEATS
    };
    let report = evaluate(ds, repeats, Resampling::None);
    println!("{METRICS_HEADER}");
    for row in &report.table {
        println!("{}", metrics_row(row.name, &row.metrics));
    }
    println!("\npaper:  XGB 99.78% / 99.67% / 99.72%   (AUC > 0.99)");
    write_csv(
        "table1.csv",
        "algorithm,precision,recall,f1,auc,fpr",
        report.table.iter().map(|r| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.name,
                r.metrics.precision,
                r.metrics.recall,
                r.metrics.f1,
                r.metrics.auc,
                r.metrics.fpr
            )
        }),
    );
}
