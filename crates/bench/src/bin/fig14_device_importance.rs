//! Figure 14 — top-10 features of the device classifier by mean decrease
//! in Gini.
//!
//! Paper: four features stand out — total apps reviewed from the device's
//! accounts, percent of installed apps used suspiciously, number of
//! stopped apps, and average reviews per registered account.

use racket_bench::{device_dataset, write_csv};
use racketstore::app_classifier::feature_importance;

fn main() {
    let ds = device_dataset();
    println!("== Figure 14: device-classifier feature importance ==\n");
    let ranked = feature_importance(&ds.data);
    println!("{:<28} {:>10}", "feature", "importance");
    for (name, score) in ranked.iter().take(10) {
        println!("{name:<28} {score:>10.4}");
    }
    println!("\npaper top-4: n_total_apps_reviewed, app_suspiciousness,");
    println!("             n_stopped_apps, avg_reviews_per_account");
    write_csv(
        "fig14.csv",
        "feature,importance",
        ranked.iter().map(|(n, s)| format!("{n},{s:.6}")),
    );
}
