//! Figure 11 — dangerous vs. total permissions of cohort-exclusive apps.
//!
//! Paper: worker devices host the apps with the largest dangerous-to-total
//! permission ratios, but most apps share similar permission profiles
//! across cohorts — permissions alone cannot detect promoted apps.

use racket_bench::{measurements, study, write_csv};
use racket_types::Cohort;

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 11: app permissions (cohort-exclusive apps) ==\n");
    for cohort in [Cohort::Regular, Cohort::Worker] {
        let points: Vec<_> = m
            .permissions
            .iter()
            .filter(|p| p.cohort == cohort)
            .collect();
        let dangerous: Vec<f64> = points.iter().map(|p| p.dangerous as f64).collect();
        let total: Vec<f64> = points.iter().map(|p| p.total as f64).collect();
        let max_ratio = points
            .iter()
            .map(|p| p.dangerous as f64 / p.total.max(1) as f64)
            .fold(0.0f64, f64::max);
        println!(
            "{:<8} exclusive apps: {:>4}  dangerous {} of {} total (max ratio {:.2})",
            cohort.label(),
            points.len(),
            racket_stats::Summary::of(&dangerous)
                .map(|s| format!("{:.1}", s.mean))
                .unwrap_or_default(),
            racket_stats::Summary::of(&total)
                .map(|s| format!("{:.1}", s.mean))
                .unwrap_or_default(),
            max_ratio
        );
    }
    println!("\npaper: profiles largely overlap; permissions are a weak signal.");
    write_csv(
        "fig11.csv",
        "cohort,total_permissions,dangerous_permissions",
        m.permissions
            .iter()
            .map(|p| format!("{},{},{}", p.cohort.label(), p.total, p.dangerous)),
    );
}
