//! Table 2 — precision, recall and F1 of the device classifier.
//!
//! Paper values (10-fold CV, SMOTE balancing): XGB 96.81/93.81/95.29
//! (AUC 0.9455, FPR 1.41%), RF 93.95/96.06/94.99, SVM 96.64/89.03/92.68,
//! KNN 94.29/90.58/92.40, LVQ 96.40/82.84/89.11.

use racket_bench::{device_dataset, metrics_row, write_csv, METRICS_HEADER};
use racket_ml::Resampling;
use racketstore::device_classifier::evaluate;

fn main() {
    let ds = device_dataset();
    println!("== Table 2: device classifier ==");
    println!(
        "dataset: {} worker + {} regular devices (paper: 178 + 88)\n",
        ds.data.n_positive(),
        ds.data.n_negative()
    );
    let report = evaluate(ds, Resampling::Smote { k: 5 });
    println!("{METRICS_HEADER}");
    for row in &report.table {
        println!("{}", metrics_row(row.name, &row.metrics));
    }
    println!("\npaper:  XGB 96.81% / 93.81% / 95.29%   (AUC 0.9455, FPR 1.41%)");
    write_csv(
        "table2.csv",
        "algorithm,precision,recall,f1,auc,fpr",
        report.table.iter().map(|r| {
            format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.name,
                r.metrics.precision,
                r.metrics.recall,
                r.metrics.f1,
                r.metrics.auc,
                r.metrics.fpr
            )
        }),
    );
}
