//! Figure 8 — stopped apps per device.
//!
//! Paper: worker devices accumulate significantly more stopped apps
//! (fresh promotion installs that are never opened, plus force-stopped
//! retention installs), with substantial overlap at the low end.

use racket_bench::{measurements, print_comparison, study, write_csv};

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 8: stopped apps ==\n");
    print_comparison(&m.stopped_apps);
    // Boxplot-style quartiles.
    for (label, data) in [
        ("regular", &m.stopped_apps.regular),
        ("worker", &m.stopped_apps.worker),
    ] {
        let q = |p| racket_stats::quantile(data, p).expect("non-empty");
        println!(
            "{label:<8} quartiles: q1 = {:.1}, median = {:.1}, q3 = {:.1}",
            q(0.25),
            q(0.5),
            q(0.75)
        );
    }
    let rows = m
        .stopped_apps
        .regular
        .iter()
        .map(|v| format!("regular,{v}"))
        .chain(m.stopped_apps.worker.iter().map(|v| format!("worker,{v}")))
        .collect::<Vec<_>>();
    write_csv("fig8.csv", "cohort,stopped_apps", rows);
}
