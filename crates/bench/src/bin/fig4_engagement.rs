//! Figure 4 — snapshots per day vs. active days, per device.
//!
//! Paper: regular devices average 9,430.71 snapshots/day, worker devices
//! 8,208.10; 529 devices report at least 100 snapshots per day. (Absolute
//! counts scale with the collector cadence; the cohort *overlap* is the
//! reproduced shape.)

use racket_bench::{measurements, study, write_csv};
use racket_stats::Summary;
use racket_types::Cohort;

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 4: participant engagement ==\n");
    for cohort in [Cohort::Regular, Cohort::Worker] {
        let per_day: Vec<f64> = m
            .engagement
            .iter()
            .filter(|p| p.cohort == cohort)
            .map(|p| p.snapshots_per_day)
            .collect();
        let s = Summary::of(&per_day).expect("cohort populated");
        println!("{:<8} snapshots/day: {}", cohort.label(), s.paper_style());
    }
    let at_least_100 = m
        .engagement
        .iter()
        .filter(|p| p.snapshots_per_day >= 100.0)
        .count();
    println!(
        "\ndevices with ≥ 100 snapshots/day: {} of {} (paper: 529 of 803)",
        at_least_100,
        m.engagement.len()
    );
    write_csv(
        "fig4.csv",
        "cohort,snapshots_per_day,active_days",
        m.engagement.iter().map(|p| {
            format!(
                "{},{:.2},{}",
                p.cohort.label(),
                p.snapshots_per_day,
                p.active_days
            )
        }),
    );
}
