//! Design ablation — which §7.1 feature families carry the app detector?
//!
//! Retrains XGB on the labeled app-usage dataset with whole feature
//! families removed: review engagement (reviewing accounts, install-to-
//! review and inter-review times), usage (foreground/multi-day/retention),
//! permissions, VirusTotal flags, and churn. The drop in F1/AUC when a
//! family is removed measures the family's real contribution — the
//! counterpart to Figure 13's importance ranking, and the evidence behind
//! the paper's claim that *engagement* features are what make organic
//! fraud detectable.

use racket_bench::{app_dataset, write_csv};
use racket_ml::{cross_validate, Dataset, GradientBoosting, GradientBoostingParams, Resampling};

/// Feature families by column-name prefix match.
fn families() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "review_engagement",
            vec![
                "n_reviewing_accounts_before",
                "n_reviewing_accounts_during",
                "n_reviewing_accounts_after",
                "avg_install_review_days",
                "min_install_review_days",
                "mean_inter_review_days",
                "min_inter_review_days",
                "max_inter_review_days",
            ],
        ),
        (
            "usage",
            vec![
                "opened_multiple_days",
                "fg_snapshots_per_day",
                "device_snapshots_per_day",
                "inner_retention_days",
                "installed_before_racketstore",
                "installed_at_end",
            ],
        ),
        (
            "permissions",
            vec![
                "n_normal_permissions",
                "n_dangerous_permissions",
                "n_permissions_granted",
                "n_permissions_denied",
            ],
        ),
        ("virustotal", vec!["vt_flags"]),
        (
            "churn",
            vec!["n_installs_monitored", "n_uninstalls_monitored"],
        ),
    ]
}

/// Dataset with the named columns removed.
fn without(data: &Dataset, drop: &[&str]) -> Dataset {
    let keep: Vec<usize> = data
        .feature_names
        .iter()
        .enumerate()
        .filter(|(_, n)| !drop.contains(&n.as_str()))
        .map(|(i, _)| i)
        .collect();
    Dataset::new(
        data.x
            .iter()
            .map(|row| keep.iter().map(|&i| row[i]).collect())
            .collect(),
        data.y.clone(),
        keep.iter()
            .map(|&i| data.feature_names[i].clone())
            .collect(),
    )
}

fn xgb_cv(data: &Dataset) -> racket_ml::Metrics {
    cross_validate(
        || Box::new(GradientBoosting::new(GradientBoostingParams::default())),
        data,
        10,
        1,
        Resampling::None,
        42,
    )
    .metrics
}

fn main() {
    let ds = app_dataset();
    println!("== Feature-family ablation (app classifier, XGB) ==\n");
    println!(
        "{:<22} {:>8} {:>10} {:>10}",
        "configuration", "columns", "F1", "AUC"
    );
    let full = xgb_cv(&ds.data);
    println!(
        "{:<22} {:>8} {:>9.2}% {:>10.4}",
        "all features",
        ds.data.n_features(),
        full.f1 * 100.0,
        full.auc
    );
    let mut rows = vec![format!(
        "all,{},{:.4},{:.4}",
        ds.data.n_features(),
        full.f1,
        full.auc
    )];
    for (name, cols) in families() {
        let reduced = without(&ds.data, &cols);
        let m = xgb_cv(&reduced);
        println!(
            "{:<22} {:>8} {:>9.2}% {:>10.4}   (ΔF1 {:+.2} pp)",
            format!("- {name}"),
            reduced.n_features(),
            m.f1 * 100.0,
            m.auc,
            (m.f1 - full.f1) * 100.0
        );
        rows.push(format!(
            "-{},{},{:.4},{:.4}",
            name,
            reduced.n_features(),
            m.f1,
            m.auc
        ));
    }
    // And the inverse: review engagement alone.
    let only_review: Vec<&str> = families()
        .into_iter()
        .filter(|(n, _)| *n != "review_engagement")
        .flat_map(|(_, cols)| cols)
        .collect();
    let reduced = without(&ds.data, &only_review);
    let m = xgb_cv(&reduced);
    println!(
        "{:<22} {:>8} {:>9.2}% {:>10.4}",
        "review family only",
        reduced.n_features(),
        m.f1 * 100.0,
        m.auc
    );
    rows.push(format!(
        "review_only,{},{:.4},{:.4}",
        reduced.n_features(),
        m.f1,
        m.auc
    ));

    // The `+text` ablation needs review text, which the default study
    // never generates (the paper's classifiers saw none) — rerun the
    // study with the deterministic text generator enabled, then compare
    // the baseline vector against baseline + text columns over the same
    // labels and instances.
    eprintln!("[ablation_features] rerunning study with review text enabled …");
    let mut cfg = racket_bench::Scale::from_env().config();
    cfg.fleet.review_text = true;
    let out_text = racketstore::study::Study::new(cfg).run();
    let labels_text =
        racketstore::labeling::label_apps(&out_text, &racket_bench::labeling_config());
    let ds_text = racketstore::app_classifier::AppUsageDataset::build(&out_text, &labels_text);
    let base = xgb_cv(&ds_text.data);
    let extended = Dataset::new(
        ds_text
            .data
            .x
            .iter()
            .zip(&ds_text.provenance)
            .map(|(row, (i, app))| {
                let mut r = row.clone();
                r.extend(racket_features::text_features(
                    &out_text.observations[*i],
                    *app,
                ));
                r
            })
            .collect(),
        ds_text.data.y.clone(),
        racket_features::app_feature_names_with_text(),
    );
    let with_text = xgb_cv(&extended);
    println!(
        "\n== Text ablation (text-enabled study) ==\n\n{:<22} {:>8} {:>10} {:>10}",
        "configuration", "columns", "F1", "AUC"
    );
    println!(
        "{:<22} {:>8} {:>9.2}% {:>10.4}",
        "baseline (text study)",
        ds_text.data.n_features(),
        base.f1 * 100.0,
        base.auc
    );
    println!(
        "{:<22} {:>8} {:>9.2}% {:>10.4}   (ΔF1 {:+.2} pp)",
        "+ text features",
        extended.n_features(),
        with_text.f1 * 100.0,
        with_text.auc,
        (with_text.f1 - base.f1) * 100.0
    );
    rows.push(format!(
        "text_baseline,{},{:.4},{:.4}",
        ds_text.data.n_features(),
        base.f1,
        base.auc
    ));
    rows.push(format!(
        "+text,{},{:.4},{:.4}",
        extended.n_features(),
        with_text.f1,
        with_text.auc
    ));

    write_csv(
        "ablation_features.csv",
        "configuration,columns,f1,auc",
        rows,
    );
}
