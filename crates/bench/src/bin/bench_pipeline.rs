//! End-to-end pipeline benchmark: run the study (plus the downstream
//! labeling/feature/CV stages) at increasing fleet scales and emit
//! `BENCH_pipeline.json` — per-stage wall clock, ingestion throughput,
//! compressed bytes, p50/p95/p99 stage latencies and every fault/retry
//! counter. The schema lives in `racket_bench::report` and is documented
//! in `EXPERIMENTS.md`.
//!
//! Usage:
//!
//! ```text
//! bench_pipeline [--smoke] [--paper] [--out PATH] [--validate PATH] [--async-smoke]
//! ```
//!
//! * default: test + mid study scales plus the `large` ingest-plane run
//!   (10⁴ concurrent connections through the async collection server,
//!   validated against its ≥ 1M snapshots/s floor);
//! * `--smoke`: test scale only, then parse the emitted file back
//!   (seconds — what `check.sh bench-smoke` runs);
//! * `--paper`: add the full 803-device scale (large still included);
//! * `--out PATH`: where to write (default `BENCH_pipeline.json`);
//! * `--validate PATH`: no runs — just parse and sanity-check an
//!   existing file, exiting non-zero on any violation;
//! * `--async-smoke`: no report — run the ingest plane at a small shape
//!   (hundreds of connections) purely as a correctness check on the
//!   async plane's plumbing, the step `check.sh` adds to its gate.

use racket_bench::ingest_plane::{self, IngestPlaneConfig};
use racket_bench::report::{self, BenchReport};
use racket_bench::Scale;
use racket_ml::{cross_validate, Classifier, GradientBoosting, GradientBoostingParams, Resampling};
use racket_obs::{install_global, render_timing_tree, Registry, SPAN_PREFIX};
use racket_types::metrics::keys;
use racketstore::app_classifier::{AppClassifier, AppUsageDataset};
use racketstore::device_classifier::DeviceDataset;
use racketstore::labeling::{label_apps, LabelingConfig};
use racketstore::scoring::DetectionService;
use racketstore::study::{CollectionPath, Study};

fn main() {
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut scales = vec![Scale::Test, Scale::Mid];
    let mut with_large = true;
    let mut validate_path: Option<String> = None;
    let mut async_smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                scales = vec![Scale::Test];
                with_large = false;
            }
            "--paper" => scales = vec![Scale::Test, Scale::Mid, Scale::Paper],
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--validate" => validate_path = Some(args.next().expect("--validate needs a path")),
            "--async-smoke" => async_smoke = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if async_smoke {
        // Pure plumbing check: a few hundred live connections through the
        // async plane, every upload acked, exactly-once ingest asserted
        // inside `ingest_plane::run`. No report is written.
        let cfg = IngestPlaneConfig::smoke();
        let result = ingest_plane::run(cfg);
        println!(
            "async smoke: {} connections, {} snapshots ingested exactly once, \
             {:.0} snapshots/s",
            result.devices, result.snapshots, result.snapshots_per_sec
        );
        return;
    }

    if let Some(path) = validate_path {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        match report::validate(&json) {
            Ok(parsed) => {
                println!(
                    "{path}: valid ({} runs, schema v{})",
                    parsed.runs.len(),
                    parsed.schema_version
                );
                return;
            }
            Err(e) => fail(&format!("{path}: INVALID — {e}")),
        }
    }

    let mut bench = BenchReport::new();
    for scale in scales {
        bench.runs.push(run_scale(scale));
    }
    if with_large {
        bench.runs.push(run_large());
    }

    let json = serde_json::to_string(&bench).expect("report serializes");
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    eprintln!("[bench_pipeline] wrote {out_path} ({} bytes)", json.len());

    // Self-check: the file we just wrote must parse back clean.
    match report::validate(&json) {
        Ok(_) => println!("{out_path}: valid ({} runs)", bench.runs.len()),
        Err(e) => fail(&format!("emitted report failed validation: {e}")),
    }
}

/// One complete pipeline run at `scale`, isolated in a fresh process-global
/// registry (so fleet-generation and CV-fold spans from different scales
/// never mix), returning its merged run report.
fn run_scale(scale: Scale) -> report::RunReport {
    let scale_name = match scale {
        Scale::Test => "test",
        Scale::Mid => "mid",
        Scale::Paper => "paper",
    };
    eprintln!("[bench_pipeline] running {} …", scale.label());
    let previous = install_global(Registry::new());
    let config = scale.config();
    let path_name = match config.path {
        CollectionPath::Wire => "wire",
        CollectionPath::AsyncWire => "async",
        CollectionPath::Direct => "direct",
    };
    let out = Study::new(config).run();

    // Downstream analysis stages, timed through the same registries: §7.2
    // labeling, app dataset + XGB cross-validation, deployable app
    // classifier, §8 device dataset. A 2-fold CV keeps the smoke run in
    // seconds while still exercising the `ml/cv_fold` spans.
    let labeling = match scale {
        Scale::Test => LabelingConfig::test_scale(),
        Scale::Mid => LabelingConfig {
            min_worker_installs: 3,
            ..Default::default()
        },
        Scale::Paper => Default::default(),
    };
    let labels = {
        let _span = out.obs.span("analyze/labeling");
        label_apps(&out, &labeling)
    };
    let app_data = AppUsageDataset::build(&out, &labels);
    {
        let _span = out.obs.span("analyze/cv_app");
        cross_validate(
            || {
                Box::new(GradientBoosting::new(GradientBoostingParams::default()))
                    as Box<dyn Classifier>
            },
            &app_data.data,
            2,
            1,
            Resampling::None,
            42,
        );
    }
    let app_clf = {
        let _span = out.obs.span("analyze/train_app");
        AppClassifier::train(&app_data)
    };
    let device_data = DeviceDataset::build(&out, &app_clf, 2, None, 7);

    // Live detection service: train, round-trip through the RKML codec
    // (the deployment artifact must behave identically to the in-memory
    // models), prime from streaming state, then time both scoring paths.
    let service = {
        let _span = out.obs.span("analyze/train_service");
        let trained = DetectionService::train(&app_clf, &device_data);
        DetectionService::from_bytes(&trained.to_bytes())
            .unwrap_or_else(|e| fail(&format!("service round-trip failed: {e}")))
    };
    let primed = service.prime(&out);
    let batch = service.score_batch(&out);
    let streaming = service.score_streaming(&out, &primed);
    for (i, (s, b)) in streaming.iter().zip(&batch).enumerate() {
        if s.proba.to_bits() != b.proba.to_bits()
            || s.suspiciousness.to_bits() != b.suspiciousness.to_bits()
        {
            fail(&format!(
                "device {i}: streaming verdict ({}, {}) != batch ({}, {})",
                s.suspiciousness, s.proba, b.suspiciousness, b.proba
            ));
        }
    }

    // Lockstep campaign detection: the study already ran the detector
    // incrementally over ingest-time sketches; recompute in batch from the
    // columnar install-event family (stamping `campaign/shingle` and the
    // `campaign.shingles` counter the validator's throughput floor reads)
    // and hold the two reports byte-identical.
    let campaigns = {
        let _span = out.obs.span("analyze/campaign_batch");
        racketstore::campaign::batch_report(&out)
    };
    if campaigns != out.campaigns {
        fail(&format!(
            "{scale_name}: batch campaign report != incremental report"
        ));
    }
    eprintln!(
        "[bench_pipeline] {} campaigns: {} clusters from {} candidate pairs",
        scale_name,
        campaigns.campaigns.len(),
        campaigns.n_candidate_pairs
    );

    // Review-text kernel throughput: fold a deterministic synthetic
    // review corpus (the agents' keyed template generator — identical
    // every run) through the batch text-sketch rebuild kernel, stamping
    // `campaign/text_rebuild` wall time and the `text.reviews` counter
    // the validator's ≥ 1M reviews/s floor reads. The default study runs
    // text-off, so this synthetic volume is what backs the floor. The
    // corpus is materialized *before* the span opens: the floor measures
    // the shingle → SimHash/sentiment → sketch fold (what ingest pays
    // per review), not template generation (which the simulator pays,
    // under `simulate`).
    {
        use rayon::prelude::*;
        let textgen = racket_agents::TextGen::new(2021);
        let (n_installs, per_install) = match scale {
            Scale::Test => (500u64, 100u64),
            _ => (2_500u64, 100u64),
        };
        let corpus: Vec<Vec<String>> = (0..n_installs)
            .into_par_iter()
            .map(|i| {
                (0..per_install)
                    .map(|r| {
                        let app = (i * per_install + r) % 97;
                        let stars = (1 + (i + r) % 5) as u8;
                        let rating = racket_types::Rating::new(stars).unwrap();
                        textgen.personal(i * 1_000 + r, app, rating)
                    })
                    .collect()
            })
            .collect();
        let span = out.obs.span(keys::SPAN_TEXT_REBUILD);
        let sketches: Vec<racket_text::TextSketch> = (0..n_installs)
            .into_par_iter()
            .map(|i| {
                let mut sk = racket_text::TextSketch::default();
                for (r, text) in corpus[i as usize].iter().enumerate() {
                    let r = r as u64;
                    let app = (i * per_install + r) % 97;
                    let stars = (1 + (i + r) % 5) as u8;
                    sk.observe(app as u32, i * 1_000 + r, r * 60, stars, text);
                }
                sk
            })
            .collect();
        drop(span);
        let n_reviews = n_installs * per_install;
        out.obs.add(keys::TEXT_REVIEWS, n_reviews);
        if sketches.iter().any(|s| s.is_empty()) {
            fail(&format!(
                "{scale_name}: text kernel produced an empty sketch"
            ));
        }
        eprintln!(
            "[bench_pipeline] {} text kernel: {} reviews folded into {} sketches",
            scale_name,
            n_reviews,
            sketches.len()
        );
    }

    // Merge the study's private registry with the global one (fleet
    // per-device timing, ml/cv_fold spans) into the run's snapshot.
    let mut snapshot = out.obs.snapshot();
    snapshot.merge(&install_global(previous).snapshot());

    // The streaming engine's payoff: classifying every device from primed
    // streaming state must be far cheaper than the batch re-scan.
    let stage_secs = |stage: &str| {
        snapshot
            .histograms
            .get(&format!("{SPAN_PREFIX}{stage}"))
            .map(|h| h.sum_secs())
            .unwrap_or(0.0)
    };
    let batch_secs = stage_secs(keys::SPAN_SCORE_BATCH);
    let streaming_secs = stage_secs(keys::SPAN_SCORE_STREAM);
    let speedup = if streaming_secs > 0.0 {
        batch_secs / streaming_secs
    } else {
        f64::INFINITY
    };
    eprintln!(
        "[bench_pipeline] {} live detection: {} devices scored; batch {:.1} ms, \
         streaming {:.3} ms ({speedup:.0}x)",
        scale_name,
        streaming.len(),
        batch_secs * 1e3,
        streaming_secs * 1e3
    );
    if scale != Scale::Test && speedup < 5.0 {
        fail(&format!(
            "streaming scoring only {speedup:.1}x faster than batch at {scale_name} scale \
             (contract: >= 5x)"
        ));
    }

    eprintln!(
        "[bench_pipeline] {} done: {} devices, {} snapshots, {:.0} snapshots/s",
        scale_name,
        out.observations.len(),
        out.metrics.snapshots_ingested,
        out.metrics.snapshots_per_sec()
    );
    eprintln!("{}", render_timing_tree(&snapshot));
    report::run_report(scale_name, path_name, out.observations.len(), &snapshot)
}

/// The `large` scale: not a study, but the async ingest plane at fleet
/// width — 10⁴ concurrent connections flooding pre-encoded uploads into
/// the reactor workers, measured first-byte-in to last-ack-out. The
/// measured throughput overrides the report's study-oriented
/// `snapshots_per_sec` derivation (which divides by the `simulate` span
/// this run does not have).
fn run_large() -> report::RunReport {
    let cfg = IngestPlaneConfig::large();
    eprintln!(
        "[bench_pipeline] running large (ingest plane: {} connections, {} snapshots) …",
        cfg.connections,
        cfg.total_snapshots()
    );
    let result = ingest_plane::run(cfg);
    let snapshot = result.registry.snapshot();
    let mut run = report::run_report("large", "async", result.devices, &snapshot);
    run.total_secs = result.elapsed_secs;
    run.snapshots_per_sec = result.snapshots_per_sec;
    eprintln!(
        "[bench_pipeline] large done: {} connections, {} snapshots in {:.2}s \
         ({:.2}M snapshots/s)",
        result.devices,
        result.snapshots,
        result.elapsed_secs,
        result.snapshots_per_sec / 1e6
    );
    eprintln!("{}", render_timing_tree(&snapshot));
    run
}

fn fail(msg: &str) -> ! {
    eprintln!("[bench_pipeline] {msg}");
    std::process::exit(1);
}
