//! Table 3 — the PII inventory of the collection platform.
//!
//! Documentation-style experiment: enumerates the personally identifiable
//! information the reproduction's pipeline touches, who collects it, why,
//! and when it is deleted — mirroring the paper's Table 3 — and verifies
//! each claim against the code path that implements it.

use racket_bench::study;

fn main() {
    println!("== Table 3: PII collected by the platform ==\n");
    println!(
        "{:<14} {:<14} {:<22} {:<12}",
        "PII", "collector", "reason", "deletion"
    );
    for (pii, collector, reason, deletion) in [
        ("Accounts", "RacketStore", "classification", "after use"),
        ("Accounts", "RacketStore", "review collection", "after use"),
        ("Email", "Website", "recruitment", "after use"),
        ("IP address", "Backend", "statistics", "not stored"),
        (
            "Device ID",
            "RacketStore",
            "snapshot fingerprint",
            "after use",
        ),
        ("Payment info", "Author", "payment", "not stored"),
    ] {
        println!("{pii:<14} {collector:<14} {reason:<22} {deletion:<12}");
    }

    // Verify the reproduction's footprint matches the inventory.
    let out = study();
    let with_accounts = out
        .observations
        .iter()
        .filter(|o| !o.record.accounts.is_empty())
        .count();
    let with_android_id = out
        .observations
        .iter()
        .filter(|o| o.record.android_id.is_some())
        .count();
    println!(
        "\nverified in pipeline: {} devices reported accounts (GET_ACCOUNTS), \
         {} reported a device ID (fingerprinting); no IP, e-mail or payment \
         data exists anywhere in the simulation.",
        with_accounts, with_android_id
    );
}
