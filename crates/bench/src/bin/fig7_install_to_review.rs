//! Figure 7 — time between app install and review.
//!
//! Paper: worker accounts posted 40,397 joinable reviews vs 35 from
//! regular devices; 13,376 (33%) of worker reviews landed within one day
//! of installation; workers wait 10.4 days on average (M = 5.00) vs 85.09
//! days (M = 21.92) for regular users.

use racket_bench::{measurements, print_comparison, study, write_csv};

fn main() {
    let _ = study();
    let m = measurements();
    let itr = &m.install_to_review;
    println!("== Figure 7: install-to-review delay ==\n");
    println!(
        "joinable reviews: {} worker vs {} regular (paper: 40,397 vs 35)",
        itr.worker_days.len(),
        itr.regular_days.len()
    );
    println!(
        "worker reviews within one day: {} ({:.1}%; paper: 13,376 = 33.1%)",
        itr.worker_within_one_day,
        100.0 * itr.worker_within_one_day as f64 / itr.worker_days.len().max(1) as f64
    );
    println!(
        "regular reviews within one day: {} (paper: 4 of 35)\n",
        itr.regular_within_one_day
    );
    print_comparison(&itr.comparison);
    println!("\npaper: worker 10.4 d (M = 5.00, SD = 13.72, max 574);");
    println!("       regular 85.09 d (M = 21.92, SD = 140.56, max 606)");
    let rows = itr
        .regular_days
        .iter()
        .map(|v| format!("regular,{v:.4}"))
        .chain(itr.worker_days.iter().map(|v| format!("worker,{v:.4}")))
        .collect::<Vec<_>>();
    write_csv("fig7.csv", "cohort,delay_days", rows);
}
