//! Figure 1 — on-device app interaction timelines.
//!
//! Paper: worker timelines start with the app install (level 4), followed
//! by review events (level 3) over several days with no interaction; a
//! regular user's timeline shows recurring foreground use (level 2) and
//! no review even after five days.

use racket_bench::{study, write_csv};
use racket_types::Cohort;

fn main() {
    let out = study();
    println!("== Figure 1: interaction timelines ==");
    println!("(event levels: 1 screen, 2 foreground, 3 review, 4 install)\n");

    // Two worker devices with reviews and one regular device with usage.
    let mut rows = Vec::new();
    let mut shown_workers = 0;
    let mut shown_regular = 0;
    for (obs, truth) in out.observations.iter().zip(&out.truth) {
        let cohort = truth.persona.cohort();
        let events = timeline(out, obs);
        let has_review = events.iter().any(|&(_, lvl)| lvl == 3);
        let keep = match cohort {
            Cohort::Worker if shown_workers < 2 && has_review => {
                shown_workers += 1;
                true
            }
            Cohort::Regular if shown_regular < 1 && !has_review => {
                shown_regular += 1;
                true
            }
            _ => false,
        };
        if !keep {
            continue;
        }
        println!(
            "--- {} device {} ---",
            cohort.label(),
            obs.record.install_id
        );
        for &(day, lvl) in events.iter().take(18) {
            let marker = match lvl {
                4 => "install",
                3 => "review",
                2 => "open",
                _ => "screen",
            };
            println!("  day {day:>6.2}  level {lvl}  {marker}");
            rows.push(format!(
                "{},{},{:.3},{}",
                cohort.label(),
                obs.record.install_id,
                day,
                lvl
            ));
        }
        println!();
        if shown_workers == 2 && shown_regular == 1 {
            break;
        }
    }
    write_csv("fig1.csv", "cohort,install,day,level", rows);
}

/// Build the (day, level) series for one device from install/review joins
/// and foreground observations.
fn timeline(
    out: &racketstore::StudyOutput,
    obs: &racket_features::DeviceObservation,
) -> Vec<(f64, u8)> {
    let mut events: Vec<(f64, u8)> = Vec::new();
    let start = obs.monitoring.start;
    // One promoted-or-reviewed app, else the most-used app.
    let app = obs
        .reviews_by_app
        .keys()
        .find(|a| obs.record.apps.contains_key(a))
        .copied()
        .or_else(|| obs.record.foreground.keys().next().copied());
    let Some(app) = app else { return events };
    let _ = out;
    if let Some(info) = obs.record.apps.get(&app) {
        events.push((
            info.install_time.signed_delta_secs(start) as f64 / 86_400.0,
            4,
        ));
    }
    for r in obs.reviews_for(app) {
        events.push((r.posted_at.signed_delta_secs(start) as f64 / 86_400.0, 3));
    }
    if let Some(days) = obs.record.foreground.get(&app) {
        for day in days.keys() {
            events.push((*day as f64 - start.as_days(), 2));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    events
}
