//! §8.2 ablation — device classifier under different balancing schemes.
//!
//! Paper: with SMOTE, XGB reaches F1 95.29% (AUC 0.9455); undersampling
//! drops recall to 92.97% (F1 95.18%, AUC 0.9074); no balancing raises F1
//! to 96.86% at the cost of AUC (0.9083).

use racket_bench::{device_dataset, metrics_row, write_csv, METRICS_HEADER};
use racket_ml::Resampling;
use racketstore::device_classifier::evaluate;

fn main() {
    let ds = device_dataset();
    println!("== §8.2 ablation: class balancing for the device classifier ==\n");
    let mut rows = Vec::new();
    for (label, resampling) in [
        ("smote", Resampling::Smote { k: 5 }),
        ("undersample", Resampling::Undersample),
        ("none", Resampling::None),
        ("oversample", Resampling::Oversample),
    ] {
        println!("--- {label} ---");
        println!("{METRICS_HEADER}");
        let report = evaluate(ds, resampling);
        for row in &report.table {
            println!("{}", metrics_row(row.name, &row.metrics));
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                label,
                row.name,
                row.metrics.precision,
                row.metrics.recall,
                row.metrics.f1,
                row.metrics.auc,
                row.metrics.fpr
            ));
        }
        println!();
    }
    println!("paper: XGB F1 95.29 (SMOTE), 95.18 (under, AUC 0.9074), 96.86 (none, AUC 0.9083)");
    write_csv(
        "ablation_device.csv",
        "sampling,algorithm,precision,recall,f1,auc,fpr",
        rows,
    );
}
