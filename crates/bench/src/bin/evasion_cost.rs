//! §9 extension — the cost of evading detection.
//!
//! The paper argues (Discussion, "Worker Strategy Evolution") that the
//! engagement features impose a trade-off on ASO workers: to look like
//! regular users they must register fewer accounts, wait longer before
//! reviewing, interact more with promoted apps and post less — each of
//! which cuts the fraud they can deliver.
//!
//! This experiment makes the argument quantitative. Each evasion strategy
//! re-generates the study with modified worker personas, retrains the full
//! two-stage pipeline (app labels → app classifier → device classifier),
//! and reports (a) worker-device recall at fixed settings and (b) the
//! fraud output — average reviews per worker device — under that strategy.
//!
//! Expected shape: evasion lowers recall only gradually while fraud output
//! collapses, i.e. the features price evasion in worker revenue.

use racket_agents::params::PersonaParams;
use racket_agents::{FleetConfig, PersonaOverrides};
use racket_bench::{labeling_config, write_csv, Scale};
use racket_ml::Resampling;
use racket_types::Cohort;
use racketstore::app_classifier::{AppClassifier, AppUsageDataset};
use racketstore::device_classifier::{evaluate, DeviceDataset};
use racketstore::labeling::label_apps;
use racketstore::study::Study;

/// One evasion strategy: a transformation of the worker personas.
struct Strategy {
    name: &'static str,
    apply: fn(&mut PersonaParams),
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "baseline",
            apply: |_| {},
        },
        Strategy {
            name: "fewer_accounts",
            // Halve the Gmail account pool.
            apply: |p| {
                p.gmail_accounts.median = (p.gmail_accounts.median / 2.0).max(1.0);
                p.gmail_accounts.max = 30.0;
            },
        },
        Strategy {
            name: "slower_reviews",
            // Wait like a regular user before reviewing.
            apply: |p| {
                p.promo_review_delay.fast_weight = 0.05;
                p.promo_review_delay.body.median = 22.0;
                p.promo_review_delay.body.sigma = 1.4;
            },
        },
        Strategy {
            name: "engage_with_apps",
            // Open every promoted app and never force-stop it.
            apply: |p| {
                p.promo_open_prob = 0.9;
                p.promo_stop_prob = 0.02;
            },
        },
        Strategy {
            name: "fewer_reviews",
            // Post from one account per app, skip half the jobs.
            apply: |p| {
                p.promo_job_review_prob *= 0.5;
                p.promo_accounts_per_app.median = 1.0;
                p.promo_accounts_per_app.max = 2.0;
            },
        },
        Strategy {
            name: "all_of_the_above",
            apply: |p| {
                p.gmail_accounts.median = (p.gmail_accounts.median / 2.0).max(1.0);
                p.gmail_accounts.max = 30.0;
                p.promo_review_delay.fast_weight = 0.05;
                p.promo_review_delay.body.median = 22.0;
                p.promo_review_delay.body.sigma = 1.4;
                p.promo_open_prob = 0.9;
                p.promo_stop_prob = 0.02;
                p.promo_job_review_prob *= 0.5;
                p.promo_accounts_per_app.median = 1.0;
                p.promo_accounts_per_app.max = 2.0;
            },
        },
    ]
}

fn main() {
    println!("== §9: the price of evading detection ==\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>16}",
        "strategy", "recall", "precision", "F1", "reviews/worker"
    );
    let mut rows = Vec::new();
    for strategy in strategies() {
        let mut organic = PersonaParams::organic_worker();
        let mut dedicated = PersonaParams::dedicated_worker();
        (strategy.apply)(&mut organic);
        (strategy.apply)(&mut dedicated);

        let mut config = Scale::from_env().config();
        config.fleet = FleetConfig {
            overrides: PersonaOverrides {
                regular: None,
                organic: Some(organic),
                dedicated: Some(dedicated),
            },
            ..config.fleet
        };
        let out = Study::new(config).run();

        // Fraud output under this strategy.
        let workers: Vec<_> = out.cohort(Cohort::Worker).collect();
        let fraud = workers
            .iter()
            .map(|o| o.total_reviews() as f64)
            .sum::<f64>()
            / workers.len().max(1) as f64;

        // Retrain the full pipeline against the adapted workers.
        let labels = label_apps(&out, &labeling_config());
        if labels.suspicious.is_empty() || labels.non_suspicious.is_empty() {
            println!(
                "{:<18} — labeling degenerated (no labeled apps)",
                strategy.name
            );
            continue;
        }
        let app_ds = AppUsageDataset::build(&out, &labels);
        let clf = AppClassifier::train(&app_ds);
        let dev_ds = DeviceDataset::build(&out, &clf, 2, None, 7);
        let report = evaluate(&dev_ds, Resampling::Smote { k: 5 });
        let xgb = &report.table[0];
        println!(
            "{:<18} {:>9.2}% {:>9.2}% {:>9.2}% {:>16.1}",
            strategy.name,
            xgb.metrics.recall * 100.0,
            xgb.metrics.precision * 100.0,
            xgb.metrics.f1 * 100.0,
            fraud
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.2}",
            strategy.name, xgb.metrics.recall, xgb.metrics.precision, xgb.metrics.f1, fraud
        ));
    }
    println!(
        "\nreading: evasion buys recall points only by collapsing the fraud output\n\
         (reviews per worker device), which is the paper's §9 argument."
    );
    write_csv(
        "evasion_cost.csv",
        "strategy,recall,precision,f1,reviews_per_worker",
        rows,
    );
}
