//! Figure 13 — top-10 features of the app classifier by mean decrease in
//! Gini.
//!
//! Paper: the number of accounts that reviewed the app from the device
//! and the average install-to-review time dominate the ranking.

use racket_bench::{app_dataset, write_csv};
use racketstore::app_classifier::feature_importance;

fn main() {
    let ds = app_dataset();
    println!("== Figure 13: app-classifier feature importance ==\n");
    let ranked = feature_importance(&ds.data);
    println!("{:<32} {:>10}", "feature", "importance");
    for (name, score) in ranked.iter().take(10) {
        println!("{name:<32} {score:>10.4}");
    }
    println!("\npaper top-2: n_reviewing_accounts, avg_install_review_time");
    write_csv(
        "fig13.csv",
        "feature,importance",
        ranked.iter().map(|(n, s)| format!("{n},{s:.6}")),
    );
}
