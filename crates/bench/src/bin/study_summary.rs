//! §5-style dataset summary: the reproduction's analogue of the paper's
//! "Data" section numbers — 943 installs → 803 unique devices, 592,045
//! slow + 57,770,204 fast snapshots, 110,511,637 reviews for 12,341 apps,
//! and 217,041 reviews by 10,310 registered Gmail accounts.

use racket_bench::{app_classifier, device_dataset, study, Scale};
use racket_types::Cohort;
use racketstore::scoring::DetectionService;

fn main() {
    let scale = Scale::from_env();
    let out = study();
    println!("== Study dataset summary ({}) ==\n", scale.label());
    println!(
        "devices: {} ({} regular, {} worker; paper: 803 = 223 + 580)",
        out.observations.len(),
        out.cohort(Cohort::Regular).count(),
        out.cohort(Cohort::Worker).count()
    );
    println!(
        "coalesced physical devices: {} from {} install records",
        out.coalesced_devices,
        out.observations.len()
    );
    let fast: u64 = out.observations.iter().map(|o| o.record.n_fast).sum();
    let slow: u64 = out.observations.iter().map(|o| o.record.n_slow).sum();
    println!(
        "snapshots: {fast} fast + {slow} slow (paper: 57,770,204 + 592,045 at 5 s cadence;\n\
         \u{20}         counts scale linearly with the configured thinning)"
    );
    println!(
        "apps observed on devices: {} of a {}-app catalog (paper: 12,341)",
        out.observations
            .iter()
            .flat_map(|o| o.record.apps.keys())
            .collect::<std::collections::HashSet<_>>()
            .len(),
        out.fleet.catalog.len()
    );
    println!(
        "store reviews (fleet-posted): {}",
        out.fleet.store.total_reviews()
    );
    println!(
        "reviews collected live by the 12 h crawler: {}",
        out.reviews_crawled
    );
    let gmail: usize = out.observations.iter().map(|o| o.google_ids.len()).sum();
    let by_accounts: usize = out.observations.iter().map(|o| o.total_reviews()).sum();
    println!(
        "registered Gmail accounts: {gmail} (paper: 10,310); reviews joined to them: \
         {by_accounts} (paper: 217,041)"
    );
    println!(
        "server: {} uploaded files, {} bad uploads, {} sign-ins",
        out.server_stats.files, out.server_stats.bad_uploads, out.server_stats.sign_ins
    );
    println!(
        "columnar store: {} installs x {} apps ({} CSR app entries, {} services; {} KiB of columns)",
        out.columnar.n_installs(),
        out.columnar.n_apps(),
        out.columnar.n_app_entries(),
        out.columnar.n_services(),
        out.columnar.column_bytes() / 1024
    );
    // Live detection from streaming state: the feature vectors were
    // maintained incrementally at ingest time, so end-of-study
    // classification is a model pass over cached state — no re-scan of
    // the raw snapshot database.
    let service = DetectionService::train(app_classifier(), device_dataset());
    let primed = service.prime(out);
    let verdicts = service.score_streaming(out, &primed);
    let flagged = verdicts.iter().filter(|v| v.is_worker).count();
    let dedicated = verdicts.iter().filter(|v| v.is_dedicated()).count();
    let correct = verdicts
        .iter()
        .zip(&out.truth)
        .filter(|(v, t)| v.is_worker == (t.persona.cohort() == Cohort::Worker))
        .count();
    println!(
        "\n== Live detection (streaming state) ==\n\
         devices flagged as worker-controlled: {flagged} of {} \
         ({dedicated} promotion-dedicated)\n\
         agreement with ground truth: {correct}/{} ({:.1}%)",
        verdicts.len(),
        verdicts.len(),
        100.0 * correct as f64 / verdicts.len() as f64
    );

    println!("\n== Pipeline metrics ==\n{}", out.metrics.report());
    println!(
        "\n== Stage timing tree ==\n{}",
        racket_obs::render_timing_tree(&out.obs.snapshot())
    );
}
