//! Campaign-detection quality vs. pacing stealth: run the study with the
//! fleet scheduling coordinated campaigns under each pacing strategy and
//! report detector recall/precision against the scheduled ground truth
//! (the EXPERIMENTS.md "recall/precision vs. stealth" table). The
//! campaign-free fleet rides along as the false-positive control.

use racket_agents::{CampaignConfig, PacingStrategy};
use racket_bench::{write_csv, Scale};
use racketstore::campaign::{batch_report, evaluate};
use racketstore::study::Study;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[campaign_table] running per-pacing studies at {} scale…",
        scale.label()
    );
    let cases: [(&str, Option<PacingStrategy>); 4] = [
        ("none", None),
        ("burst", Some(PacingStrategy::Burst)),
        ("drip", Some(PacingStrategy::Drip)),
        ("stealth", Some(PacingStrategy::Stealth)),
    ];

    println!("pacing   campaigns detected recall precision candidate_pairs");
    let mut rows = Vec::new();
    for (name, pacing) in cases {
        let mut config = scale.config();
        if let Some(p) = pacing {
            config.fleet.campaigns = CampaignConfig::with(3, p);
        }
        let out = Study::new(config).run();
        // Batch must agree with the incremental report on every run.
        assert_eq!(
            batch_report(&out),
            out.campaigns,
            "{name}: batch != incremental"
        );
        let eval = evaluate(&out.campaigns, &out);
        println!(
            "{name:<8} {:>9} {:>8} {:>6.2} {:>9.2} {:>15}",
            eval.n_truth,
            eval.n_detected,
            eval.recall(),
            eval.precision(),
            out.campaigns.n_candidate_pairs
        );
        rows.push(format!(
            "{name},{},{},{:.4},{:.4},{}",
            eval.n_truth,
            eval.n_detected,
            eval.recall(),
            eval.precision(),
            out.campaigns.n_candidate_pairs
        ));
    }
    write_csv(
        "campaign_table.csv",
        "pacing,campaigns,detected,recall,precision,candidate_pairs",
        rows,
    );
}
