//! §7.2 ablation — app classifier under balanced datasets.
//!
//! Paper: undersampling the majority class and oversampling the minority
//! class yield F1 of 98.76% and 99.22% for XGB (vs. 99.72% unbalanced);
//! AUC stays above 0.99 everywhere except KNN (0.90/0.92); XGB's FPR under
//! oversampling is 1.94%.

use racket_bench::{app_dataset, metrics_row, write_csv, METRICS_HEADER};
use racket_ml::Resampling;
use racketstore::app_classifier::evaluate;

fn main() {
    let ds = app_dataset();
    println!("== §7.2 ablation: class balancing for the app classifier ==\n");
    let mut rows = Vec::new();
    for (label, resampling) in [
        ("none", Resampling::None),
        ("undersample", Resampling::Undersample),
        ("oversample", Resampling::Oversample),
        ("smote", Resampling::Smote { k: 5 }),
    ] {
        println!("--- {label} ---");
        println!("{METRICS_HEADER}");
        let report = evaluate(ds, 1, resampling);
        for row in &report.table {
            println!("{}", metrics_row(row.name, &row.metrics));
            rows.push(format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                label,
                row.name,
                row.metrics.precision,
                row.metrics.recall,
                row.metrics.f1,
                row.metrics.auc,
                row.metrics.fpr
            ));
        }
        println!();
    }
    println!("paper: XGB F1 98.76% (under) / 99.22% (over); FPR 1.94% (over)");
    write_csv(
        "ablation_app.csv",
        "sampling,algorithm,precision,recall,f1,auc,fpr",
        rows,
    );
}
