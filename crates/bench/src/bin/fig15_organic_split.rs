//! Figure 15 — app suspiciousness vs. reviewed apps per worker device,
//! and the organic/dedicated split.
//!
//! Paper: of 178 worker devices, 123 (69.1%) show organic-indicative
//! behaviour (at least one app predicted personal) and 55 are
//! promotion-dedicated (every app promotion-indicative; median 31 Gmail
//! accounts, median 23 stopped apps).

use racket_bench::{device_dataset, study, write_csv};
use racket_ml::Resampling;
use racketstore::device_classifier::evaluate;

fn main() {
    let _ = study();
    let report = evaluate(device_dataset(), Resampling::Smote { k: 5 });
    let split = &report.split;
    println!("== Figure 15: worker-device usage split ==\n");
    println!(
        "{} worker devices: {} organic-indicative, {} promotion-dedicated",
        split.organic + split.dedicated,
        split.organic,
        split.dedicated
    );
    println!(
        "organic fraction: {:.1}% (paper: 69.1% = 123/178)",
        split.organic_fraction() * 100.0
    );
    println!("\nsuspiciousness distribution over worker devices:");
    let mut hist = [0usize; 5];
    for &(susp, _) in &split.points {
        let bucket = ((susp * 5.0) as usize).min(4);
        hist[bucket] += 1;
    }
    for (i, count) in hist.iter().enumerate() {
        println!(
            "  [{:.1}, {:.1}) {:>5}  {}",
            i as f64 / 5.0,
            (i + 1) as f64 / 5.0,
            count,
            "#".repeat((*count).min(60))
        );
    }
    write_csv(
        "fig15.csv",
        "suspiciousness,installed_and_reviewed",
        split.points.iter().map(|(s, r)| format!("{s:.4},{r}")),
    );
}
