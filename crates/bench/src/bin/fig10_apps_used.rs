//! Figure 10 — average apps used per day vs. apps installed, per device.
//!
//! Paper: several worker devices have more apps installed and more used
//! per day, but the cohorts overlap substantially — daily used apps alone
//! cannot separate them (organic workers blend in).

use racket_bench::{measurements, study, write_csv};
use racket_stats::Summary;
use racket_types::Cohort;

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 10: apps used per day ==\n");
    for cohort in [Cohort::Regular, Cohort::Worker] {
        let used: Vec<f64> = m
            .apps_used
            .iter()
            .filter(|p| p.cohort == cohort)
            .map(|p| p.apps_used_per_day)
            .collect();
        println!(
            "{:<8} apps used/day: {}",
            cohort.label(),
            Summary::of(&used).unwrap().paper_style()
        );
    }
    // Overlap check the paper's conclusion rests on.
    let ks = racket_stats::ks_2samp(
        &m.apps_used
            .iter()
            .filter(|p| p.cohort == Cohort::Regular)
            .map(|p| p.apps_used_per_day)
            .collect::<Vec<_>>(),
        &m.apps_used
            .iter()
            .filter(|p| p.cohort == Cohort::Worker)
            .map(|p| p.apps_used_per_day)
            .collect::<Vec<_>>(),
    );
    println!(
        "\nKS over apps-used/day: D = {:.3}, p = {:.3} — overlap keeps this feature weak alone",
        ks.statistic, ks.p_value
    );
    write_csv(
        "fig10.csv",
        "cohort,apps_used_per_day,installed",
        m.apps_used.iter().map(|p| {
            format!(
                "{},{:.3},{}",
                p.cohort.label(),
                p.apps_used_per_day,
                p.installed
            )
        }),
    );
}
