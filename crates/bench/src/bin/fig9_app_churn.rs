//! Figure 9 — app churn: daily installs vs. daily uninstalls per device.
//!
//! Paper: workers average 15.94 installs/day (M = 6.41) vs 3.88 (M = 2.0)
//! for regular users; uninstalls 7.02 vs 3.29; most regular devices churn
//! under 10 apps/day while many worker devices exceed it.

use racket_bench::{measurements, print_comparison, study, write_csv};

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 9: app churn ==\n");
    print_comparison(&m.daily_installs);
    print_comparison(&m.daily_uninstalls);
    let over_10 = |cohort| {
        m.churn
            .iter()
            .filter(|p| p.cohort == cohort && p.daily_installs > 10.0)
            .count()
    };
    println!(
        "\ndevices churning > 10 installs/day: {} worker, {} regular",
        over_10(racket_types::Cohort::Worker),
        over_10(racket_types::Cohort::Regular)
    );
    println!("paper: installs 15.94 (M 6.41) vs 3.88 (M 2.0); uninstalls 7.02 vs 3.29");
    write_csv(
        "fig9.csv",
        "cohort,daily_installs,daily_uninstalls",
        m.churn.iter().map(|p| {
            format!(
                "{},{:.3},{:.3}",
                p.cohort.label(),
                p.daily_installs,
                p.daily_uninstalls
            )
        }),
    );
}
