//! Figure 6 — installed apps, installed-and-reviewed apps, total reviews.
//!
//! Paper: 65.45 (regular) vs 77.56 (worker) installed apps — KS
//! significant, ANOVA not; 0.7 vs 40.51 installed-and-reviewed; 1.91 vs
//! 208.91 total reviews (11 worker devices above 1,000, regular max 36).

use racket_bench::{measurements, print_comparison, study, write_csv};

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 6: apps installed and reviewed ==\n");
    print_comparison(&m.installed_apps);
    print_comparison(&m.installed_and_reviewed);
    print_comparison(&m.total_reviews);
    let over_1000 = m
        .total_reviews
        .worker
        .iter()
        .filter(|&&v| v > 1000.0)
        .count();
    println!("\nworker devices with > 1,000 total reviews: {over_1000} (paper: 11)");
    println!("paper: installed 65.45 vs 77.56; reviewed 0.7 vs 40.51; totals 1.91 vs 208.91");
    let rows = m
        .total_reviews
        .regular
        .iter()
        .map(|v| format!("regular,{v}"))
        .chain(m.total_reviews.worker.iter().map(|v| format!("worker,{v}")))
        .collect::<Vec<_>>();
    write_csv("fig6_total_reviews.csv", "cohort,total_reviews", rows);
}
