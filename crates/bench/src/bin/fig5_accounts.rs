//! Figure 5 — number and types of accounts registered on devices.
//!
//! Paper: worker devices average 28.87 Gmail accounts (M = 21, max 163)
//! vs. a regular-device maximum of 10 (M = 2); regular devices register
//! ~6 service types (max 19) while worker accounts specialize in Gmail
//! plus ASO tooling (dualspace.daemon, freelancer). All three comparisons
//! significant at p < 0.05 under KS and both ANOVAs.

use racket_bench::{measurements, print_comparison, study, write_csv};

fn main() {
    let _ = study();
    let m = measurements();
    println!("== Figure 5: registered accounts ==\n");
    print_comparison(&m.gmail_accounts);
    print_comparison(&m.account_types);
    print_comparison(&m.non_gmail_accounts);
    println!("\npaper: workers 28.87 Gmail accounts (M = 21, SD = 29.37, max 163);");
    println!("       regular M = 2, SD = 1.66, max 10; regular ~6 account types.");
    let rows = m
        .gmail_accounts
        .regular
        .iter()
        .map(|v| format!("regular,{v}"))
        .chain(
            m.gmail_accounts
                .worker
                .iter()
                .map(|v| format!("worker,{v}")),
        )
        .collect::<Vec<_>>();
    write_csv("fig5_gmail.csv", "cohort,gmail_accounts", rows);
}
