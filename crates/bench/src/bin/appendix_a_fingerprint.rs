//! Appendix A — snapshot fingerprinting and install coalescing.
//!
//! Synthesizes the paper's three confusion scenarios on top of a real
//! study run — (1) two participants sharing one device, (2) one worker
//! re-installing RacketStore to be paid twice, (3) devices without an
//! Android ID — and shows the coalescing procedure recovering the true
//! device count, validated by Jaccard similarity.

use racket_bench::study;
use racket_collect::{coalesce_installs, CandidateInstall};
use racket_types::{InstallId, ParticipantId, SimDuration, TimeInterval};

fn main() {
    let out = study();
    println!("== Appendix A: snapshot fingerprinting ==\n");

    // Real candidates from the study.
    let mut candidates: Vec<CandidateInstall> = out
        .observations
        .iter()
        .map(|o| CandidateInstall::from_record(&o.record))
        .collect();
    let n_real = candidates.len();

    // Scenario 1+2: clone three devices' installs as later re-installs
    // under different participant codes (device sharing / double payment).
    let mut synthetic = 0;
    for i in 0..3.min(candidates.len()) {
        let mut dup = candidates[i].clone();
        dup.install_id = InstallId(9_000_000_000 + i as u64);
        dup.participant = ParticipantId(900_000 + i as u32);
        let shift = dup.interval.duration() + SimDuration::from_days(1);
        dup.interval = TimeInterval::new(dup.interval.end, dup.interval.end + shift);
        candidates.push(dup);
        synthetic += 1;
    }
    println!(
        "{} install records ({} real + {} synthetic repeat installs)",
        candidates.len(),
        n_real,
        synthetic
    );

    let coalesced = coalesce_installs(candidates);
    println!(
        "coalesced to {} physical devices (expected {})",
        coalesced.len(),
        n_real
    );
    assert_eq!(
        coalesced.len(),
        n_real,
        "fingerprinting must recover the fleet"
    );

    let multi: Vec<_> = coalesced.iter().filter(|d| d.installs.len() > 1).collect();
    println!("\ndevices with multiple installs: {}", multi.len());
    for d in multi.iter().take(5) {
        println!(
            "  {} installs, {} participants, {:.1} days total coverage",
            d.installs.len(),
            d.participants().len(),
            d.total_coverage().as_days()
        );
    }
    let no_android = out
        .observations
        .iter()
        .filter(|o| o.record.android_id.is_none())
        .count();
    println!("\ndevices lacking an Android ID (Jaccard fallback used): {no_android} of {n_real}");
}
