//! The `BENCH_pipeline.json` schema and its builders.
//!
//! `bench_pipeline` runs the end-to-end study at two or three fleet
//! scales and freezes each run's observability registry into a
//! [`RunReport`]; the [`BenchReport`] wrapping them is the repository's
//! machine-readable performance trajectory (schema documented in
//! `EXPERIMENTS.md`). Everything here is *derived* statistics — stage
//! wall-clock, throughput, p50/p95/p99 latencies, counter totals — never
//! raw histogram buckets, so the file stays small and diff-friendly.
//!
//! The vendored `serde_json` has no untyped `Value`; validation is a
//! round-trip parse back into these same structs ([`validate`]), which is
//! exactly what any downstream consumer of the file will do.

use racket_obs::{RegistrySnapshot, SPAN_PREFIX};
use racket_types::metrics::keys;
use racket_types::PipelineMetrics;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema identifier carried in every emitted file.
pub const SCHEMA: &str = "racketstore/bench-pipeline";
/// Current schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// Derived statistics for one pipeline stage (one `span.*` histogram).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Completed spans.
    pub count: u64,
    /// Total wall time across all spans, in seconds.
    pub wall_secs: f64,
    /// Median single-span latency, in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile single-span latency, in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile single-span latency, in milliseconds.
    pub p99_ms: f64,
}

/// One study run at one scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scale label (`test`, `mid`, `paper`).
    pub scale: String,
    /// Collection path the run used (`wire` or `direct`).
    pub path: String,
    /// Devices observed.
    pub devices: usize,
    /// Worker threads the parallel stages ran with.
    pub threads: usize,
    /// End-to-end study wall time (fleet gen + simulate + assemble), s.
    pub total_secs: f64,
    /// Snapshots ingested by the collection server.
    pub snapshots_ingested: u64,
    /// Ingestion throughput over the simulate stage, snapshots/second.
    pub snapshots_per_sec: f64,
    /// Compressed bytes uploaded over the wire path (0 on direct).
    pub bytes_compressed: u64,
    /// Every registry counter (faults, retries, dedup, ingest, …).
    pub counters: BTreeMap<String, u64>,
    /// Per-stage timing, keyed by span path (`simulate/day/lane`, …).
    pub stages: BTreeMap<String, StageReport>,
}

/// The emitted file: a schema header plus one report per run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Always [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// One entry per (scale, path) run, in execution order.
    pub runs: Vec<RunReport>,
}

impl BenchReport {
    /// A report with the current schema header and no runs yet.
    pub fn new() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            schema_version: SCHEMA_VERSION,
            runs: Vec::new(),
        }
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

/// Build one run's report from its merged registry snapshot (study
/// registry + the process-global registry holding fleet/ML spans).
pub fn run_report(
    scale: &str,
    path: &str,
    devices: usize,
    snapshot: &RegistrySnapshot,
) -> RunReport {
    let metrics = PipelineMetrics::from_snapshot(snapshot);
    let stages = snapshot
        .histograms
        .iter()
        .filter_map(|(name, hist)| {
            let stage = name.strip_prefix(SPAN_PREFIX)?;
            Some((
                stage.to_string(),
                StageReport {
                    count: hist.count,
                    wall_secs: hist.sum_secs(),
                    p50_ms: hist.quantile(0.50) / 1e6,
                    p95_ms: hist.quantile(0.95) / 1e6,
                    p99_ms: hist.quantile(0.99) / 1e6,
                },
            ))
        })
        .collect();
    RunReport {
        scale: scale.to_string(),
        path: path.to_string(),
        devices,
        threads: metrics.threads,
        total_secs: metrics.total_secs(),
        snapshots_ingested: metrics.snapshots_ingested,
        snapshots_per_sec: metrics.snapshots_per_sec(),
        bytes_compressed: metrics.bytes_compressed,
        counters: snapshot.counters.clone(),
        stages,
    }
}

/// Ingest-throughput floor the `large` run must clear (snapshots/s
/// aggregate across ≥ [`LARGE_MIN_DEVICES`] concurrent connections).
pub const LARGE_MIN_SNAPSHOTS_PER_SEC: f64 = 1_000_000.0;
/// Minimum concurrent connections for a valid `large` run.
pub const LARGE_MIN_DEVICES: usize = 10_000;
/// Ceiling on the `mid` run's total `analyze/*` wall time, in seconds.
///
/// The columnar analyze engine's performance contract: the pre-columnar
/// baseline (row-oriented split search and per-row scoring) spent 1.73 s
/// across the analyze stage group at mid scale, so holding the group
/// under 0.87 s enforces the promised ≥ 2× on every future regeneration
/// of `BENCH_pipeline.json`.
pub const MID_ANALYZE_MAX_SECS: f64 = 0.87;
/// Floor on the lockstep-detection hot path at mid scale: campaign
/// shingles folded per second of combined `campaign/shingle` +
/// `campaign/lsh` wall time (sketch rebuild, MinHash folding and LSH
/// banding — the per-event cost of running the detector over a fleet).
/// Set well below measured rates so only an order-of-magnitude
/// regression trips it.
pub const MID_CAMPAIGN_MIN_SHINGLES_PER_SEC: f64 = 250_000.0;
/// Floor on the review-text kernel at mid scale: reviews folded per
/// second of `campaign/text_rebuild` wall time (tokenize + shingle +
/// SimHash + 32-permutation MinHash per review — the full batch
/// text-sketch rebuild). The parallel rebuild measures well above this;
/// the floor trips only on an order-of-magnitude regression.
pub const MID_TEXT_MIN_REVIEWS_PER_SEC: f64 = 1_000_000.0;
/// Ceiling on the `mid` run's `simulate` stage wall time, in seconds.
///
/// The allocation-free lane engine's performance contract: the
/// pre-overhaul driver (per-day index rebuilds, fresh snapshot vectors
/// per poll, per-crawl `HashSet` rebuilds, per-day directive scans)
/// spent 4.51 s simulating the mid-scale study, so holding the stage
/// under 1.50 s enforces the promised ≥ 3× on every future regeneration
/// of `BENCH_pipeline.json`.
pub const MID_SIMULATE_MAX_SECS: f64 = 1.50;

/// Parse and sanity-check an emitted `BENCH_pipeline.json`.
///
/// Returns the parsed report, or a description of the first violation:
/// wrong schema header, no runs, a run missing one of the required
/// stages (the three top-level study stages plus the two end-of-study
/// scoring paths), or a run with zero ingestion throughput. A `large`
/// run is held to the async ingest-plane contract instead: path
/// `async`, ≥ 10⁴ devices, a nonzero `ingest` stage, and at least
/// [`LARGE_MIN_SNAPSHOTS_PER_SEC`] aggregate throughput.
pub fn validate(json: &str) -> Result<BenchReport, String> {
    let report: BenchReport =
        serde_json::from_str(json).map_err(|e| format!("not a BenchReport: {e:?}"))?;
    if report.schema != SCHEMA {
        return Err(format!("schema is `{}`, want `{SCHEMA}`", report.schema));
    }
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version is {}, want {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    if report.runs.is_empty() {
        return Err("report has no runs".to_string());
    }
    for run in &report.runs {
        if run.scale == "large" {
            if run.path != "async" {
                return Err(format!("large run has path `{}`, want `async`", run.path));
            }
            if run.devices < LARGE_MIN_DEVICES {
                return Err(format!(
                    "large run has {} devices, want >= {LARGE_MIN_DEVICES}",
                    run.devices
                ));
            }
            let s = run
                .stages
                .get("ingest")
                .ok_or_else(|| "large run is missing stage `ingest`".to_string())?;
            if s.count == 0 {
                return Err("large run stage `ingest` has count 0".to_string());
            }
            if run.snapshots_ingested == 0 {
                return Err("large run reports zero ingestion".to_string());
            }
            if run.snapshots_per_sec < LARGE_MIN_SNAPSHOTS_PER_SEC {
                return Err(format!(
                    "large run sustains {:.0} snapshots/s, below the {:.0} floor",
                    run.snapshots_per_sec, LARGE_MIN_SNAPSHOTS_PER_SEC
                ));
            }
            if run.threads == 0 {
                return Err("large run reports zero threads".to_string());
            }
            continue;
        }
        for stage in [
            keys::SPAN_FLEET_GEN,
            keys::SPAN_SIMULATE,
            keys::SPAN_ASSEMBLE,
            keys::SPAN_SCORE_BATCH,
            keys::SPAN_SCORE_STREAM,
            keys::SPAN_CAMPAIGN_INCREMENTAL,
        ] {
            let s = run
                .stages
                .get(stage)
                .ok_or_else(|| format!("run `{}` is missing stage `{stage}`", run.scale))?;
            if s.count == 0 {
                return Err(format!("run `{}` stage `{stage}` has count 0", run.scale));
            }
        }
        if run.snapshots_ingested == 0 || run.snapshots_per_sec <= 0.0 {
            return Err(format!("run `{}` reports zero ingestion", run.scale));
        }
        if run.threads == 0 {
            return Err(format!("run `{}` reports zero threads", run.scale));
        }
        // The columnar analyze engine's wall-clock contract (mid scale
        // only: the test scale is noise-dominated and paper scale is not
        // part of the default matrix).
        if run.scale == "mid" {
            let analyze_secs: f64 = run
                .stages
                .iter()
                .filter(|(name, _)| name.starts_with("analyze/"))
                .map(|(_, s)| s.wall_secs)
                .sum();
            if analyze_secs <= 0.0 {
                return Err("mid run reports no analyze/* wall time".to_string());
            }
            if analyze_secs > MID_ANALYZE_MAX_SECS {
                return Err(format!(
                    "mid run spends {analyze_secs:.3} s in analyze/*, above the \
                     {MID_ANALYZE_MAX_SECS} s columnar-engine ceiling"
                ));
            }
            // The lane engine's wall-clock contract: the simulate stage
            // (the parallel per-device day loop) must hold the ≥ 3×
            // speedup the allocation-free overhaul bought.
            let simulate_secs = run
                .stages
                .get(keys::SPAN_SIMULATE)
                .map(|s| s.wall_secs)
                .unwrap_or(0.0);
            if simulate_secs <= 0.0 {
                return Err("mid run reports no simulate wall time".to_string());
            }
            if simulate_secs > MID_SIMULATE_MAX_SECS {
                return Err(format!(
                    "mid run spends {simulate_secs:.3} s in simulate, above the \
                     {MID_SIMULATE_MAX_SECS} s lane-engine ceiling"
                ));
            }
            // The lockstep detector's hot-path contract: shingle folding
            // plus LSH banding must sustain the MinHash throughput floor
            // (the batch rebuild stamps `campaign.shingles`).
            let shingles = run
                .counters
                .get(keys::CAMPAIGN_SHINGLES)
                .copied()
                .unwrap_or(0);
            if shingles == 0 {
                return Err("mid run folded no campaign shingles".to_string());
            }
            let hot_secs: f64 = [keys::SPAN_CAMPAIGN_SHINGLE, keys::SPAN_CAMPAIGN_LSH]
                .iter()
                .filter_map(|s| run.stages.get(*s))
                .map(|s| s.wall_secs)
                .sum();
            if hot_secs <= 0.0 {
                return Err("mid run reports no campaign/* hot-path wall time".to_string());
            }
            let rate = shingles as f64 / hot_secs;
            if rate < MID_CAMPAIGN_MIN_SHINGLES_PER_SEC {
                return Err(format!(
                    "mid run's campaign hot path sustains {rate:.0} shingles/s, below \
                     the {MID_CAMPAIGN_MIN_SHINGLES_PER_SEC:.0} floor"
                ));
            }
            // The review-text kernel's throughput contract: the batch
            // text-sketch rebuild (bench_pipeline's synthetic corpus plus
            // any real rebuild volume) must sustain the reviews/s floor.
            let reviews = run.counters.get(keys::TEXT_REVIEWS).copied().unwrap_or(0);
            if reviews == 0 {
                return Err("mid run folded no text reviews".to_string());
            }
            let text_secs = run
                .stages
                .get(keys::SPAN_TEXT_REBUILD)
                .map(|s| s.wall_secs)
                .unwrap_or(0.0);
            if text_secs <= 0.0 {
                return Err("mid run reports no text_rebuild wall time".to_string());
            }
            let text_rate = reviews as f64 / text_secs;
            if text_rate < MID_TEXT_MIN_REVIEWS_PER_SEC {
                return Err(format!(
                    "mid run's text kernel sustains {text_rate:.0} reviews/s, below \
                     the {MID_TEXT_MIN_REVIEWS_PER_SEC:.0} floor"
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_obs::Registry;

    fn plausible_snapshot() -> RegistrySnapshot {
        let reg = Registry::new();
        reg.gauge_set(keys::THREADS, 4);
        reg.add(keys::SNAPSHOTS_INGESTED, 5_000);
        // Campaign hot path: 10k shingles over 20 ms = 500k/s, above floor.
        reg.add(keys::CAMPAIGN_SHINGLES, 10_000);
        reg.record(
            &format!("{SPAN_PREFIX}{}", keys::SPAN_CAMPAIGN_SHINGLE),
            10_000_000,
        );
        reg.record(
            &format!("{SPAN_PREFIX}{}", keys::SPAN_CAMPAIGN_LSH),
            10_000_000,
        );
        // Text kernel: 100k reviews over 10 ms = 10M/s, above floor.
        reg.add(keys::TEXT_REVIEWS, 100_000);
        reg.record(
            &format!("{SPAN_PREFIX}{}", keys::SPAN_TEXT_REBUILD),
            10_000_000,
        );
        for stage in [
            keys::SPAN_FLEET_GEN,
            keys::SPAN_SIMULATE,
            keys::SPAN_ASSEMBLE,
            keys::SPAN_SCORE_BATCH,
            keys::SPAN_SCORE_STREAM,
            keys::SPAN_CAMPAIGN_INCREMENTAL,
        ] {
            reg.record(&format!("{SPAN_PREFIX}{stage}"), 2_000_000_000);
        }
        reg.snapshot()
    }

    #[test]
    fn report_round_trips_and_validates() {
        let mut report = BenchReport::new();
        report
            .runs
            .push(run_report("test", "wire", 60, &plausible_snapshot()));
        let json = serde_json::to_string(&report).unwrap();
        let back = validate(&json).expect("valid report");
        assert_eq!(back, report);
        let run = &back.runs[0];
        assert_eq!(run.devices, 60);
        assert_eq!(run.threads, 4);
        assert!(run.snapshots_per_sec > 0.0);
        assert!(run.stages.contains_key("simulate"));
    }

    #[test]
    fn validate_rejects_missing_stage() {
        let mut report = BenchReport::new();
        let mut run = run_report("test", "wire", 60, &plausible_snapshot());
        run.stages.remove(keys::SPAN_SIMULATE);
        report.runs.push(run);
        let json = serde_json::to_string(&report).unwrap();
        let err = validate(&json).unwrap_err();
        assert!(err.contains("missing stage"), "{err}");
    }

    fn plausible_large_run() -> RunReport {
        let reg = Registry::new();
        reg.gauge_set(keys::THREADS, 1);
        reg.add(keys::SNAPSHOTS_INGESTED, 1_280_000);
        reg.record(&format!("{SPAN_PREFIX}ingest"), 1_000_000_000);
        let mut run = run_report("large", "async", 10_000, &reg.snapshot());
        run.snapshots_per_sec = 1_280_000.0;
        run
    }

    #[test]
    fn validate_holds_large_runs_to_the_ingest_plane_contract() {
        let mut report = BenchReport::new();
        report.runs.push(plausible_large_run());
        let json = serde_json::to_string(&report).unwrap();
        validate(&json).expect("a compliant large run validates");

        // Below the throughput floor.
        let mut slow = BenchReport::new();
        let mut run = plausible_large_run();
        run.snapshots_per_sec = 999_999.0;
        slow.runs.push(run);
        let err = validate(&serde_json::to_string(&slow).unwrap()).unwrap_err();
        assert!(err.contains("floor"), "{err}");

        // Too few connections.
        let mut small = BenchReport::new();
        let mut run = plausible_large_run();
        run.devices = 9_999;
        small.runs.push(run);
        let err = validate(&serde_json::to_string(&small).unwrap()).unwrap_err();
        assert!(err.contains("devices"), "{err}");

        // Wrong path.
        let mut wrong = BenchReport::new();
        let mut run = plausible_large_run();
        run.path = "wire".to_string();
        wrong.runs.push(run);
        let err = validate(&serde_json::to_string(&wrong).unwrap()).unwrap_err();
        assert!(err.contains("async"), "{err}");

        // Missing the ingest stage.
        let mut missing = BenchReport::new();
        let mut run = plausible_large_run();
        run.stages.remove("ingest");
        missing.runs.push(run);
        let err = validate(&serde_json::to_string(&missing).unwrap()).unwrap_err();
        assert!(err.contains("ingest"), "{err}");
    }

    #[test]
    fn validate_holds_mid_runs_to_the_analyze_ceiling() {
        // A mid run whose analyze group fits under the ceiling validates.
        let mut ok = BenchReport::new();
        ok.runs
            .push(run_report("mid", "direct", 240, &plausible_snapshot()));
        // plausible_snapshot records 2 s in each span — push the two
        // scoring stages and the simulate stage under their ceilings
        // first.
        for stage in [
            keys::SPAN_SCORE_BATCH,
            keys::SPAN_SCORE_STREAM,
            keys::SPAN_SIMULATE,
        ] {
            ok.runs[0].stages.get_mut(stage).unwrap().wall_secs = 0.05;
        }
        validate(&serde_json::to_string(&ok).unwrap()).expect("fast mid run validates");

        // The same run with a slow analyze stage is rejected.
        let mut slow = ok.clone();
        slow.runs[0]
            .stages
            .get_mut(keys::SPAN_SCORE_BATCH)
            .unwrap()
            .wall_secs = MID_ANALYZE_MAX_SECS + 1.0;
        let err = validate(&serde_json::to_string(&slow).unwrap()).unwrap_err();
        assert!(err.contains("ceiling"), "{err}");

        // Test-scale runs are exempt (noise-dominated).
        let mut test_run = BenchReport::new();
        test_run
            .runs
            .push(run_report("test", "wire", 60, &plausible_snapshot()));
        test_run.runs[0]
            .stages
            .get_mut(keys::SPAN_SCORE_BATCH)
            .unwrap()
            .wall_secs = 100.0;
        validate(&serde_json::to_string(&test_run).unwrap()).expect("test runs have no ceiling");
    }

    #[test]
    fn validate_holds_mid_runs_to_the_simulate_ceiling() {
        // A mid run with every stage under its ceiling validates.
        let mut ok = BenchReport::new();
        ok.runs
            .push(run_report("mid", "direct", 240, &plausible_snapshot()));
        for stage in [
            keys::SPAN_SCORE_BATCH,
            keys::SPAN_SCORE_STREAM,
            keys::SPAN_SIMULATE,
        ] {
            ok.runs[0].stages.get_mut(stage).unwrap().wall_secs = 0.05;
        }
        validate(&serde_json::to_string(&ok).unwrap()).expect("fast mid run validates");

        // The same run with a slow simulate stage is rejected.
        let mut slow = ok.clone();
        slow.runs[0]
            .stages
            .get_mut(keys::SPAN_SIMULATE)
            .unwrap()
            .wall_secs = MID_SIMULATE_MAX_SECS + 1.0;
        let err = validate(&serde_json::to_string(&slow).unwrap()).unwrap_err();
        assert!(err.contains("lane-engine ceiling"), "{err}");

        // Test-scale runs are exempt (noise-dominated).
        let mut test_run = BenchReport::new();
        test_run
            .runs
            .push(run_report("test", "wire", 60, &plausible_snapshot()));
        test_run.runs[0]
            .stages
            .get_mut(keys::SPAN_SIMULATE)
            .unwrap()
            .wall_secs = 100.0;
        validate(&serde_json::to_string(&test_run).unwrap()).expect("test runs have no ceiling");
    }

    #[test]
    fn validate_holds_mid_runs_to_the_text_floor() {
        let mut ok = BenchReport::new();
        ok.runs
            .push(run_report("mid", "direct", 240, &plausible_snapshot()));
        for stage in [
            keys::SPAN_SCORE_BATCH,
            keys::SPAN_SCORE_STREAM,
            keys::SPAN_SIMULATE,
        ] {
            ok.runs[0].stages.get_mut(stage).unwrap().wall_secs = 0.05;
        }
        validate(&serde_json::to_string(&ok).unwrap()).expect("fast mid run validates");

        // The same run with a crawling text kernel is rejected.
        let mut slow = ok.clone();
        slow.runs[0]
            .stages
            .get_mut(keys::SPAN_TEXT_REBUILD)
            .unwrap()
            .wall_secs = 1.0; // 100k reviews over 1 s = 100k/s, below floor
        let err = validate(&serde_json::to_string(&slow).unwrap()).unwrap_err();
        assert!(err.contains("reviews/s"), "{err}");

        // A mid run that never folded reviews is rejected outright.
        let mut none = ok.clone();
        none.runs[0].counters.remove(keys::TEXT_REVIEWS);
        let err = validate(&serde_json::to_string(&none).unwrap()).unwrap_err();
        assert!(err.contains("no text reviews"), "{err}");

        // Test-scale runs are exempt.
        let mut test_run = BenchReport::new();
        test_run
            .runs
            .push(run_report("test", "wire", 60, &plausible_snapshot()));
        test_run.runs[0].counters.remove(keys::TEXT_REVIEWS);
        validate(&serde_json::to_string(&test_run).unwrap()).expect("test runs have no floor");
    }

    #[test]
    fn validate_rejects_wrong_schema_and_empty_runs() {
        let mut report = BenchReport::new();
        report.schema = "something-else".to_string();
        let json = serde_json::to_string(&report).unwrap();
        assert!(validate(&json).unwrap_err().contains("schema"));

        let empty = serde_json::to_string(&BenchReport::new()).unwrap();
        assert!(validate(&empty).unwrap_err().contains("no runs"));

        assert!(validate("not json").is_err());
    }
}
