//! The ingest-plane benchmark behind the `large` scale: tens of
//! thousands of concurrent connections flooding the async collection
//! server, measured as aggregate snapshots ingested per wall-clock
//! second.
//!
//! Unlike the study-driven scales (`test`/`mid`/`paper`), this harness
//! does not simulate device behaviour — payload *production* (serialize,
//! LZSS, framing, CRC) is pre-computed per connection before the clock
//! starts, so the timed window measures exactly the server side of
//! ARCHITECTURE.md §8: readiness polling over the connection fleet, frame
//! decode, admission (hash → decompress → parse → dedup) and sharded
//! ingest. The window closes when every upload has been acknowledged, so
//! the reported rate is end-to-end (first byte in → last ack out), not a
//! producer-side send rate.
//!
//! The `bench_pipeline` binary runs this at two sizes:
//!
//! * [`IngestPlaneConfig::large`] — ≥ 10⁴ connections, the configuration
//!   whose `RunReport` lands in `BENCH_pipeline.json` under scale
//!   `large` (its validation floor is ≥ 1M snapshots/s aggregate);
//! * [`IngestPlaneConfig::smoke`] — a few hundred connections, run by
//!   `check.sh` (`--async-smoke`) to prove the plumbing without the
//!   throughput floor.

use racket_collect::wire::Message;
use racket_collect::{
    lzss, AsyncCollectServer, AsyncConn, AsyncServerConfig, FaultPlan, FrameCodec, ShardedIngest,
    SnapshotCollector,
};
use racket_obs::Registry;
use racket_types::metrics::keys;
use racket_types::{AppId, FastSnapshot, InstallId, ParticipantId, SimTime, Snapshot};
use std::sync::Arc;
use std::time::Instant;

/// Shape of one ingest-plane run.
#[derive(Debug, Clone, Copy)]
pub struct IngestPlaneConfig {
    /// Concurrent client connections (one install each).
    pub connections: usize,
    /// Upload files each connection sends inside the timed window. Must
    /// stay within the server's per-connection queue limit — the bench
    /// clients flood without retrying, so nothing may be shed.
    pub files_per_conn: usize,
    /// Snapshots packed into each upload file.
    pub snaps_per_file: usize,
}

impl IngestPlaneConfig {
    /// The `large` scale: 10⁴ connections, 1.28M snapshots.
    pub fn large() -> Self {
        IngestPlaneConfig {
            connections: 10_000,
            files_per_conn: 2,
            snaps_per_file: 64,
        }
    }

    /// The `check.sh` smoke shape: enough connections to exercise the
    /// reactor fleet, small enough for debug builds.
    pub fn smoke() -> Self {
        IngestPlaneConfig {
            connections: 200,
            files_per_conn: 2,
            snaps_per_file: 8,
        }
    }

    /// Total snapshots the run will ingest.
    pub fn total_snapshots(&self) -> u64 {
        (self.connections * self.files_per_conn * self.snaps_per_file) as u64
    }
}

/// What one ingest-plane run produced.
#[derive(Debug)]
pub struct IngestPlaneResult {
    /// Connections (= installs = devices) that signed in and uploaded.
    pub devices: usize,
    /// Snapshots ingested by the sharded store (must equal the config's
    /// [`IngestPlaneConfig::total_snapshots`] — zero loss, zero dups).
    pub snapshots: u64,
    /// Wall-clock length of the timed ingest window, seconds.
    pub elapsed_secs: f64,
    /// Aggregate ingest throughput over the window.
    pub snapshots_per_sec: f64,
    /// The run's private registry: the `ingest` span, server spans
    /// (`server/accept`, `server/poll`, `server/shed`) and every
    /// shed/stall/ingest counter the workers reported at shutdown.
    pub registry: Registry,
}

/// One pre-built client: a live connection plus its pre-encoded frames.
struct Client {
    conn: AsyncConn,
    codec: FrameCodec,
    /// Upload frames, ready to write (seq 1.., sign-in consumed seq 0).
    frames: Vec<Vec<u8>>,
    acks_pending: usize,
}

/// Run the ingest plane at the given shape and return the measurements.
///
/// Panics if any upload is lost, duplicated or rejected — the bench is
/// also a correctness check on the plane at fleet width.
pub fn run(cfg: IngestPlaneConfig) -> IngestPlaneResult {
    let registry = Registry::new();
    let server_cfg = AsyncServerConfig::default();
    assert!(
        cfg.files_per_conn <= server_cfg.queue_limit,
        "bench clients do not retry; the flood must fit the queue"
    );
    registry.gauge_set(keys::THREADS, server_cfg.workers.max(1) as u64);

    let participants: Vec<ParticipantId> = (0..cfg.connections)
        .map(|i| ParticipantId(100_000 + i as u32))
        .collect();
    assert!(
        cfg.connections <= 900_000,
        "participant codes are six digits"
    );
    let store = Arc::new(ShardedIngest::new(64));
    let srv = AsyncCollectServer::start(participants.clone(), Arc::clone(&store), server_cfg);

    // ---- pre-compute every client's traffic (outside the window) -------
    let mut clients: Vec<Client> = (0..cfg.connections)
        .map(|i| {
            let install = InstallId(1_000_000_000 + i as u64);
            let mut frames = Vec::with_capacity(cfg.files_per_conn);
            for f in 0..cfg.files_per_conn {
                let snaps: Vec<Vec<u8>> = (0..cfg.snaps_per_file)
                    .map(|s| {
                        SnapshotCollector::serialize(&Snapshot::Fast(FastSnapshot {
                            install_id: install,
                            participant_id: participants[i],
                            time: SimTime::from_secs((f * cfg.snaps_per_file + s) as u64 * 5),
                            foreground_app: Some(AppId(1 + (s % 7) as u32)),
                            screen_on: true,
                            battery_pct: 100 - (s % 60) as u8,
                            install_events: vec![],
                        }))
                    })
                    .collect();
                let payload = lzss::compress(&snaps.concat());
                frames.push(
                    Message::SnapshotUpload {
                        install,
                        file_id: 1 + f as u64,
                        fast: true,
                        payload,
                    }
                    .encode_seq(1 + f as u32),
                );
            }
            Client {
                conn: srv.connect(FaultPlan::none(), i as u64),
                codec: FrameCodec::strict(),
                frames,
                acks_pending: cfg.files_per_conn,
            }
        })
        .collect();

    // ---- sign-in phase (still outside the window) ----------------------
    for (i, client) in clients.iter_mut().enumerate() {
        let msg = Message::SignIn {
            participant: participants[i],
            install: InstallId(1_000_000_000 + i as u64),
        };
        client
            .conn
            .send(&msg.encode_seq(0))
            .expect("sign-in frame sends");
    }
    let mut buf = vec![0u8; 16 * 1024];
    for client in clients.iter_mut() {
        loop {
            match client.codec.try_decode_message() {
                Ok(Some(Message::SignInAck { accepted })) => {
                    assert!(accepted, "bench participants are registered");
                    break;
                }
                Ok(Some(other)) => panic!("unexpected sign-in reply {other:?}"),
                Ok(None) | Err(_) => {}
            }
            match client
                .conn
                .recv_deadline(&mut buf, std::time::Duration::from_secs(30))
            {
                Ok(0) => panic!("server closed during sign-in"),
                Ok(n) => client.codec.feed(&buf[..n]),
                Err(_) => panic!("sign-in ack timed out"),
            }
        }
    }

    // ---- the timed window: flood, then drain every ack -----------------
    let span = registry.span("ingest");
    let t0 = Instant::now();
    for client in clients.iter_mut() {
        for frame in client.frames.drain(..) {
            client.conn.send(&frame).expect("upload frame sends");
        }
    }
    let mut outstanding = clients.len();
    while outstanding > 0 {
        let mut progressed = false;
        for client in clients.iter_mut() {
            if client.acks_pending == 0 {
                continue;
            }
            while let Ok(n) = client.conn.try_recv(&mut buf) {
                if n == 0 {
                    panic!("server closed mid-flood");
                }
                client.codec.feed(&buf[..n]);
                progressed = true;
            }
            while let Ok(Some(msg)) = client.codec.try_decode_message() {
                match msg {
                    Message::UploadAck { .. } => {
                        client.acks_pending -= 1;
                        if client.acks_pending == 0 {
                            outstanding -= 1;
                        }
                    }
                    other => panic!("unexpected upload reply {other:?}"),
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    let elapsed = t0.elapsed();
    drop(span);

    let stats = srv.shutdown(&registry);
    let store = Arc::try_unwrap(store).expect("workers joined at shutdown");
    let snapshots = store.snapshots_ingested();
    registry.add(keys::SNAPSHOTS_INGESTED, snapshots);

    // Correctness gates: exactly-once, nothing shed, nothing rejected.
    assert_eq!(stats.sign_ins as usize, cfg.connections);
    assert_eq!(stats.files, (cfg.connections * cfg.files_per_conn) as u64);
    assert_eq!(stats.bad_uploads, 0, "every payload decodes");
    assert_eq!(stats.dup_files, 0, "nothing was retransmitted");
    assert_eq!(
        snapshots,
        cfg.total_snapshots(),
        "zero snapshot loss across the plane"
    );
    let shed = registry.snapshot().counter(keys::SERVER_LOAD_SHED);
    assert_eq!(shed, 0, "the flood fits the queue limit by construction");

    let elapsed_secs = elapsed.as_secs_f64();
    IngestPlaneResult {
        devices: cfg.connections,
        snapshots,
        elapsed_secs,
        snapshots_per_sec: snapshots as f64 / elapsed_secs.max(1e-9),
        registry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_plane_ingests_every_snapshot_exactly_once() {
        let cfg = IngestPlaneConfig {
            connections: 32,
            files_per_conn: 2,
            snaps_per_file: 4,
        };
        let result = run(cfg);
        assert_eq!(result.devices, 32);
        assert_eq!(result.snapshots, cfg.total_snapshots());
        assert!(result.snapshots_per_sec > 0.0);
        assert!(
            result.registry.snapshot().counter(keys::SNAPSHOTS_INGESTED) == cfg.total_snapshots()
        );
    }
}
