//! End-to-end pipeline benchmarks: fleet generation, collector sampling,
//! server ingestion and feature extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use racket_agents::{Fleet, FleetConfig};
use racket_collect::{CollectionServer, CollectorConfig, SnapshotCollector};
use racket_features::{app_features, device_features};
use racket_types::{InstallId, ParticipantId, SimTime};

fn bench_fleet_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    g.sample_size(10);
    g.bench_function("generate_60_devices", |b| {
        b.iter(|| Fleet::generate(FleetConfig::test_scale()))
    });
    g.finish();
}

fn bench_collection(c: &mut Criterion) {
    let fleet = Fleet::generate(FleetConfig::test_scale());
    let dev = &fleet.devices[0];
    let mut g = c.benchmark_group("collection");
    g.bench_function("fast_snapshot_sample", |b| {
        let mut collector = SnapshotCollector::new(
            CollectorConfig::default(),
            InstallId(1_000_000_000),
            ParticipantId(111_111),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 5;
            collector.sample_fast(&dev.device, SimTime::from_secs(t))
        })
    });
    g.bench_function("server_ingest_fast", |b| {
        let mut collector = SnapshotCollector::new(
            CollectorConfig::default(),
            InstallId(1_000_000_000),
            ParticipantId(111_111),
        );
        let snap = racket_types::Snapshot::Fast(collector.sample_fast(&dev.device, SimTime::EPOCH));
        let mut server = CollectionServer::new([ParticipantId(111_111)]);
        b.iter(|| server.ingest_snapshot(std::hint::black_box(&snap)))
    });
    g.finish();
}

fn bench_features(c: &mut Criterion) {
    // Build one observation through a tiny study.
    let out = racketstore::study::Study::new(racketstore::study::StudyConfig::test_scale()).run();
    let obs = out
        .observations
        .iter()
        .max_by_key(|o| o.record.apps.len())
        .expect("study has observations");
    let app = *obs.record.apps.keys().next().expect("device has apps");
    let mut g = c.benchmark_group("features");
    g.bench_function("app_features", |b| {
        b.iter(|| app_features(std::hint::black_box(obs), app))
    });
    g.bench_function("device_features", |b| {
        b.iter(|| device_features(std::hint::black_box(obs), 0.5))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fleet_generation,
    bench_collection,
    bench_features
);
criterion_main!(benches);
