//! Microbenchmarks for the columnar analyze engine: the presorted GBT
//! split search against the row-oriented reference, flat-matrix batch
//! scoring against per-row scoring, and the KNN distance kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racket_columnar::{sq_dist, FlatMatrix};
use racket_ml::{Classifier, GradientBoosting, GradientBoostingParams};

/// A deterministic synthetic binary dataset with mild feature/label
/// correlation and plenty of tied values (the split search's worst case
/// for tie handling, the presort's best case for reuse).
fn dataset(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..n {
        let mut row = Vec::with_capacity(d);
        for f in 0..d {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Quantized values: ~16 distinct levels per feature.
            let v = ((s >> 33) % 16) as f64 + (f as f64) * 0.01;
            row.push(v);
        }
        let label = u8::from(row[0] + row[1 % d] > 15.0);
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        y.push(if (s >> 40).is_multiple_of(10) {
            1 - label
        } else {
            label
        });
        x.push(row);
        let _ = i;
    }
    (x, y)
}

fn bench_gbt_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("columnar/gbt_fit");
    g.sample_size(10);
    for &n in &[500usize, 2000] {
        let (x, y) = dataset(n, 14);
        g.bench_with_input(BenchmarkId::new("presorted", n), &n, |b, _| {
            b.iter(|| {
                let mut m = GradientBoosting::new(GradientBoostingParams::default());
                m.fit(std::hint::black_box(&x), std::hint::black_box(&y));
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("row_reference", n), &n, |b, _| {
            b.iter(|| {
                let mut m = GradientBoosting::new(GradientBoostingParams::default());
                m.fit_reference(std::hint::black_box(&x), std::hint::black_box(&y));
                m
            })
        });
    }
    g.finish();
}

fn bench_batch_scoring(c: &mut Criterion) {
    let (x, y) = dataset(2000, 14);
    let mut m = GradientBoosting::new(GradientBoostingParams::default());
    m.fit(&x, &y);
    let model = racket_ml::Model::Xgb(m);
    let flat = FlatMatrix::from_rows(&x);
    let mut g = c.benchmark_group("columnar/score");
    g.bench_function("batch_2000", |b| {
        b.iter(|| model.score_batch(std::hint::black_box(&flat)))
    });
    g.bench_function("per_row_2000", |b| {
        b.iter(|| {
            x.iter()
                .map(|r| model.score(std::hint::black_box(r)))
                .collect::<Vec<f64>>()
        })
    });
    g.finish();
}

fn bench_knn_kernel(c: &mut Criterion) {
    let (x, _) = dataset(512, 14);
    let flat = FlatMatrix::from_rows(&x);
    let probe = x[0].clone();
    let mut g = c.benchmark_group("columnar/knn");
    g.bench_function("sq_dist_flat_512", |b| {
        b.iter(|| {
            flat.rows()
                .map(|r| sq_dist(std::hint::black_box(&probe), r))
                .sum::<f64>()
        })
    });
    g.bench_function("sq_dist_nested_512", |b| {
        b.iter(|| {
            x.iter()
                .map(|r| sq_dist(std::hint::black_box(&probe), r))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gbt_fit,
    bench_batch_scoring,
    bench_knn_kernel
);
criterion_main!(benches);
