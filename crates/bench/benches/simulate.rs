//! Microbenchmarks for the simulator hot path: the allocation-free lane
//! engine's kernels benchmarked next to the allocating baselines they
//! replaced, so the EXPERIMENTS.md before/after table can be regenerated
//! from one run.
//!
//! * `simulate/plan_day` — `plan_day_into` (reused [`LaneScratch`],
//!   incremental app indexes) vs the allocating `plan_day` wrapper
//!   (fresh scratch + full index rebuild per call, the pre-overhaul
//!   per-day cost);
//! * `simulate/poll` — steady-state `poll_into` into a pooled
//!   [`SnapshotBatch`] vs `poll` returning fresh vectors per call;
//! * `simulate/lzss` — the u64 wide-compare match loop vs the
//!   byte-at-a-time scalar reference on snapshot-like input.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racket_agents::{DeviceAgent, IdAllocator, LaneScratch};
use racket_collect::collector::{CollectorConfig, SnapshotBatch, SnapshotCollector};
use racket_collect::lzss;
use racket_playstore::{AppCatalog, CatalogConfig, GoogleIdDirectory, ReviewStore};
use racket_types::{AndroidId, DeviceId, InstallId, ParticipantId, Persona, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A monitored-study device with realistic history: the input every lane
/// kernel below operates on.
fn study_device() -> (racket_device::Device, DeviceAgent, AppCatalog) {
    let catalog = AppCatalog::generate(&CatalogConfig::default());
    let mut store = ReviewStore::new();
    let mut directory = GoogleIdDirectory::new();
    let mut ids = IdAllocator::default();
    let mut rng = StdRng::seed_from_u64(42);
    let mut device = racket_device::Device::new(
        DeviceId(1),
        racket_device::DeviceModel::generic(),
        AndroidId(1),
    );
    let mut agent = DeviceAgent::new(Persona::OrganicWorker, &mut rng);
    agent.setup_history(
        &mut device,
        &catalog,
        &mut store,
        &mut directory,
        &mut ids,
        SimTime::from_days(30),
        SimTime::from_days(120),
        &mut rng,
    );
    (device, agent, catalog)
}

fn bench_plan_day(c: &mut Criterion) {
    let (device, mut agent, catalog) = study_device();
    let day_start = SimTime::from_days(30);
    let horizon = SimTime::from_days(120);
    let mut g = c.benchmark_group("simulate/plan_day");
    g.bench_function("scratch_reuse", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = LaneScratch::new();
        scratch.seed_indexes(&device, &catalog, Persona::OrganicWorker);
        b.iter(|| {
            agent.plan_day_into(
                &device,
                &catalog,
                day_start,
                horizon,
                &mut rng,
                &mut scratch,
            );
            scratch.actions.len()
        });
    });
    g.bench_function("alloc_per_day", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            agent
                .plan_day(&device, &catalog, day_start, horizon, &mut rng)
                .len()
        });
    });
    g.finish();
}

fn bench_poll(c: &mut Criterion) {
    let (device, _, _) = study_device();
    // One planning day of 5 s fast ticks, sampled in action-sized slices —
    // the steady state (no package churn between polls, so the stamp
    // fast-path holds and the pooled buffers are in charge).
    const SLICES: u64 = 200;
    const SLICE_SECS: u64 = 90;
    let t0 = SimTime::from_days(30);
    let mut g = c.benchmark_group("simulate/poll");
    g.throughput(Throughput::Elements(SLICES));
    g.bench_function("pooled_batch", |b| {
        let mut batch = SnapshotBatch::new();
        b.iter(|| {
            let mut collector =
                SnapshotCollector::new(CollectorConfig::default(), InstallId(1), ParticipantId(1));
            let mut n = 0usize;
            for s in 0..SLICES {
                let now = SimTime::from_secs(t0.as_secs() + (s + 1) * SLICE_SECS);
                batch.clear();
                collector.poll_into(&device, now, &mut batch);
                n += batch.len();
            }
            n
        });
    });
    g.bench_function("alloc_per_poll", |b| {
        b.iter(|| {
            let mut collector =
                SnapshotCollector::new(CollectorConfig::default(), InstallId(1), ParticipantId(1));
            let mut n = 0usize;
            for s in 0..SLICES {
                let now = SimTime::from_secs(t0.as_secs() + (s + 1) * SLICE_SECS);
                n += collector.poll(&device, now).len();
            }
            n
        });
    });
    g.finish();
}

fn bench_lzss(c: &mut Criterion) {
    // Snapshot-like input: repetitive record framing with varying ids —
    // the accumulation-file shape the codec actually compresses.
    let mut data = Vec::new();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    while data.len() < 256 * 1024 {
        x = x.wrapping_mul(0xd129_0be1_5f0d_3db7).rotate_left(23);
        data.extend_from_slice(b"snap|install=");
        data.extend_from_slice(&(x as u32).to_le_bytes());
        data.extend_from_slice(b"|screen=on|battery=087|events=[]");
    }
    let mut g = c.benchmark_group("simulate/lzss");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("wide_compare", |b| {
        let mut ws = lzss::Workspace::new();
        let mut out = Vec::new();
        b.iter(|| {
            ws.compress_into(&data, &mut out);
            out.len()
        });
    });
    g.bench_function("scalar_reference", |b| {
        let mut ws = lzss::Workspace::new();
        let mut out = Vec::new();
        b.iter(|| {
            ws.compress_into_scalar(&data, &mut out);
            out.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_plan_day, bench_poll, bench_lzss);
criterion_main!(benches);
