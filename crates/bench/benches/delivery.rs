//! Microbenchmarks for the delivery fast-path kernels: the binary
//! snapshot codec, the pooled LZSS workspace, the table-driven checksums
//! and the zero-copy frame encoder. Each pooled/table-driven kernel is
//! benchmarked next to the allocation-per-call (or JSON) baseline it
//! replaced, so the EXPERIMENTS.md before/after table can be regenerated
//! from one run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use racket_collect::collector::SnapshotCollector;
use racket_collect::wire::{self, Message};
use racket_collect::{crc32, lzss, sha256};
use racket_types::{
    ApkHash, AppId, FastSnapshot, InstallDelta, InstallId, InstalledApp, ParticipantId,
    PermissionProfile, SimTime, Snapshot,
};

fn fast_snapshot(t: u64) -> Snapshot {
    Snapshot::Fast(FastSnapshot {
        install_id: InstallId(1_234_567_890),
        participant_id: ParticipantId(123_456),
        time: SimTime::from_secs(t),
        foreground_app: Some(AppId(42)),
        screen_on: true,
        battery_pct: 87,
        install_events: if t.is_multiple_of(60) {
            vec![InstallDelta::Installed(InstalledApp::fresh(
                AppId((t / 60) as u32),
                SimTime::from_secs(t),
                PermissionProfile::default(),
                ApkHash([t as u8; 16]),
            ))]
        } else {
            Vec::new()
        },
    })
}

/// An accumulation-file-sized batch of fast snapshots (one per 5 s tick).
fn snapshot_batch() -> Vec<Snapshot> {
    (0..1_000).map(|i| fast_snapshot(i * 5)).collect()
}

fn bench_serialize(c: &mut Criterion) {
    let snaps = snapshot_batch();
    let mut g = c.benchmark_group("delivery/serialize");
    g.throughput(Throughput::Elements(snaps.len() as u64));
    g.bench_function("binary_pooled", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            for s in &snaps {
                SnapshotCollector::serialize_into(std::hint::black_box(s), &mut out);
            }
            out.len()
        })
    });
    g.bench_function("json_baseline", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for s in &snaps {
                out.extend_from_slice(&serde_json::to_vec(std::hint::black_box(s)).unwrap());
                out.push(b'\n');
            }
            out.len()
        })
    });
    g.finish();

    // Decode side: one encoded file, parsed back to snapshots.
    let mut file = Vec::new();
    for s in &snaps {
        SnapshotCollector::serialize_into(s, &mut file);
    }
    let mut json_file = Vec::new();
    for s in &snaps {
        json_file.extend_from_slice(&serde_json::to_vec(s).unwrap());
        json_file.push(b'\n');
    }
    let mut g = c.benchmark_group("delivery/deserialize");
    g.throughput(Throughput::Elements(snaps.len() as u64));
    g.bench_function("binary", |b| {
        b.iter(|| SnapshotCollector::deserialize_file(std::hint::black_box(&file)).unwrap())
    });
    g.bench_function("json_baseline", |b| {
        b.iter(|| SnapshotCollector::deserialize_file(std::hint::black_box(&json_file)).unwrap())
    });
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let snaps = snapshot_batch();
    let mut data = Vec::new();
    for s in &snaps {
        SnapshotCollector::serialize_into(s, &mut data);
    }
    let mut g = c.benchmark_group("delivery/compress");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("workspace_pooled", |b| {
        let mut ws = lzss::Workspace::new();
        let mut out = Vec::new();
        b.iter(|| {
            ws.compress_into(std::hint::black_box(&data), &mut out);
            out.len()
        })
    });
    g.bench_function("fresh_state_baseline", |b| {
        b.iter(|| lzss::compress(std::hint::black_box(&data)).len())
    });
    g.finish();
}

fn bench_checksums(c: &mut Criterion) {
    let snaps = snapshot_batch();
    let mut data = Vec::new();
    for s in &snaps {
        SnapshotCollector::serialize_into(s, &mut data);
    }
    let mut g = c.benchmark_group("delivery/checksum");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("crc32_slice8", |b| {
        b.iter(|| crc32(std::hint::black_box(&data)))
    });
    g.bench_function("sha256_unrolled", |b| {
        b.iter(|| sha256(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_frame(c: &mut Criterion) {
    let payload = lzss::compress(&{
        let snaps = snapshot_batch();
        let mut data = Vec::new();
        for s in &snaps {
            SnapshotCollector::serialize_into(s, &mut data);
        }
        data
    });
    let msg = Message::SnapshotUpload {
        install: InstallId(1_234_567_890),
        file_id: 7,
        fast: true,
        payload: payload.clone(),
    };
    let mut g = c.benchmark_group("delivery/frame");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("encode_pooled_borrowed", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            wire::encode_upload_into(
                7,
                InstallId(1_234_567_890),
                7,
                true,
                std::hint::black_box(&payload),
                &mut out,
            );
            out.len()
        })
    });
    g.bench_function("encode_owned_baseline", |b| {
        b.iter(|| std::hint::black_box(&msg).encode_seq(7).len())
    });
    g.finish();
}

criterion_group!(
    delivery,
    bench_serialize,
    bench_compress,
    bench_checksums,
    bench_frame
);
criterion_main!(delivery);
