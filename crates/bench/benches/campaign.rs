//! Microbenchmarks for the lockstep-detection hot path: shingle packing,
//! MinHash signature folding/merging, LSH candidate generation, and the
//! full `detect` kernel over a synthetic fleet of sketches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racket_campaign::{detect, CampaignSketch, DetectorConfig, LshParams, MinHash, ShingleParams};
use racket_columnar::shingle_set;
use racket_types::{AppId, InstallId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic device event stream: `n` install events over a two-week
/// window, drawn from an app universe of 4k.
fn device_events(seed: u64, n: usize) -> (Vec<u32>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let apps: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4_000)).collect();
    let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..14 * 86_400)).collect();
    (apps, times)
}

fn bench_shingle(c: &mut Criterion) {
    let (apps, times) = device_events(1, 10_000);
    let mut g = c.benchmark_group("campaign_shingle");
    g.throughput(Throughput::Elements(apps.len() as u64));
    g.bench_function("pack_10k_events", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            shingle_set(
                std::hint::black_box(&apps),
                std::hint::black_box(&times),
                21_600,
                &mut out,
            );
            out.len()
        })
    });
    g.finish();
}

fn bench_minhash(c: &mut Criterion) {
    let (apps, times) = device_events(2, 10_000);
    let mut shingles = Vec::new();
    shingle_set(&apps, &times, 21_600, &mut shingles);
    let mut g = c.benchmark_group("campaign_minhash");
    g.throughput(Throughput::Elements(shingles.len() as u64));
    for k in [64usize, 128] {
        g.bench_with_input(BenchmarkId::new("fold", k), &k, |b, &k| {
            b.iter(|| {
                let mut mh = MinHash::empty(k);
                for &s in std::hint::black_box(&shingles) {
                    mh.observe(s);
                }
                mh
            })
        });
    }
    let a = {
        let mut mh = MinHash::empty(128);
        shingles.iter().for_each(|&s| mh.observe(s));
        mh
    };
    g.bench_function("merge_128", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(std::hint::black_box(&a));
            m
        })
    });
    g.finish();
}

/// A fleet of sketches: `n` devices with ~120 organic events each, plus a
/// planted 10-device lockstep cluster hitting 4 shared apps in one bucket.
fn fleet_sketches(n: usize) -> Vec<(InstallId, CampaignSketch)> {
    let params = ShingleParams::default();
    (0..n)
        .map(|i| {
            let mut sk = CampaignSketch::new(params);
            let (apps, times) = device_events(100 + i as u64, 120);
            for (&a, &t) in apps.iter().zip(&times) {
                sk.observe(AppId(a), SimTime::from_secs(t));
            }
            if i < 10 {
                for a in 0..4u32 {
                    sk.observe(
                        AppId(9_000 + a),
                        SimTime::from_secs(3 * 86_400 + 60 * i as u64),
                    );
                }
            }
            (InstallId(1_000_000_000 + i as u64), sk)
        })
        .collect()
}

fn bench_lsh_and_detect(c: &mut Criterion) {
    let sketches = fleet_sketches(800);
    let refs: Vec<(InstallId, &CampaignSketch)> = sketches.iter().map(|(id, s)| (*id, s)).collect();
    let sigs: Vec<&[u64]> = sketches.iter().map(|(_, s)| s.signature()).collect();
    let mut g = c.benchmark_group("campaign_lsh");
    g.throughput(Throughput::Elements(sigs.len() as u64));
    g.bench_function("candidate_pairs_800", |b| {
        b.iter(|| {
            racket_campaign::lsh::candidate_pairs(
                std::hint::black_box(&sigs),
                &LshParams::default(),
            )
        })
    });
    g.bench_function("detect_800", |b| {
        b.iter(|| {
            detect(
                std::hint::black_box(&refs),
                &DetectorConfig::default(),
                None,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shingle, bench_minhash, bench_lsh_and_detect);
criterion_main!(benches);
