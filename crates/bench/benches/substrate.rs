//! Microbenchmarks for the substrate crates: hashes, compression, wire
//! codec, statistics and the ML learners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racket_collect::wire::{FrameCodec, Message};
use racket_collect::{crc32, md5, sha256};
use racket_ml::{
    Classifier, DecisionTree, DecisionTreeParams, GradientBoosting, GradientBoostingParams,
    KNearestNeighbors, RandomForest, RandomForestParams,
};
use racket_types::InstallId;

/// A snapshot-file-like payload: repetitive JSON lines.
fn snapshot_payload(n_lines: usize) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..n_lines {
        data.extend_from_slice(
            format!(
                "{{\"install_id\":1234567890,\"time\":{},\"foreground_app\":\"app-42\",\
                 \"screen_on\":true,\"battery_pct\":87}}\n",
                i * 5
            )
            .as_bytes(),
        );
    }
    data
}

fn bench_hashes(c: &mut Criterion) {
    let data = snapshot_payload(600); // ~64 KiB
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_64k", |b| {
        b.iter(|| sha256(std::hint::black_box(&data)))
    });
    g.bench_function("md5_64k", |b| b.iter(|| md5(std::hint::black_box(&data))));
    g.bench_function("crc32_64k", |b| {
        b.iter(|| crc32(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_lzss(c: &mut Criterion) {
    let data = snapshot_payload(600);
    let compressed = racket_collect::lzss::compress(&data);
    let mut g = c.benchmark_group("lzss");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_64k", |b| {
        b.iter(|| racket_collect::lzss::compress(std::hint::black_box(&data)))
    });
    g.bench_function("decompress_64k", |b| {
        b.iter(|| racket_collect::lzss::decompress(std::hint::black_box(&compressed)).unwrap())
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let msg = Message::SnapshotUpload {
        install: InstallId(1_234_567_890),
        file_id: 7,
        fast: true,
        payload: racket_collect::lzss::compress(&snapshot_payload(600)),
    };
    let encoded = msg.encode();
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_upload", |b| {
        b.iter(|| std::hint::black_box(&msg).encode())
    });
    g.bench_function("decode_upload", |b| {
        b.iter(|| {
            let mut codec = FrameCodec::new();
            codec.feed(std::hint::black_box(&encoded));
            codec.try_decode_message().unwrap().unwrap()
        })
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let a: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
    let b2: Vec<f64> = (0..1000)
        .map(|i| (i as f64 * 0.3).cos() * 12.0 + 1.0)
        .collect();
    let mut g = c.benchmark_group("stats");
    g.bench_function("ks_2samp_1k", |bch| {
        bch.iter(|| racket_stats::ks_2samp(std::hint::black_box(&a), std::hint::black_box(&b2)))
    });
    g.bench_function("kruskal_wallis_1k", |bch| {
        bch.iter(|| racket_stats::kruskal_wallis(&[std::hint::black_box(&a), &b2]))
    });
    g.bench_function("shapiro_wilk_1k", |bch| {
        bch.iter(|| racket_stats::shapiro_wilk(std::hint::black_box(&a)))
    });
    g.finish();
}

fn ml_data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = u8::from(i % 2 == 1);
        let row: Vec<f64> = (0..d)
            .map(|j| ((i * 31 + j * 7) % 97) as f64 / 10.0 + f64::from(label) * (j % 3) as f64)
            .collect();
        x.push(row);
        y.push(label);
    }
    (x, y)
}

fn bench_ml(c: &mut Criterion) {
    let (x, y) = ml_data(1000, 20);
    let mut g = c.benchmark_group("ml_fit");
    g.sample_size(10);
    g.bench_function("tree_1000x20", |b| {
        b.iter(|| {
            let mut t = DecisionTree::new(DecisionTreeParams::default());
            t.fit(std::hint::black_box(&x), &y);
            t
        })
    });
    g.bench_function("forest25_1000x20", |b| {
        b.iter(|| {
            let mut f = RandomForest::new(RandomForestParams {
                n_trees: 25,
                ..RandomForestParams::default()
            });
            f.fit(std::hint::black_box(&x), &y);
            f
        })
    });
    g.bench_function("gbt50_1000x20", |b| {
        b.iter(|| {
            let mut m = GradientBoosting::new(GradientBoostingParams {
                n_rounds: 50,
                ..GradientBoostingParams::default()
            });
            m.fit(std::hint::black_box(&x), &y);
            m
        })
    });
    g.finish();

    let mut knn = KNearestNeighbors::paper_default();
    knn.fit(&x, &y);
    let mut g = c.benchmark_group("ml_predict");
    g.bench_for_each_input(&knn, &x);
    g.finish();
}

/// Extension helper: benchmark one KNN query against the fitted model.
trait BenchExt {
    fn bench_for_each_input(&mut self, knn: &KNearestNeighbors, x: &[Vec<f64>]);
}

impl BenchExt for criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    fn bench_for_each_input(&mut self, knn: &KNearestNeighbors, x: &[Vec<f64>]) {
        self.bench_with_input(BenchmarkId::new("knn_query", x.len()), &x[0], |b, row| {
            b.iter(|| knn.predict_proba(std::hint::black_box(row)))
        });
    }
}

criterion_group!(
    benches,
    bench_hashes,
    bench_lzss,
    bench_wire,
    bench_stats,
    bench_ml
);
criterion_main!(benches);
