//! Property tests for the delivery fast-path kernels.
//!
//! * The binary snapshot codec must round-trip *every* representable
//!   snapshot and agree with the serde model it replaced (the same struct
//!   encoded as legacy JSON lines must decode to the same value).
//! * A reused LZSS workspace must be a pure optimization: its output is
//!   byte-for-byte the output of a fresh compressor.
//! * `deserialize_file` must reject truncated or corrupted input — both
//!   binary and legacy JSON — with an error, never a panic.

use proptest::prelude::*;
use racket_collect::collector::SnapshotCollector;
use racket_collect::lzss;
use racket_types::{
    AccountId, AccountService, AndroidId, ApkHash, AppId, FastSnapshot, GoogleId, InstallDelta,
    InstallId, InstalledApp, ParticipantId, Permission, PermissionProfile, Rating,
    RegisteredAccount, ReviewEvent, SimTime, SlowSnapshot, Snapshot,
};

fn permission() -> impl Strategy<Value = Permission> {
    (0..Permission::ALL.len()).prop_map(|i| Permission::ALL[i])
}

fn profile() -> impl Strategy<Value = PermissionProfile> {
    (
        proptest::collection::vec(permission(), 0..8),
        proptest::collection::vec(permission(), 0..4),
        proptest::collection::vec(permission(), 0..4),
    )
        .prop_map(|(requested, granted, denied)| PermissionProfile {
            requested,
            granted,
            denied,
        })
}

fn option_u64() -> impl Strategy<Value = Option<u64>> {
    (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
}

fn option_u32() -> impl Strategy<Value = Option<u32>> {
    (any::<bool>(), any::<u32>()).prop_map(|(some, v)| some.then_some(v))
}

fn installed_app() -> impl Strategy<Value = InstalledApp> {
    (
        (any::<u32>(), any::<u64>(), any::<u64>()),
        (profile(), any::<[u8; 16]>()),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((app, install_time, last_update), (permissions, hash), (stopped, preinstalled))| {
                InstalledApp {
                    app: AppId(app),
                    install_time: SimTime::from_secs(install_time),
                    last_update: SimTime::from_secs(last_update),
                    permissions,
                    apk_hash: ApkHash(hash),
                    stopped,
                    preinstalled,
                }
            },
        )
}

fn install_delta() -> impl Strategy<Value = InstallDelta> {
    prop_oneof![
        installed_app().prop_map(InstallDelta::Installed),
        any::<u32>().prop_map(|app| InstallDelta::Uninstalled { app: AppId(app) }),
    ]
}

fn account_service() -> impl Strategy<Value = AccountService> {
    (0usize..8, any::<u16>()).prop_map(|(pick, other)| match pick {
        0 => AccountService::Gmail,
        1 => AccountService::WhatsApp,
        2 => AccountService::Facebook,
        3 => AccountService::TikTok,
        4 => AccountService::DualSpace,
        5 => AccountService::Freelancer,
        6 => AccountService::Easypaisa,
        _ => AccountService::Other(other),
    })
}

fn account() -> impl Strategy<Value = RegisteredAccount> {
    (any::<u64>(), account_service(), option_u64()).prop_map(|(id, service, google_id)| {
        RegisteredAccount {
            id: AccountId(id),
            service,
            google_id: google_id.map(GoogleId),
        }
    })
}

fn review_event() -> impl Strategy<Value = ReviewEvent> {
    (
        (any::<u32>(), any::<u64>(), any::<u64>(), 1u8..=5),
        proptest::collection::vec(any::<u8>(), 0..16),
    )
        .prop_map(|((app, reviewer, time, stars), text)| ReviewEvent {
            app: AppId(app),
            reviewer: GoogleId(reviewer),
            time: SimTime::from_secs(time),
            rating: Rating::new(stars).expect("stars in 1..=5"),
            // Printable ASCII with occasional multi-byte UTF-8, so the
            // codec's length prefix counts bytes, not chars.
            text: text
                .into_iter()
                .map(|b| {
                    if b >= 240 {
                        'é'
                    } else {
                        char::from(32 + b % 95)
                    }
                })
                .collect(),
        })
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    let fast = (
        (any::<u64>(), any::<u32>(), any::<u64>()),
        (option_u32(), any::<bool>(), any::<u8>()),
        proptest::collection::vec(install_delta(), 0..5),
    )
        .prop_map(
            |((install, participant, time), (fg, screen_on, battery_pct), install_events)| {
                Snapshot::Fast(FastSnapshot {
                    install_id: InstallId(install),
                    participant_id: ParticipantId(participant),
                    time: SimTime::from_secs(time),
                    foreground_app: fg.map(AppId),
                    screen_on,
                    battery_pct,
                    install_events,
                })
            },
        );
    let slow = (
        (any::<u64>(), any::<u32>(), option_u64(), any::<u64>()),
        proptest::collection::vec(account(), 0..5),
        any::<bool>(),
        proptest::collection::vec(any::<u32>(), 0..8),
        proptest::collection::vec(review_event(), 0..4),
    )
        .prop_map(
            |((install, participant, android, time), accounts, save_mode, stopped, reviews)| {
                Snapshot::Slow(SlowSnapshot {
                    install_id: InstallId(install),
                    participant_id: ParticipantId(participant),
                    android_id: android.map(AndroidId),
                    time: SimTime::from_secs(time),
                    accounts,
                    save_mode,
                    stopped_apps: stopped.into_iter().map(AppId).collect(),
                    review_events: reviews,
                })
            },
        );
    prop_oneof![fast, slow]
}

proptest! {
    /// Binary encode → decode is the identity on any snapshot sequence.
    #[test]
    fn binary_codec_round_trips(snaps in proptest::collection::vec(snapshot(), 0..12)) {
        let mut file = Vec::new();
        for s in &snaps {
            SnapshotCollector::serialize_into(s, &mut file);
        }
        let decoded = SnapshotCollector::deserialize_file(&file).expect("round trip");
        prop_assert_eq!(decoded, snaps);
    }

    /// The binary codec agrees with the serde data model it replaced: the
    /// same snapshots shipped as legacy JSON lines decode to the same
    /// values as the binary encoding.
    #[test]
    fn binary_codec_agrees_with_serde_baseline(
        snaps in proptest::collection::vec(snapshot(), 1..8)
    ) {
        let mut binary = Vec::new();
        let mut json = Vec::new();
        for s in &snaps {
            SnapshotCollector::serialize_into(s, &mut binary);
            json.extend_from_slice(&serde_json::to_vec(s).expect("serde encode"));
            json.push(b'\n');
        }
        let from_binary = SnapshotCollector::deserialize_file(&binary).expect("binary");
        let from_json = SnapshotCollector::deserialize_file(&json).expect("legacy json");
        prop_assert_eq!(from_binary, from_json);
    }

    /// Workspace reuse is invisible in the output: compressing through a
    /// workspace dirtied by unrelated inputs yields bytes identical to a
    /// fresh compressor's, and both decompress back to the input.
    #[test]
    fn reused_workspace_output_is_byte_identical(
        inputs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..2_048), 1..6
        )
    ) {
        let mut ws = lzss::Workspace::new();
        for data in &inputs {
            let pooled = ws.compress(data);
            let fresh = lzss::compress(data);
            prop_assert_eq!(&pooled, &fresh);
            prop_assert_eq!(&lzss::decompress(&pooled).expect("round trip"), data);
        }
    }

    /// The u64-wide match loop is a pure speedup: on arbitrary input the
    /// wide compressor's stream is byte-identical to the scalar
    /// reference's, and decompresses back to the input.
    #[test]
    fn wide_compare_compressor_matches_scalar_reference(
        data in proptest::collection::vec(any::<u8>(), 0..4_096)
    ) {
        let mut wide_out = Vec::new();
        let mut scalar_out = Vec::new();
        lzss::Workspace::new().compress_into(&data, &mut wide_out);
        lzss::Workspace::new().compress_into_scalar(&data, &mut scalar_out);
        prop_assert_eq!(&wide_out, &scalar_out);
        prop_assert_eq!(&lzss::decompress(&wide_out).expect("round trip"), &data);
    }

    /// Same property on the adversarial-for-LZSS case: highly repetitive
    /// input built from a few symbols, where long overlapping matches and
    /// the lazy-matching peek dominate (this also drives the doubling
    /// overlapped-copy path in `decompress_into`).
    #[test]
    fn wide_compare_matches_scalar_on_repetitive_input(
        motif in proptest::collection::vec(0u8..4, 1..24),
        reps in 1usize..400,
    ) {
        let data: Vec<u8> = motif.iter().copied().cycle().take(motif.len() * reps).collect();
        let mut wide_out = Vec::new();
        let mut scalar_out = Vec::new();
        lzss::Workspace::new().compress_into(&data, &mut wide_out);
        lzss::Workspace::new().compress_into_scalar(&data, &mut scalar_out);
        prop_assert_eq!(&wide_out, &scalar_out);
        prop_assert_eq!(&lzss::decompress(&wide_out).expect("round trip"), &data);
    }

    /// Truncating a valid binary file anywhere inside a record must error,
    /// never panic. (Cuts at record boundaries are valid shorter files —
    /// including the boundary between a slow record's base body and its
    /// optional trailing review section, which decodes as a review-less
    /// record.)
    #[test]
    fn truncated_binary_errors_without_panic(
        snaps in proptest::collection::vec(snapshot(), 1..4),
        frac in 0.0f64..1.0,
    ) {
        let mut file = Vec::new();
        let mut boundaries = vec![0usize];
        for s in &snaps {
            if let Snapshot::Slow(slow) = s {
                if !slow.review_events.is_empty() {
                    // The review section is a backward-compatible suffix:
                    // cutting exactly where the base body ends yields a
                    // valid review-less record.
                    let mut stripped = slow.clone();
                    stripped.review_events.clear();
                    let mut base = Vec::new();
                    SnapshotCollector::serialize_into(&Snapshot::Slow(stripped), &mut base);
                    boundaries.push(file.len() + base.len());
                }
            }
            SnapshotCollector::serialize_into(s, &mut file);
            boundaries.push(file.len());
        }
        let cut = ((file.len() as f64) * frac) as usize;
        let result = SnapshotCollector::deserialize_file(&file[..cut]);
        if boundaries.contains(&cut) {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }

    /// Arbitrary garbage — random bytes under either format sniff — must
    /// decode to `Ok` (if it happens to be valid) or `Err`, never panic.
    #[test]
    fn garbage_input_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SnapshotCollector::deserialize_file(&data);
        // Force the binary path too, whatever the first byte was.
        let mut tagged = vec![racket_collect::codec::TAG_BINARY_V1];
        tagged.extend_from_slice(&data);
        let _ = SnapshotCollector::deserialize_file(&tagged);
        // And the legacy JSON path.
        let mut json = vec![b'{'];
        json.extend_from_slice(&data);
        let _ = SnapshotCollector::deserialize_file(&json);
    }
}
