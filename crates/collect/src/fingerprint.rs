//! Snapshot fingerprinting and install coalescing (Appendix A).
//!
//! One physical device can be behind several RacketStore installs —
//! workers share devices across participant identities, re-install to get
//! paid twice, and some device models don't report an Android ID. The
//! paper's procedure, reproduced here:
//!
//! 1. group snapshots into candidate installs by install ID (already done
//!    by the server's per-install records);
//! 2. install pairs with **overlapping** install intervals are *different*
//!    devices (one app instance per device at a time);
//! 3. non-overlapping pairs with the **same Android ID** are the same
//!    device; with **different** Android IDs, different devices;
//! 4. when Android IDs are missing, fall back to Jaccard similarity over
//!    the `(app, install time)` tuple sets and the registered-account
//!    sets — the paper found different-device pairs stay ≤ 0.5625 on apps,
//!    and account similarity > 0.53 implies the same device.

use crate::server::InstallRecord;
use racket_stats::jaccard;
use racket_types::{AccountId, AndroidId, AppId, InstallId, ParticipantId, SimTime, TimeInterval};
use std::collections::HashSet;

/// Jaccard threshold on (app, install-time) sets above which two
/// Android-ID-less installs are considered the same device (Appendix A's
/// separation point: different devices stayed at or below 0.5625).
pub const APP_JACCARD_THRESHOLD: f64 = 0.5625;
/// Jaccard threshold on registered-account sets (Appendix A: 0.53).
pub const ACCOUNT_JACCARD_THRESHOLD: f64 = 0.53;

/// The fingerprint-relevant view of one install.
#[derive(Debug, Clone)]
pub struct CandidateInstall {
    /// The install ID.
    pub install_id: InstallId,
    /// Participant the install signed in as.
    pub participant: ParticipantId,
    /// Android ID, if ever reported.
    pub android_id: Option<AndroidId>,
    /// Observed monitoring interval `[t_f, t_l)`.
    pub interval: TimeInterval,
    /// `(app, install time)` tuples observed on the install.
    pub apps: HashSet<(AppId, SimTime)>,
    /// Accounts registered on the device.
    pub accounts: HashSet<AccountId>,
}

impl CandidateInstall {
    /// Build a candidate from a server-side install record.
    pub fn from_record(record: &InstallRecord) -> Self {
        CandidateInstall {
            install_id: record.install_id,
            participant: record.participant,
            android_id: record.android_id,
            interval: record.observed_interval(),
            apps: record
                .apps
                .values()
                .map(|info| (info.app, info.install_time))
                .collect(),
            accounts: record.accounts.iter().map(|a| a.id).collect(),
        }
    }

    /// Whether this install and `other` can belong to the same physical
    /// device under the Appendix A rules.
    pub fn same_device(&self, other: &CandidateInstall) -> bool {
        // Rule 2: overlapping installation intervals → different devices.
        if self.interval.overlaps(&other.interval) {
            return false;
        }
        // Rule 3: Android IDs decide when both are present.
        if let (Some(a), Some(b)) = (self.android_id, other.android_id) {
            return a == b;
        }
        // Rule 4: Jaccard fallback.
        jaccard(&self.apps, &other.apps) > APP_JACCARD_THRESHOLD
            || jaccard(&self.accounts, &other.accounts) > ACCOUNT_JACCARD_THRESHOLD
    }
}

/// A coalesced physical device: one or more installs.
#[derive(Debug, Clone)]
pub struct CoalescedDevice {
    /// Member installs, in input order.
    pub installs: Vec<CandidateInstall>,
}

impl CoalescedDevice {
    /// Distinct participants who ran installs on this device (shared
    /// worker devices have more than one, Appendix A).
    pub fn participants(&self) -> HashSet<ParticipantId> {
        self.installs.iter().map(|i| i.participant).collect()
    }

    /// Total observed coverage across installs.
    pub fn total_coverage(&self) -> racket_types::SimDuration {
        self.installs
            .iter()
            .map(|i| i.interval.duration())
            .fold(racket_types::SimDuration::ZERO, |acc, d| acc + d)
    }
}

/// Coalesce candidate installs into physical devices: union-find over the
/// pairwise `same_device` relation, with the overlap rule taking
/// precedence — a union is refused whenever it would place two installs
/// with overlapping intervals in the same group (one physical device runs
/// one RacketStore instance at a time, so overlap is conclusive evidence
/// of distinct devices even when weaker signals suggest a merge).
pub fn coalesce_installs(candidates: Vec<CandidateInstall>) -> Vec<CoalescedDevice> {
    let n = candidates.len();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }

    for i in 0..n {
        for j in i + 1..n {
            if !candidates[i].same_device(&candidates[j]) {
                continue;
            }
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri == rj {
                continue;
            }
            // Overlap precedence: refuse unions that would group any pair
            // of overlapping install intervals.
            let conflict = members[ri].iter().any(|&a| {
                members[rj]
                    .iter()
                    .any(|&b| candidates[a].interval.overlaps(&candidates[b].interval))
            });
            if conflict {
                continue;
            }
            let moved = std::mem::take(&mut members[rj]);
            members[ri].extend(moved);
            parent[rj] = ri;
        }
    }

    let mut groups: std::collections::BTreeMap<usize, Vec<CandidateInstall>> =
        std::collections::BTreeMap::new();
    for (i, cand) in candidates.into_iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(cand);
    }
    groups
        .into_values()
        .map(|installs| CoalescedDevice { installs })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(
        id: u64,
        participant: u32,
        android: Option<u64>,
        days: (u64, u64),
        apps: &[(u32, u64)],
        accounts: &[u64],
    ) -> CandidateInstall {
        CandidateInstall {
            install_id: InstallId(id),
            participant: ParticipantId(participant),
            android_id: android.map(AndroidId),
            interval: TimeInterval::new(SimTime::from_days(days.0), SimTime::from_days(days.1)),
            apps: apps
                .iter()
                .map(|&(a, t)| (AppId(a), SimTime::from_days(t)))
                .collect(),
            accounts: accounts.iter().map(|&a| AccountId(a)).collect(),
        }
    }

    #[test]
    fn overlapping_intervals_are_distinct_devices() {
        // Same Android ID but overlapping windows: must be two devices.
        let a = candidate(1, 1, Some(9), (0, 5), &[(1, 0)], &[1]);
        let b = candidate(2, 2, Some(9), (3, 8), &[(1, 0)], &[1]);
        assert!(!a.same_device(&b));
        let out = coalesce_installs(vec![a, b]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn same_android_id_sequential_installs_coalesce() {
        // A worker uninstalls and re-installs to get paid twice.
        let a = candidate(1, 1, Some(9), (0, 3), &[(1, 0), (2, 1)], &[1, 2]);
        let b = candidate(2, 1, Some(9), (5, 8), &[(1, 0), (2, 1)], &[1, 2]);
        let out = coalesce_installs(vec![a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].installs.len(), 2);
    }

    #[test]
    fn different_android_ids_stay_distinct() {
        let a = candidate(1, 1, Some(9), (0, 3), &[(1, 0)], &[1]);
        let b = candidate(2, 1, Some(10), (5, 8), &[(1, 0)], &[1]);
        // Identical apps and accounts, but hardware says otherwise.
        assert!(!a.same_device(&b));
    }

    #[test]
    fn jaccard_fallback_on_missing_android_ids() {
        // High app overlap: same device.
        let apps: Vec<(u32, u64)> = (0..16).map(|i| (i, 0)).collect();
        let a = candidate(1, 1, None, (0, 3), &apps, &[1]);
        let b = candidate(2, 2, None, (5, 8), apps[..12].to_vec().as_slice(), &[99]);
        // Jaccard = 12/16 = 0.75 > 0.5625.
        assert!(a.same_device(&b));

        // Low overlap and different accounts: distinct.
        let c = candidate(3, 3, None, (10, 12), apps[..4].to_vec().as_slice(), &[100]);
        assert!(!b.same_device(&c) || jaccard(&b.apps, &c.apps) > APP_JACCARD_THRESHOLD);
    }

    #[test]
    fn account_similarity_rescues_app_churned_device() {
        // Apps churned completely between installs, but accounts persist.
        let a = candidate(1, 1, None, (0, 3), &[(1, 0), (2, 1)], &[1, 2, 3, 4]);
        let b = candidate(2, 2, None, (5, 8), &[(7, 6), (8, 6)], &[1, 2, 3, 5]);
        // Account Jaccard = 3/5 = 0.6 > 0.53.
        assert!(a.same_device(&b));
    }

    #[test]
    fn shared_device_reports_multiple_participants() {
        let a = candidate(1, 10, Some(9), (0, 3), &[(1, 0)], &[1]);
        let b = candidate(2, 20, Some(9), (5, 8), &[(1, 0)], &[1]);
        let out = coalesce_installs(vec![a, b]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].participants().len(), 2);
        assert_eq!(out[0].total_coverage().as_days(), 6.0);
    }

    #[test]
    fn transitive_coalescing() {
        // a ~ b (android id), b ~ c (android id); all three one device.
        let a = candidate(1, 1, Some(9), (0, 2), &[(1, 0)], &[1]);
        let b = candidate(2, 1, Some(9), (3, 5), &[(1, 0)], &[1]);
        let c = candidate(3, 1, Some(9), (6, 8), &[(1, 0)], &[1]);
        let out = coalesce_installs(vec![a, b, c]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].installs.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce_installs(Vec::new()).is_empty());
    }

    #[test]
    fn idempotence_single_install_groups() {
        let singles: Vec<CandidateInstall> = (0..5)
            .map(|i| {
                candidate(
                    i,
                    i as u32,
                    Some(100 + i),
                    (i * 10, i * 10 + 2),
                    &[(i as u32, 0)],
                    &[i],
                )
            })
            .collect();
        let out = coalesce_installs(singles);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|d| d.installs.len() == 1));
    }
}
