//! LZSS compression for rotated snapshot files.
//!
//! §3: the data-buffer module *compresses* each accumulation file before
//! upload, to minimize bandwidth. Snapshot streams are extremely
//! repetitive (consecutive fast snapshots differ in a handful of bytes),
//! so a simple LZ77-family scheme recovers most of the redundancy.
//!
//! Format: a stream of tokens introduced by flag bytes. Each flag byte
//! covers the next 8 tokens, LSB first; bit = 0 means a literal byte,
//! bit = 1 means a back-reference of `(distance: u16 LE, length: u8)`
//! with real length `length + MIN_MATCH`. Window 64 KiB, match lengths
//! 4..=258.

/// Minimum back-reference length (shorter matches are stored literally).
const MIN_MATCH: usize = 4;
/// Maximum back-reference length (255 + MIN_MATCH).
const MAX_MATCH: usize = 255 + MIN_MATCH;
/// Sliding-window size (maximum back-reference distance).
const WINDOW: usize = 65_535;

// Chained hash table over 4-byte prefixes for match finding.
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Maximum candidates examined per position before giving up.
const CHAIN_LIMIT: u32 = 32;
/// Empty-slot sentinel in the hash chains.
const NIL: u32 = u32::MAX;

/// Worst-case compressed size for `n` input bytes: an all-literal stream
/// costs one flag byte per 8 literals, plus a small cushion. Reserving
/// this up front means [`Workspace::compress_into`] never regrows its
/// output, even on incompressible input.
pub const fn max_compressed_len(n: usize) -> usize {
    n + n / 8 + 16
}

#[inline]
fn hash4(d: &[u8]) -> usize {
    let v = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[c..]` and `data[i..]`, capped at
/// `max_len`. Requires `c < i` and `i + max_len <= data.len()`.
///
/// With `WIDE` the comparison runs eight bytes at a time: both reads stay
/// in bounds (`l + 8 <= max_len` implies `i + l + 8 <= data.len()`, and
/// `c < i` keeps the candidate read strictly earlier), and on a mismatch
/// the first differing byte is recovered from the trailing zeros of the
/// little-endian XOR — so the result is byte-for-byte the scalar answer,
/// just computed a word at a time. The scalar variant is kept as the
/// reference the property tests pin the wide path against.
#[inline]
fn match_len<const WIDE: bool>(data: &[u8], c: usize, i: usize, max_len: usize) -> usize {
    debug_assert!(c < i && i + max_len <= data.len());
    let mut l = 0usize;
    if WIDE {
        while l + 8 <= max_len {
            let a = u64::from_le_bytes(data[c + l..c + l + 8].try_into().unwrap());
            let b = u64::from_le_bytes(data[i + l..i + l + 8].try_into().unwrap());
            let diff = a ^ b;
            if diff != 0 {
                return l + (diff.trailing_zeros() / 8) as usize;
            }
            l += 8;
        }
    }
    while l < max_len && data[c + l] == data[i + l] {
        l += 1;
    }
    l
}

/// Reusable compression state: the hash-chain `head`/`prev` arrays and a
/// generation counter that invalidates `head` entries between runs without
/// touching memory.
///
/// A fresh pair of chain arrays costs ~384 KiB of allocation + memset per
/// call at the buffer module's rotate sizes; a per-lane `Workspace` pays
/// that once and then compresses allocation-free forever: `head` slots are
/// lazily reset by comparing their generation stamp against the current
/// run's, and `prev` needs no reset at all (a `prev[i]` is only ever read
/// by walking a chain rooted in a current-generation `head` slot, and
/// every position on such a chain was written during the current run).
///
/// Output is a pure function of the input bytes: a reused workspace
/// produces byte-identical streams to a fresh one (property-tested in
/// `tests/codec_props.rs`).
#[derive(Debug, Clone)]
pub struct Workspace {
    head: Vec<u32>,
    head_gen: Vec<u32>,
    prev: Vec<u32>,
    gen: u32,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// A fresh workspace. The chain arrays are sized on first use.
    pub fn new() -> Workspace {
        Workspace {
            head: vec![0; HASH_SIZE],
            head_gen: vec![0; HASH_SIZE],
            prev: Vec::new(),
            gen: 0,
        }
    }

    /// Start a new compression run: bump the generation (staling every
    /// `head` slot in O(1)) and make sure `prev` covers the input.
    fn begin(&mut self, n: usize) {
        if self.prev.len() < n {
            self.prev.resize(n, 0);
        }
        if self.gen == u32::MAX {
            // Generation wrap: one hard reset every 2^32 - 1 runs.
            self.head_gen.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    #[inline]
    fn chain_head(&self, h: usize) -> u32 {
        if self.head_gen[h] == self.gen {
            self.head[h]
        } else {
            NIL
        }
    }

    #[inline]
    fn insert(&mut self, h: usize, pos: usize) {
        self.prev[pos] = self.chain_head(h);
        self.head[h] = pos as u32;
        self.head_gen[h] = self.gen;
    }

    /// Longest match for `data[i..]` among chained earlier positions.
    /// Returns `(length, distance)`; length 0 means no candidate.
    #[inline]
    fn find_match<const WIDE: bool>(&self, data: &[u8], i: usize) -> (usize, usize) {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let max_len = (data.len() - i).min(MAX_MATCH);
        let mut cand = self.chain_head(hash4(&data[i..]));
        let mut chain = 0;
        while cand != NIL && i - cand as usize <= WINDOW && chain < CHAIN_LIMIT {
            let c = cand as usize;
            let l = match_len::<WIDE>(data, c, i, max_len);
            if l > best_len {
                best_len = l;
                best_dist = i - c;
                if l == max_len {
                    break;
                }
            }
            cand = self.prev[c];
            chain += 1;
        }
        (best_len, best_dist)
    }

    /// Compress `data`, replacing the contents of `out`.
    ///
    /// `out` is cleared and reserved to [`max_compressed_len`] up front,
    /// so a buffer that already has that capacity is never reallocated.
    /// Uses one-step lazy matching: when the position after a match start
    /// holds a strictly longer match, the first byte is emitted as a
    /// literal instead, improving ratio on snapshot streams at equal
    /// speed. Match comparison runs eight bytes at a time; the output is
    /// byte-identical to [`Workspace::compress_into_scalar`]
    /// (property-tested in `tests/codec_props.rs`).
    pub fn compress_into(&mut self, data: &[u8], out: &mut Vec<u8>) {
        self.compress_impl::<true>(data, out);
    }

    /// Byte-at-a-time reference implementation of
    /// [`Workspace::compress_into`]: same tokenizer, scalar match loop.
    /// Exists so the wide-compare fast path has an in-tree oracle; not
    /// used on any hot path.
    pub fn compress_into_scalar(&mut self, data: &[u8], out: &mut Vec<u8>) {
        self.compress_impl::<false>(data, out);
    }

    fn compress_impl<const WIDE: bool>(&mut self, data: &[u8], out: &mut Vec<u8>) {
        out.clear();
        if data.is_empty() {
            return;
        }
        out.reserve(max_compressed_len(data.len()));
        self.begin(data.len());

        let mut i = 0;
        let mut flag_pos = out.len();
        out.push(0);
        let mut flag_bit = 0u8;

        macro_rules! emit_token {
            ($is_ref:expr, $body:expr) => {{
                if flag_bit == 8 {
                    flag_pos = out.len();
                    out.push(0);
                    flag_bit = 0;
                }
                if $is_ref {
                    out[flag_pos] |= 1 << flag_bit;
                }
                flag_bit += 1;
                let bytes: &[u8] = $body;
                out.extend_from_slice(bytes);
            }};
        }

        while i < data.len() {
            let (best_len, best_dist) = self.find_match::<WIDE>(data, i);

            if best_len >= MIN_MATCH {
                // One-step lazy matching: peek at i + 1 before committing.
                // `i` must be inserted first so the peek can chain to it.
                if i + MIN_MATCH <= data.len() {
                    self.insert(hash4(&data[i..]), i);
                }
                if best_len < MAX_MATCH {
                    let (next_len, _) = self.find_match::<WIDE>(data, i + 1);
                    if next_len > best_len {
                        // The deferred match is strictly better: spend a
                        // literal and re-find it on the next iteration.
                        emit_token!(false, &data[i..=i]);
                        i += 1;
                        continue;
                    }
                }
                let dist = best_dist as u16;
                let len_code = (best_len - MIN_MATCH) as u8;
                emit_token!(
                    true,
                    &[dist.to_le_bytes()[0], dist.to_le_bytes()[1], len_code]
                );
                // Insert hash entries for the remaining covered positions
                // (`i` itself is already in).
                let end = i + best_len;
                i += 1;
                while i < end {
                    if i + MIN_MATCH <= data.len() {
                        self.insert(hash4(&data[i..]), i);
                    }
                    i += 1;
                }
            } else {
                emit_token!(false, &data[i..=i]);
                if i + MIN_MATCH <= data.len() {
                    self.insert(hash4(&data[i..]), i);
                }
                i += 1;
            }
        }
    }

    /// Compress `data` into a freshly allocated `Vec`.
    pub fn compress(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out);
        out
    }
}

/// Compress a byte slice with a throwaway [`Workspace`].
///
/// Convenience for one-shot callers and tests; hot paths (the per-lane
/// buffer rotate) hold a persistent workspace instead.
///
/// ```
/// let data = b"snapshot;snapshot;snapshot;snapshot;".repeat(50);
/// let packed = racket_collect::lzss::compress(&data);
/// assert!(packed.len() < data.len() / 4);
/// assert_eq!(racket_collect::lzss::decompress(&packed).unwrap(), data);
/// ```
pub fn compress(data: &[u8]) -> Vec<u8> {
    Workspace::new().compress(data)
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// A token was cut off mid-stream.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadReference {
        /// Output length when the bad reference was hit.
        at: usize,
        /// The offending distance.
        distance: usize,
    },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadReference { at, distance } => {
                write!(
                    f,
                    "back-reference distance {distance} at output offset {at}"
                )
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(data.len() * 3);
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompress into a caller-supplied buffer (cleared first), letting hot
/// ingest paths reuse one scratch allocation across files.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), DecompressError> {
    out.clear();
    let mut i = 0;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        if flags == 0 && i + 8 <= data.len() {
            // All eight tokens are literals: one bulk copy instead of
            // eight pushes. (The tail of the stream may cover fewer than
            // eight tokens, so the slow loop handles that case.)
            out.extend_from_slice(&data[i..i + 8]);
            i += 8;
            continue;
        }
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) == 0 {
                out.push(data[i]);
                i += 1;
            } else {
                if i + 3 > data.len() {
                    return Err(DecompressError::Truncated);
                }
                let dist = u16::from_le_bytes([data[i], data[i + 1]]) as usize;
                let len = data[i + 2] as usize + MIN_MATCH;
                i += 3;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadReference {
                        at: out.len(),
                        distance: dist,
                    });
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Non-overlapping back-reference: one block copy.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping copy (run-length style): the output is
                    // periodic with period `dist` from `start` on, so any
                    // already-written chunk whose length is a multiple of
                    // `dist` can be replayed. Doubling the chunk gives
                    // O(log(len/dist)) block copies instead of `len`
                    // byte-wise pushes.
                    let mut remaining = len;
                    let mut chunk = dist;
                    while chunk < remaining {
                        out.extend_from_within(start..start + chunk);
                        remaining -= chunk;
                        chunk *= 2;
                    }
                    out.extend_from_within(start..start + remaining);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c).expect("round trip must decompress")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abc"), b"abc");
    }

    #[test]
    fn repetitive_input_round_trips_and_shrinks() {
        let data: Vec<u8> = b"fast_snapshot{install:123,fg:com.app,screen:1};"
            .iter()
            .copied()
            .cycle()
            .take(20_000)
            .collect();
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 5,
            "compressed {} of {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn run_length_overlapping_match() {
        let data = vec![0x41u8; 1000];
        let c = compress(&data);
        assert!(c.len() < 40, "pure run compresses hard, got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn run_longer_than_window_round_trips() {
        // A uniform run longer than the 64 KiB search window: every match
        // candidate distance must stay clamped to the window even though
        // identical bytes continue far beyond it.
        let data = vec![0x42u8; WINDOW + 10_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 50, "long run still compresses");
    }

    #[test]
    fn repeat_exactly_at_window_distance_round_trips() {
        // A motif that recurs at exactly the maximum representable
        // distance, with incompressible noise in between: exercises the
        // `i - cand <= WINDOW` boundary on both sides.
        let motif = b"racketstore-window-boundary-motif";
        let mut data = Vec::new();
        data.extend_from_slice(motif);
        // Pseudo-random filler (SplitMix-ish) that won't form long matches.
        let mut x = 0x9E37_79B9u32;
        while data.len() < WINDOW {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            data.push(x as u8);
        }
        data.truncate(WINDOW);
        data.extend_from_slice(motif); // second copy, distance == WINDOW
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn incompressible_input_round_trips() {
        // Pseudo-random bytes: no matches, pure literal stream.
        let mut x: u32 = 0x12345678;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        assert_eq!(round_trip(&data), data);
        // Overhead is bounded by 1 flag byte per 8 literals.
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 2);
    }

    #[test]
    fn truncated_stream_rejected() {
        let c = compress(&[7u8; 100]);
        assert!(matches!(
            decompress(&c[..c.len() - 1]),
            Err(DecompressError::Truncated) | Ok(_)
        ));
        // A reference token cut exactly is definitely Truncated.
        let mut bad = vec![0b0000_0001u8]; // first token is a reference
        bad.push(0x01); // half a distance
        assert_eq!(decompress(&bad), Err(DecompressError::Truncated));
    }

    #[test]
    fn bad_reference_rejected() {
        // Flag says reference, distance 9999 with empty output so far.
        let bad = vec![0b0000_0001u8, 0x0f, 0x27, 0x00];
        match decompress(&bad) {
            Err(DecompressError::BadReference { distance, .. }) => {
                assert_eq!(distance, 9999);
            }
            other => panic!("expected BadReference, got {other:?}"),
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_state() {
        // One workspace across many inputs must produce the same bytes as
        // a throwaway workspace per input (the generation-stamp contract).
        let inputs: Vec<Vec<u8>> = vec![
            b"aaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            b"abcdefgh".repeat(100),
            (0..5000u32).flat_map(|i| i.to_le_bytes()).collect(),
            vec![],
            b"x".repeat(3),
        ];
        let mut ws = Workspace::new();
        for data in &inputs {
            assert_eq!(ws.compress(data), compress(data));
        }
        // And again in reverse order, on the same (now dirty) workspace.
        for data in inputs.iter().rev() {
            assert_eq!(ws.compress(data), compress(data));
        }
    }

    #[test]
    fn incompressible_input_never_regrows_preallocated_output() {
        // Satellite: the old `data.len() / 2 + 16` preallocation forced
        // regrows on incompressible input. With the worst-case reserve, a
        // buffer at `max_compressed_len` capacity is never reallocated.
        let mut x: u32 = 0xDEAD_BEEF;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let mut out = Vec::with_capacity(max_compressed_len(data.len()));
        let before = out.as_ptr();
        Workspace::new().compress_into(&data, &mut out);
        assert_eq!(out.as_ptr(), before, "output buffer was reallocated");
        assert!(
            out.len() <= max_compressed_len(data.len()),
            "compressed {} exceeds worst case {}",
            out.len(),
            max_compressed_len(data.len())
        );
        assert_eq!(decompress(&out).unwrap(), data);
    }

    #[test]
    fn json_snapshot_payload_compresses_well() {
        // Realistic payload shape: many similar JSON records.
        let mut data = Vec::new();
        for i in 0..500 {
            data.extend_from_slice(
                format!(
                    "{{\"install_id\":1234567890,\"participant_id\":111111,\
                     \"time\":{},\"foreground_app\":\"app-42\",\"screen_on\":true,\
                     \"battery_pct\":87}}\n",
                    i * 5
                )
                .as_bytes(),
            );
        }
        let c = compress(&data);
        assert!(
            c.len() * 4 < data.len(),
            "expected ≥4× ratio, got {}/{}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
