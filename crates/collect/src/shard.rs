//! Sharded snapshot ingestion.
//!
//! The paper's backend ingested 58.3M snapshots from 803 devices (§5); one
//! global lock on the record table would serialize the whole fleet. Since
//! every snapshot carries its install ID and per-install aggregation never
//! crosses installs, the record table shards cleanly: [`ShardedIngest`]
//! spreads [`InstallRecord`]s over `N` independently locked shards keyed by
//! install ID (the simulator assigns one install per physical device, so
//! this is sharding by device). Batches from *different* devices land on
//! different shards with probability `1 − 1/N` and ingest concurrently;
//! batches from the *same* device serialize on its shard, preserving the
//! per-install aggregation order.
//!
//! Determinism: per-install state is only ever touched under its own
//! shard's lock by snapshots of that install, and the global snapshot
//! counter is a commutative atomic add — so the drained records are a pure
//! function of the multiset of snapshots ingested, never of thread timing.
//! [`ShardedIngest::into_records`] returns records sorted by install ID to
//! give downstream consumers a canonical order.

use crate::server::{CollectionServer, InstallRecord};
use parking_lot::Mutex;
use racket_types::{InstallId, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Concurrently usable snapshot store: per-install aggregates spread over
/// independently locked shards. The facade the parallel study driver
/// ingests through on the in-process (direct) collection path.
#[derive(Debug)]
pub struct ShardedIngest {
    shards: Vec<Mutex<HashMap<InstallId, InstallRecord>>>,
    snapshots: AtomicU64,
}

impl ShardedIngest {
    /// Create a store with `n_shards` shards (at least 1).
    pub fn new(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        ShardedIngest {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            snapshots: AtomicU64::new(0),
        }
    }

    /// Create a store sized for the current worker-thread count (two
    /// shards per thread keeps the collision probability low without
    /// over-allocating locks).
    pub fn for_current_threads() -> Self {
        Self::new(rayon::current_num_threads() * 2)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard an install's record lives on.
    pub fn shard_of(&self, install: InstallId) -> usize {
        (install.raw() as usize) % self.shards.len()
    }

    /// Ingest one snapshot (callable from any thread).
    pub fn ingest(&self, snapshot: &Snapshot) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[self.shard_of(snapshot.install_id())];
        let mut map = shard.lock();
        map.entry(snapshot.install_id())
            .or_insert_with(|| {
                InstallRecord::new(
                    snapshot.install_id(),
                    snapshot.participant_id(),
                    snapshot.time(),
                )
            })
            .ingest(snapshot);
    }

    /// Ingest a batch of snapshots from one device: the shard lock is taken
    /// once for the whole batch.
    pub fn ingest_batch(&self, snapshots: &[Snapshot]) {
        let Some(first) = snapshots.first() else {
            return;
        };
        self.snapshots
            .fetch_add(snapshots.len() as u64, Ordering::Relaxed);
        let shard = &self.shards[self.shard_of(first.install_id())];
        let mut map = shard.lock();
        for snapshot in snapshots {
            debug_assert_eq!(
                snapshot.install_id(),
                first.install_id(),
                "a batch must come from one device"
            );
            map.entry(snapshot.install_id())
                .or_insert_with(|| {
                    InstallRecord::new(
                        snapshot.install_id(),
                        snapshot.participant_id(),
                        snapshot.time(),
                    )
                })
                .ingest(snapshot);
        }
    }

    /// Snapshots ingested so far.
    pub fn snapshots_ingested(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Install records held per shard (the occupancy series reported in
    /// [`racket_types::PipelineMetrics`]).
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }

    /// Publish the occupancy series as `ingest.shard_occupancy.<idx>`
    /// gauges (zero-padded index, so gauge-name order is shard order —
    /// the layout [`racket_types::PipelineMetrics::from_snapshot`] reads
    /// back).
    pub fn record_occupancy_to(&self, registry: &racket_obs::Registry) {
        use racket_types::metrics::keys;
        for (i, n) in self.occupancy().into_iter().enumerate() {
            registry.gauge_set(&format!("{}{i:04}", keys::SHARD_OCCUPANCY_PREFIX), n as u64);
        }
    }

    /// Drain the store into its records, sorted by install ID (the
    /// canonical order downstream assembly relies on).
    pub fn into_records(self) -> Vec<InstallRecord> {
        let mut records: Vec<InstallRecord> = self
            .shards
            .into_iter()
            .flat_map(|s| s.into_inner().into_values())
            .collect();
        records.sort_by_key(|r| r.install_id);
        records
    }

    /// Drain the store into a [`CollectionServer`], folding every record
    /// and the snapshot count into the server's table and stats — the
    /// convergence point of the sharded direct path and the wire path.
    pub fn merge_into(self, server: &mut CollectionServer) {
        let snapshots = self.snapshots_ingested();
        for record in self.into_records() {
            server.adopt_record(record);
        }
        server.add_ingested_snapshots(snapshots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{AppId, FastSnapshot, ParticipantId, SimTime};

    fn snap(install: u64, t: u64) -> Snapshot {
        Snapshot::Fast(FastSnapshot {
            install_id: InstallId(install),
            participant_id: ParticipantId(123_456),
            time: SimTime::from_secs(t),
            foreground_app: Some(AppId(1)),
            screen_on: true,
            battery_pct: 50,
            install_events: vec![],
        })
    }

    #[test]
    fn ingest_aggregates_per_install() {
        let ingest = ShardedIngest::new(4);
        ingest.ingest(&snap(1_000_000_001, 10));
        ingest.ingest(&snap(1_000_000_001, 15));
        ingest.ingest(&snap(1_000_000_002, 20));
        assert_eq!(ingest.snapshots_ingested(), 3);
        assert_eq!(ingest.occupancy().iter().sum::<usize>(), 2);
        let records = ingest.into_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].install_id, InstallId(1_000_000_001));
        assert_eq!(records[0].n_fast, 2);
        assert_eq!(records[1].n_fast, 1);
    }

    #[test]
    fn batch_ingest_equals_singles() {
        let a = ShardedIngest::new(3);
        let b = ShardedIngest::new(3);
        let batch: Vec<Snapshot> = (0..10).map(|t| snap(1_000_000_007, t)).collect();
        for s in &batch {
            a.ingest(s);
        }
        b.ingest_batch(&batch);
        let (ra, rb) = (a.into_records(), b.into_records());
        assert_eq!(ra.len(), 1);
        assert_eq!(ra[0].n_fast, rb[0].n_fast);
        assert_eq!(ra[0].snapshots_per_day, rb[0].snapshots_per_day);
    }

    #[test]
    fn concurrent_ingest_is_deterministic() {
        use rayon::prelude::*;
        let run = |threads: &str| {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let ingest = ShardedIngest::new(8);
            let snaps: Vec<Snapshot> = (0..64u64)
                .flat_map(|d| (0..50u64).map(move |t| snap(1_000_000_000 + d, t * 7)))
                .collect();
            snaps.par_iter().for_each(|s| ingest.ingest(s));
            std::env::remove_var("RAYON_NUM_THREADS");
            ingest
                .into_records()
                .iter()
                .map(|r| (r.install_id, r.n_fast, r.first_seen, r.last_seen))
                .collect::<Vec<_>>()
        };
        assert_eq!(run("1"), run("8"));
    }

    #[test]
    fn merge_into_server_carries_stats() {
        let ingest = ShardedIngest::new(2);
        ingest.ingest(&snap(1_000_000_001, 5));
        ingest.ingest(&snap(1_000_000_002, 6));
        let mut server = CollectionServer::new([ParticipantId(123_456)]);
        ingest.merge_into(&mut server);
        assert_eq!(server.stats().snapshots, 2);
        assert_eq!(server.records().count(), 2);
        assert!(server.record(InstallId(1_000_000_001)).is_some());
    }
}
