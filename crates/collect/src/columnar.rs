//! Columnar (struct-of-arrays) projection of the ingest store.
//!
//! The row-oriented [`InstallRecord`] is what the collection server and
//! the protocol paths mutate: per-install `HashMap`s of `BTreeMap`s,
//! optimized for idempotent snapshot ingest. Analyze-side passes want the
//! opposite shape — every install's value for one field, contiguous. A
//! [`ColumnarSnapshots`] store is that projection: dictionary-encoded
//! identifiers, one dense column per scalar field, and CSR (offsets +
//! values) layouts for the per-`(install, app)` and per-`(install,
//! account)` families. ARCHITECTURE.md §9 documents the layout in full.
//!
//! The store is **derived, append-only and lossy by design**: it carries
//! exactly the fields the analyze stages read (activity columns, per-app
//! streaming aggregates, account services), never the full protocol
//! state, and it is rebuilt from records rather than updated in place.
//! Population happens either in batch ([`ColumnarSnapshots::from_records`]
//! over [`ShardedIngest::into_records`] output — see
//! [`ShardedIngest::columnarize`]) or incrementally
//! ([`ColumnarSnapshots::adopt`] per record at the study's assembly fold
//! point, where records are already merged and sorted). Both produce
//! identical stores for identical record sequences; adopting records in
//! ascending-install order is what makes dictionary codes deterministic
//! run to run.

use crate::server::InstallRecord;
use crate::shard::ShardedIngest;
use racket_columnar::Dict;
use racket_types::{AccountService, AppId, GoogleId, InstallId, ParticipantId, Rating, SimTime};

/// Struct-of-arrays snapshot store over dictionary-encoded identifiers.
///
/// Row `code` of every per-install column describes the install with
/// dictionary code `code`; the CSR families hang off `app_offsets` /
/// `account_offsets` (standard offsets-array encoding: the entries of
/// install `c` live at `offsets[c] .. offsets[c + 1]`). Within one
/// install the app entries are sorted by ascending [`AppId`] — the same
/// canonical order the batch feature builders iterate apps in.
#[derive(Debug, Clone, Default)]
pub struct ColumnarSnapshots {
    installs: Dict<InstallId>,
    apps: Dict<AppId>,
    services: Dict<AccountService>,

    // Per-install scalar columns, indexed by install code.
    participant: Vec<ParticipantId>,
    n_fast: Vec<u64>,
    n_slow: Vec<u64>,
    active_days: Vec<u32>,
    avg_snapshots_per_day: Vec<f64>,
    n_install_events: Vec<u64>,
    n_uninstall_events: Vec<u64>,

    // CSR per-(install, app), ascending AppId within each install.
    app_offsets: Vec<u32>,
    app_codes: Vec<u32>,
    fg_total: Vec<u64>,
    app_installs: Vec<u64>,
    app_uninstalls: Vec<u64>,
    last_uninstall: Vec<u64>,

    // CSR per-(install, monitored install event), in event-vector order.
    // The campaign detector's batch path rebuilds its shingle sets from
    // these two parallel columns (ARCHITECTURE.md §10).
    ev_offsets: Vec<u32>,
    ev_app_codes: Vec<u32>,
    ev_times: Vec<u64>,

    // CSR per-(install, account): the service of each registered account.
    account_offsets: Vec<u32>,
    service_codes: Vec<u32>,

    // CSR per-(install, reported review event), in report order. The text
    // engine's batch path re-derives per-install `TextSketch`es from these
    // columns (ARCHITECTURE.md §13). Review text lives in one contiguous
    // UTF-8 arena sliced by `rev_text_offsets` (offsets-array encoding
    // like the CSR families, one entry per review plus the leading zero).
    rev_offsets: Vec<u32>,
    rev_app_codes: Vec<u32>,
    rev_reviewers: Vec<u64>,
    rev_times: Vec<u64>,
    rev_ratings: Vec<u8>,
    rev_text_offsets: Vec<u32>,
    rev_text_bytes: Vec<u8>,
}

/// Sentinel in the `last_uninstall` column for "never uninstalled".
///
/// Uninstall times are simulation seconds (small); `u64::MAX` cannot be
/// a real timestamp.
pub const NEVER_UNINSTALLED: u64 = u64::MAX;

/// One decoded per-(install, review) entry, as returned by
/// [`ColumnarSnapshots::reviews_of`]. Borrows its text from the store's
/// arena — no per-review allocation on the batch-rebuild scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReviewEntry<'a> {
    /// The reviewed app.
    pub app: AppId,
    /// The Google identity that posted.
    pub reviewer: GoogleId,
    /// Posting time.
    pub time: SimTime,
    /// The star rating.
    pub rating: Rating,
    /// The review text.
    pub text: &'a str,
}

/// One decoded per-(install, app) entry, as returned by
/// [`ColumnarSnapshots::apps_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppEntry {
    /// The app.
    pub app: AppId,
    /// Fast snapshots with the app on screen (streaming `fg_total`).
    pub fg_total: u64,
    /// Monitored install events for the app.
    pub n_installs: u64,
    /// Monitored uninstall events for the app.
    pub n_uninstalls: u64,
    /// Latest uninstall time in seconds, or [`NEVER_UNINSTALLED`].
    pub last_uninstall: u64,
}

impl ColumnarSnapshots {
    /// An empty store (zero installs; `adopt` to populate).
    pub fn new() -> ColumnarSnapshots {
        let mut s = ColumnarSnapshots::default();
        s.app_offsets.push(0);
        s.account_offsets.push(0);
        s.ev_offsets.push(0);
        s.rev_offsets.push(0);
        s.rev_text_offsets.push(0);
        s
    }

    /// Batch population: adopt every record in the given order.
    ///
    /// Callers that need deterministic dictionary codes pass records in
    /// ascending-install order ([`ShardedIngest::into_records`] already
    /// does).
    pub fn from_records(records: &[InstallRecord]) -> ColumnarSnapshots {
        let mut s = ColumnarSnapshots::new();
        for r in records {
            s.adopt(r);
        }
        s
    }

    /// Incremental population: append one merged install record's columns.
    ///
    /// This is the streaming fold point — the study's assembly loop calls
    /// it once per coalesced record, right where the per-device streaming
    /// state is folded.
    ///
    /// # Panics
    /// If the install was already adopted (the store is append-only; a
    /// record must be fully merged before adoption), or if a dictionary
    /// or offset column would overflow `u32`.
    pub fn adopt(&mut self, r: &InstallRecord) {
        let code = self.installs.encode(r.install_id);
        assert_eq!(
            code as usize,
            self.participant.len(),
            "install adopted twice: {}",
            r.install_id
        );

        self.participant.push(r.participant);
        self.n_fast.push(r.n_fast);
        self.n_slow.push(r.n_slow);
        self.active_days
            .push(u32::try_from(r.active_days()).expect("active days overflow"));
        self.avg_snapshots_per_day.push(r.avg_snapshots_per_day());
        self.n_install_events.push(r.stream.n_install_events);
        self.n_uninstall_events.push(r.stream.n_uninstall_events);

        // Per-app entries in ascending AppId order — the canonical order
        // the batch feature builders use.
        let mut app_ids: Vec<AppId> = r.apps.keys().copied().collect();
        app_ids.sort_unstable();
        for app in app_ids {
            self.app_codes.push(self.apps.encode(app));
            let stream = r.stream.app(app).copied().unwrap_or_default();
            self.fg_total.push(stream.fg_total);
            self.app_installs.push(stream.n_installs);
            self.app_uninstalls.push(stream.n_uninstalls);
            self.last_uninstall.push(
                stream
                    .last_uninstall
                    .map_or(NEVER_UNINSTALLED, |t| t.as_secs()),
            );
        }
        self.app_offsets
            .push(u32::try_from(self.app_codes.len()).expect("app column overflow"));

        // Monitored install events, in event-vector (arrival) order. The
        // apps are already in the dictionary: every event's app has an
        // entry in `r.apps` and was encoded by the loop above.
        for &(app, t) in &r.install_events {
            self.ev_app_codes.push(self.apps.encode(app));
            self.ev_times.push(t.as_secs());
        }
        self.ev_offsets
            .push(u32::try_from(self.ev_app_codes.len()).expect("event column overflow"));

        for account in &r.accounts {
            self.service_codes
                .push(self.services.encode(account.service));
        }
        self.account_offsets
            .push(u32::try_from(self.service_codes.len()).expect("account column overflow"));

        // Reported review events, in report order. A reviewed app may be
        // absent from `r.apps` (e.g. reviewed before monitoring and since
        // uninstalled), so this loop can extend the app dictionary — in
        // review order, which is deterministic like everything above.
        for review in &r.review_events {
            self.rev_app_codes.push(self.apps.encode(review.app));
            self.rev_reviewers.push(review.reviewer.raw());
            self.rev_times.push(review.time.as_secs());
            self.rev_ratings.push(review.rating.stars());
            self.rev_text_bytes
                .extend_from_slice(review.text.as_bytes());
            self.rev_text_offsets.push(
                u32::try_from(self.rev_text_bytes.len()).expect("review text arena overflow"),
            );
        }
        self.rev_offsets
            .push(u32::try_from(self.rev_app_codes.len()).expect("review column overflow"));
    }

    /// Number of installs adopted.
    pub fn n_installs(&self) -> usize {
        self.participant.len()
    }

    /// Number of distinct apps seen across all installs.
    pub fn n_apps(&self) -> usize {
        self.apps.len()
    }

    /// Number of distinct account services seen.
    pub fn n_services(&self) -> usize {
        self.services.len()
    }

    /// Total per-(install, app) entries (CSR payload length).
    pub fn n_app_entries(&self) -> usize {
        self.app_codes.len()
    }

    /// The dictionary code for an install, if adopted.
    pub fn install_code(&self, id: InstallId) -> Option<u32> {
        self.installs.code(id)
    }

    /// The install behind a dictionary code.
    ///
    /// # Panics
    /// If `code` was never assigned.
    pub fn install_id(&self, code: u32) -> InstallId {
        self.installs.value(code)
    }

    /// Participant column entry for an install code.
    pub fn participant(&self, code: u32) -> ParticipantId {
        self.participant[code as usize]
    }

    /// Fast/slow snapshot counts for an install code.
    pub fn snapshot_counts(&self, code: u32) -> (u64, u64) {
        (self.n_fast[code as usize], self.n_slow[code as usize])
    }

    /// Days with at least one snapshot, for an install code.
    pub fn active_days(&self, code: u32) -> u32 {
        self.active_days[code as usize]
    }

    /// Average snapshots per active day, for an install code.
    pub fn avg_snapshots_per_day(&self, code: u32) -> f64 {
        self.avg_snapshots_per_day[code as usize]
    }

    /// Device-level (install event, uninstall event) totals.
    pub fn event_totals(&self, code: u32) -> (u64, u64) {
        (
            self.n_install_events[code as usize],
            self.n_uninstall_events[code as usize],
        )
    }

    /// Decoded per-app entries of one install, ascending by [`AppId`].
    pub fn apps_of(&self, code: u32) -> impl Iterator<Item = AppEntry> + '_ {
        let lo = self.app_offsets[code as usize] as usize;
        let hi = self.app_offsets[code as usize + 1] as usize;
        (lo..hi).map(move |k| AppEntry {
            app: self.apps.value(self.app_codes[k]),
            fg_total: self.fg_total[k],
            n_installs: self.app_installs[k],
            n_uninstalls: self.app_uninstalls[k],
            last_uninstall: self.last_uninstall[k],
        })
    }

    /// Monitored install events of one install, in event-vector order —
    /// the batch input to campaign-sketch rebuilds.
    pub fn install_events_of(&self, code: u32) -> impl Iterator<Item = (AppId, SimTime)> + '_ {
        let lo = self.ev_offsets[code as usize] as usize;
        let hi = self.ev_offsets[code as usize + 1] as usize;
        (lo..hi).map(move |k| {
            (
                self.apps.value(self.ev_app_codes[k]),
                SimTime::from_secs(self.ev_times[k]),
            )
        })
    }

    /// Total monitored install events across all installs (event CSR
    /// payload length).
    pub fn n_install_events(&self) -> usize {
        self.ev_app_codes.len()
    }

    /// Reported review events of one install, in report order — the batch
    /// input to text-sketch rebuilds (ARCHITECTURE.md §13).
    pub fn reviews_of(&self, code: u32) -> impl Iterator<Item = ReviewEntry<'_>> + '_ {
        let lo = self.rev_offsets[code as usize] as usize;
        let hi = self.rev_offsets[code as usize + 1] as usize;
        (lo..hi).map(move |k| ReviewEntry {
            app: self.apps.value(self.rev_app_codes[k]),
            reviewer: GoogleId(self.rev_reviewers[k]),
            time: SimTime::from_secs(self.rev_times[k]),
            rating: Rating::new(self.rev_ratings[k]).expect("columns store valid ratings"),
            text: std::str::from_utf8(
                &self.rev_text_bytes
                    [self.rev_text_offsets[k] as usize..self.rev_text_offsets[k + 1] as usize],
            )
            .expect("columns store valid UTF-8"),
        })
    }

    /// Total reported review events across all installs (review CSR
    /// payload length).
    pub fn n_review_events(&self) -> usize {
        self.rev_app_codes.len()
    }

    /// Account services registered on one install, in snapshot order.
    pub fn services_of(&self, code: u32) -> impl Iterator<Item = AccountService> + '_ {
        let lo = self.account_offsets[code as usize] as usize;
        let hi = self.account_offsets[code as usize + 1] as usize;
        (lo..hi).map(move |k| self.services.value(self.service_codes[k]))
    }

    /// Approximate heap footprint of the columns, in bytes — what the
    /// study summary reports next to the row-store size.
    pub fn column_bytes(&self) -> usize {
        use std::mem::size_of;
        self.participant.len()
            * (size_of::<ParticipantId>()
                + 2 * size_of::<u64>()
                + size_of::<u32>()
                + size_of::<f64>()
                + 2 * size_of::<u64>())
            + (self.app_offsets.len() + self.account_offsets.len() + self.ev_offsets.len())
                * size_of::<u32>()
            + self.app_codes.len() * (size_of::<u32>() + 4 * size_of::<u64>())
            + self.ev_app_codes.len() * (size_of::<u32>() + size_of::<u64>())
            + self.service_codes.len() * size_of::<u32>()
            + (self.rev_offsets.len() + self.rev_text_offsets.len()) * size_of::<u32>()
            + self.rev_app_codes.len() * (2 * size_of::<u32>() + 2 * size_of::<u64>() + 1)
            + self.rev_text_bytes.len()
    }
}

impl ShardedIngest {
    /// Drain the store into its canonical record vector *and* the
    /// columnar projection built from it — the batch population path.
    pub fn columnarize(self) -> (Vec<InstallRecord>, ColumnarSnapshots) {
        let records = self.into_records();
        let columnar = ColumnarSnapshots::from_records(&records);
        (records, columnar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{
        ApkHash, FastSnapshot, InstallDelta, InstalledApp, PermissionProfile, ReviewEvent, SimTime,
        SlowSnapshot, Snapshot,
    };

    fn snap(install: u64, t: u64, foreground: Option<AppId>, installs: Vec<AppId>) -> Snapshot {
        Snapshot::Fast(FastSnapshot {
            install_id: InstallId(install),
            participant_id: ParticipantId(100_000),
            time: SimTime::from_secs(t),
            foreground_app: foreground,
            screen_on: foreground.is_some(),
            battery_pct: 80,
            install_events: installs
                .into_iter()
                .map(|app| {
                    InstallDelta::Installed(InstalledApp::fresh(
                        app,
                        SimTime::from_secs(t),
                        PermissionProfile::default(),
                        ApkHash([app.0 as u8; 16]),
                    ))
                })
                .collect(),
        })
    }

    fn review(app: AppId, reviewer: u64, t: u64, stars: u8, text: &str) -> ReviewEvent {
        ReviewEvent {
            app,
            reviewer: GoogleId(reviewer),
            time: SimTime::from_secs(t),
            rating: Rating::new(stars).unwrap(),
            text: text.to_owned(),
        }
    }

    fn slow(install: u64, t: u64, reviews: Vec<ReviewEvent>) -> Snapshot {
        Snapshot::Slow(SlowSnapshot {
            install_id: InstallId(install),
            participant_id: ParticipantId(100_000),
            android_id: None,
            time: SimTime::from_secs(t),
            accounts: vec![],
            save_mode: false,
            stopped_apps: vec![],
            review_events: reviews,
        })
    }

    fn ingest_fixture() -> ShardedIngest {
        let ingest = ShardedIngest::new(4);
        ingest.ingest(&snap(2_000_000_001, 10, None, vec![AppId(7), AppId(3)]));
        ingest.ingest(&snap(2_000_000_001, 86_410, Some(AppId(7)), vec![]));
        ingest.ingest(&snap(2_000_000_001, 86_420, None, vec![]));
        ingest.ingest(&slow(
            2_000_000_001,
            86_430,
            vec![
                review(AppId(7), 42, 86_400, 5, "great app works perfectly"),
                // An app never installed during monitoring: review columns
                // must extend the app dictionary, not panic.
                review(AppId(99), 42, 400, 1, "crashes a lot"),
            ],
        ));
        ingest.ingest(&snap(1_000_000_002, 50, Some(AppId(3)), vec![AppId(3)]));
        ingest.ingest(&slow(
            1_000_000_002,
            60,
            vec![review(AppId(3), 77, 55, 4, "good app overall")],
        ));
        ingest
    }

    #[test]
    fn columnarize_matches_per_record_adoption() {
        let (records, columnar) = ingest_fixture().columnarize();
        assert_eq!(records.len(), 2);
        assert_eq!(columnar.n_installs(), 2);
        // Records come back ascending by install id; codes follow.
        assert!(records[0].install_id < records[1].install_id);
        for (code, r) in records.iter().enumerate() {
            let code = code as u32;
            assert_eq!(columnar.install_code(r.install_id), Some(code));
            assert_eq!(columnar.install_id(code), r.install_id);
            assert_eq!(columnar.participant(code), r.participant);
            assert_eq!(columnar.snapshot_counts(code), (r.n_fast, r.n_slow));
            assert_eq!(columnar.active_days(code) as usize, r.active_days());
            assert_eq!(
                columnar.avg_snapshots_per_day(code).to_bits(),
                r.avg_snapshots_per_day().to_bits()
            );
            assert_eq!(
                columnar.event_totals(code),
                (r.stream.n_install_events, r.stream.n_uninstall_events)
            );
            let events: Vec<(AppId, SimTime)> = columnar.install_events_of(code).collect();
            assert_eq!(events, r.install_events);
            let reviews: Vec<ReviewEvent> = columnar
                .reviews_of(code)
                .map(|e| ReviewEvent {
                    app: e.app,
                    reviewer: e.reviewer,
                    time: e.time,
                    rating: e.rating,
                    text: e.text.to_owned(),
                })
                .collect();
            assert_eq!(reviews, r.review_events);
        }
        assert_eq!(columnar.n_review_events(), 3);
    }

    /// A campaign sketch rebuilt from the install-event columns equals
    /// the sketch the streaming fold maintained inside the record — the
    /// batch side of the batch ≡ incremental contract, at the unit level.
    #[test]
    fn event_columns_rebuild_the_streaming_sketch() {
        let (records, columnar) = ingest_fixture().columnarize();
        for (code, r) in records.iter().enumerate() {
            let mut rebuilt = racket_campaign::CampaignSketch::default();
            for (app, t) in columnar.install_events_of(code as u32) {
                rebuilt.observe(app, t);
            }
            assert_eq!(&rebuilt, r.stream.campaign());
        }
        assert!(columnar.n_install_events() > 0);
    }

    /// The text analog: a `TextSketch` rebuilt from the review columns
    /// equals the sketch the streaming fold maintained inside the record —
    /// the unit-level half of the streaming ≡ batch text contract.
    #[test]
    fn review_columns_rebuild_the_streaming_text_sketch() {
        let (records, columnar) = ingest_fixture().columnarize();
        for (code, r) in records.iter().enumerate() {
            let mut rebuilt = racket_text::TextSketch::default();
            for e in columnar.reviews_of(code as u32) {
                rebuilt.observe(
                    e.app.raw(),
                    e.reviewer.raw(),
                    e.time.as_secs(),
                    e.rating.stars(),
                    e.text,
                );
            }
            assert_eq!(&rebuilt, r.stream.text());
        }
        assert!(columnar.n_review_events() > 0);
    }

    #[test]
    fn incremental_adoption_equals_batch() {
        let records = ingest_fixture().into_records();
        let batch = ColumnarSnapshots::from_records(&records);
        let mut incremental = ColumnarSnapshots::new();
        for r in &records {
            incremental.adopt(r);
        }
        assert_eq!(incremental.n_installs(), batch.n_installs());
        assert_eq!(incremental.n_apps(), batch.n_apps());
        assert_eq!(incremental.n_app_entries(), batch.n_app_entries());
        for code in 0..batch.n_installs() as u32 {
            assert_eq!(incremental.install_id(code), batch.install_id(code));
            let a: Vec<AppEntry> = incremental.apps_of(code).collect();
            let b: Vec<AppEntry> = batch.apps_of(code).collect();
            assert_eq!(a, b);
            let ra: Vec<ReviewEntry> = incremental.reviews_of(code).collect();
            let rb: Vec<ReviewEntry> = batch.reviews_of(code).collect();
            assert_eq!(ra, rb);
        }
        assert_eq!(incremental.n_review_events(), batch.n_review_events());
    }

    #[test]
    #[should_panic(expected = "install adopted twice")]
    fn double_adoption_rejected() {
        let records = ingest_fixture().into_records();
        let mut s = ColumnarSnapshots::new();
        s.adopt(&records[0]);
        s.adopt(&records[0]);
    }

    #[test]
    fn empty_store_is_well_formed() {
        let s = ColumnarSnapshots::new();
        assert_eq!(s.n_installs(), 0);
        assert_eq!(s.n_apps(), 0);
        assert_eq!(s.n_app_entries(), 0);
        assert_eq!(s.install_code(InstallId(1)), None);
        assert!(s.column_bytes() < 64);
    }
}
