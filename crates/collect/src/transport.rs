//! Byte-stream transports.
//!
//! The frame codec is sans-IO; this module supplies the byte pipes it runs
//! over. [`MemTransport`] is a crossbeam-channel loopback used by unit
//! tests and the deterministic study driver (with optional fault
//! injection); [`TcpTransport`] wraps a real `std::net::TcpStream` and is
//! exercised over loopback by the integration tests and the
//! `live_collection` example — the production path of the real platform
//! (TLS termination aside, which is orthogonal to the protocol).

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A blocking, ordered, reliable byte-stream transport.
pub trait Transport {
    /// Send bytes; blocks until accepted by the transport.
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Receive up to `buf.len()` bytes; returns 0 on a cleanly closed
    /// peer, blocks if no data is available.
    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
}

/// One endpoint of an in-memory duplex pipe.
///
/// Created in pairs by [`MemTransport::pair`]. Optionally corrupts one bit
/// of every `corrupt_every`-th send — used to exercise the codec's CRC
/// path end-to-end.
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Residue of a partially consumed incoming chunk.
    pending: Vec<u8>,
    /// Corrupt one bit in every n-th outgoing chunk (0 = never).
    corrupt_every: usize,
    sends: usize,
}

impl MemTransport {
    /// Create a connected pair of endpoints.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        (
            MemTransport {
                tx: tx_a,
                rx: rx_b,
                pending: Vec::new(),
                corrupt_every: 0,
                sends: 0,
            },
            MemTransport {
                tx: tx_b,
                rx: rx_a,
                pending: Vec::new(),
                corrupt_every: 0,
                sends: 0,
            },
        )
    }

    /// Enable fault injection: flip one bit in every `n`-th outgoing chunk.
    pub fn corrupt_every(&mut self, n: usize) {
        self.corrupt_every = n;
    }

    /// Non-blocking receive used by pollers: `Ok(0)` when no data waits.
    pub fn try_recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.try_recv() {
                Ok(chunk) => self.pending = chunk,
                Err(TryRecvError::Empty) => return Ok(0),
                Err(TryRecvError::Disconnected) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

impl Transport for MemTransport {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.sends += 1;
        let mut chunk = bytes.to_vec();
        if self.corrupt_every > 0
            && self.sends.is_multiple_of(self.corrupt_every)
            && !chunk.is_empty()
        {
            let idx = chunk.len() / 2;
            chunk[idx] ^= 0x40;
        }
        self.tx
            .send(chunk)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone"))
    }

    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.pending = chunk,
                Err(_) => return Ok(0), // peer closed
            }
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

/// TCP-backed transport.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap an established stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream }
    }

    /// Connect to an address.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        Ok(TcpTransport {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }
}

/// Drive a codec until one full message arrives on `transport` (helper for
/// request/response exchanges).
pub fn recv_message(
    transport: &mut impl Transport,
    codec: &mut crate::wire::FrameCodec,
) -> std::io::Result<Option<crate::wire::Message>> {
    loop {
        match codec.try_decode_message() {
            Ok(Some(msg)) => return Ok(Some(msg)),
            Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
        let mut buf = [0u8; 4096];
        let n = transport.recv(&mut buf)?;
        if n == 0 {
            return Ok(None); // peer closed mid-message
        }
        codec.feed(&buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FrameCodec, Message};
    use racket_types::{InstallId, ParticipantId};

    #[test]
    fn mem_pair_round_trip() {
        let (mut a, mut b) = MemTransport::pair();
        a.send(b"hello").unwrap();
        a.send(b" world").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"hel");
        assert_eq!(b.recv(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b" wo");
    }

    #[test]
    fn mem_try_recv_nonblocking() {
        let (mut a, mut b) = MemTransport::pair();
        let mut buf = [0u8; 8];
        assert_eq!(b.try_recv(&mut buf).unwrap(), 0, "empty pipe returns 0");
        a.send(b"x").unwrap();
        assert_eq!(b.try_recv(&mut buf).unwrap(), 1);
    }

    #[test]
    fn message_exchange_over_mem_transport() {
        let (mut client, mut server) = MemTransport::pair();
        let msg = Message::SignIn {
            participant: ParticipantId(111_111),
            install: InstallId(1_000_000_001),
        };
        client.send(&msg.encode()).unwrap();
        let mut codec = FrameCodec::new();
        let got = recv_message(&mut server, &mut codec).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn corruption_injection_breaks_crc() {
        let (mut client, mut server) = MemTransport::pair();
        client.corrupt_every(1); // corrupt every send
        let msg = Message::SignInAck { accepted: true };
        client.send(&msg.encode()).unwrap();
        let mut codec = FrameCodec::new();
        let err = recv_message(&mut server, &mut codec).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn closed_peer_reports_zero() {
        let (a, mut b) = MemTransport::pair();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 0);
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let mut codec = FrameCodec::new();
            let msg = recv_message(&mut t, &mut codec).unwrap().unwrap();
            t.send(&Message::SignInAck { accepted: true }.encode())
                .unwrap();
            msg
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let sent = Message::SignIn {
            participant: ParticipantId(222_222),
            install: InstallId(2_000_000_002),
        };
        client.send(&sent.encode()).unwrap();
        let mut codec = FrameCodec::new();
        let ack = recv_message(&mut client, &mut codec).unwrap().unwrap();
        assert_eq!(ack, Message::SignInAck { accepted: true });
        assert_eq!(handle.join().unwrap(), sent);
    }
}
