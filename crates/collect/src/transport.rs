//! Byte-stream transports and the deterministic fault-injection layer.
//!
//! The frame codec is sans-IO; this module supplies the byte pipes it runs
//! over. [`MemTransport`] is a crossbeam-channel loopback used by unit
//! tests and the deterministic study driver; [`TcpTransport`] wraps a real
//! `std::net::TcpStream` and is exercised over loopback by the integration
//! tests and the `live_collection` example — the production path of the
//! real platform (TLS termination aside, which is orthogonal to the
//! protocol).
//!
//! # Fault injection
//!
//! A [`FaultPlan`] installed on a `MemTransport` endpoint
//! ([`MemTransport::inject_faults`]) perturbs outgoing chunks with a
//! seeded RNG: per-chunk probabilities of drop, duplicate, reorder,
//! truncate-mid-frame, single-bit corruption, connection reset and stall.
//! At most one fault applies per chunk; every decision comes from a
//! SplitMix64 stream derived from the supplied seed, so a chaos run is
//! exactly reproducible. Injected faults are tallied in a
//! [`racket_types::FaultCounters`] readable via
//! [`MemTransport::fault_stats`]. The fault model's semantics (and why a
//! stall is indistinguishable from a drop within one retry deadline) are
//! specified in `PROTOCOL.md`.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use racket_types::FaultCounters;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A blocking, ordered, reliable byte-stream transport.
pub trait Transport {
    /// Send bytes; blocks until accepted by the transport.
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Receive up to `buf.len()` bytes; returns 0 on a cleanly closed
    /// peer, blocks if no data is available.
    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
}

/// SplitMix64 step: the canonical 64-bit finalizer, good enough to drive
/// fault sampling and backoff jitter deterministically.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a SplitMix64 stream.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-chunk fault probabilities for a lossy link.
///
/// Rates are independent probabilities in `[0, 1]`; at most one fault is
/// applied per chunk, chosen by a single uniform draw walked through the
/// rates in declaration order. [`FaultPlan::none`] (the default) disables
/// the fault layer entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability a chunk is silently discarded.
    pub drop: f64,
    /// Probability a chunk is delivered twice.
    pub duplicate: f64,
    /// Probability a chunk is held back and delivered after the next one.
    pub reorder: f64,
    /// Probability a chunk is cut off mid-frame (first half delivered).
    pub truncate: f64,
    /// Probability one bit of a chunk is flipped.
    pub corrupt: f64,
    /// Probability the send fails with `ConnectionReset` (chunk lost, the
    /// sender must reconnect and resume).
    pub disconnect: f64,
    /// Probability a chunk stalls past any receive deadline. Semantically
    /// the link hung: the chunk is never delivered and the peer's timeout
    /// fires — indistinguishable from a drop except in the accounting.
    pub stall: f64,
}

impl FaultPlan {
    /// No faults (the clean-link default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether every rate is zero.
    pub fn is_none(&self) -> bool {
        self.total_rate() == 0.0
    }

    /// Sum of all class rates (the per-chunk fault probability).
    pub fn total_rate(&self) -> f64 {
        self.drop
            + self.duplicate
            + self.reorder
            + self.truncate
            + self.corrupt
            + self.disconnect
            + self.stall
    }

    /// Drop-only profile: ~15% of chunks vanish.
    pub fn drops() -> Self {
        FaultPlan {
            drop: 0.15,
            ..Self::default()
        }
    }

    /// Duplicate-only profile: ~20% of chunks arrive twice.
    pub fn duplicates() -> Self {
        FaultPlan {
            duplicate: 0.20,
            ..Self::default()
        }
    }

    /// Reorder-only profile: ~20% of chunks are delivered late.
    pub fn reorders() -> Self {
        FaultPlan {
            reorder: 0.20,
            ..Self::default()
        }
    }

    /// Truncation-only profile: ~12% of chunks are cut mid-frame.
    pub fn truncations() -> Self {
        FaultPlan {
            truncate: 0.12,
            ..Self::default()
        }
    }

    /// Corruption-only profile: ~15% of chunks get one bit flipped.
    pub fn corruptions() -> Self {
        FaultPlan {
            corrupt: 0.15,
            ..Self::default()
        }
    }

    /// Disconnect-only profile: ~8% of sends reset the connection.
    pub fn disconnects() -> Self {
        FaultPlan {
            disconnect: 0.08,
            ..Self::default()
        }
    }

    /// Stall-only profile: ~12% of chunks hang past the deadline.
    pub fn stalls() -> Self {
        FaultPlan {
            stall: 0.12,
            ..Self::default()
        }
    }

    /// The combined "hostile network" profile: every class at once.
    pub fn hostile() -> Self {
        FaultPlan {
            drop: 0.05,
            duplicate: 0.05,
            reorder: 0.05,
            truncate: 0.04,
            corrupt: 0.04,
            disconnect: 0.03,
            stall: 0.04,
        }
    }
}

/// The fault a single chunk was assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Drop,
    Duplicate,
    Reorder,
    Truncate,
    Corrupt,
    Disconnect,
    Stall,
}

/// Live state of an installed fault plan: the plan, its RNG stream and
/// the running per-class tallies.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    rng: u64,
    stats: FaultCounters,
}

impl FaultState {
    /// Sample the fault (if any) for the next chunk.
    fn sample(&mut self) -> Option<Fault> {
        let r = unit_f64(&mut self.rng);
        let p = &self.plan;
        let mut edge = p.drop;
        if r < edge {
            return Some(Fault::Drop);
        }
        edge += p.duplicate;
        if r < edge {
            return Some(Fault::Duplicate);
        }
        edge += p.reorder;
        if r < edge {
            return Some(Fault::Reorder);
        }
        edge += p.truncate;
        if r < edge {
            return Some(Fault::Truncate);
        }
        edge += p.corrupt;
        if r < edge {
            return Some(Fault::Corrupt);
        }
        edge += p.disconnect;
        if r < edge {
            return Some(Fault::Disconnect);
        }
        edge += p.stall;
        if r < edge {
            return Some(Fault::Stall);
        }
        None
    }
}

/// One endpoint of an in-memory duplex pipe.
///
/// Created in pairs by [`MemTransport::pair`]. Two fault-injection knobs
/// exist: the legacy [`MemTransport::corrupt_every`] (flip one bit of
/// every n-th send; kept for the CRC regression tests) and the full
/// seeded [`FaultPlan`] via [`MemTransport::inject_faults`].
pub struct MemTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Residue of a partially consumed incoming chunk.
    pending: Vec<u8>,
    /// Corrupt one bit in every n-th outgoing chunk (0 = never).
    corrupt_every: usize,
    sends: usize,
    /// Seeded fault-injection state (None = clean link).
    faults: Option<Box<FaultState>>,
    /// A chunk held back by a reorder fault, delivered after the next
    /// successfully sent chunk.
    held: Option<Vec<u8>>,
}

impl MemTransport {
    /// Create a connected pair of endpoints.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (tx_a, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let end = |tx, rx| MemTransport {
            tx,
            rx,
            pending: Vec::new(),
            corrupt_every: 0,
            sends: 0,
            faults: None,
            held: None,
        };
        (end(tx_a, rx_b), end(tx_b, rx_a))
    }

    /// Enable fault injection: flip one bit in every `n`-th outgoing chunk.
    pub fn corrupt_every(&mut self, n: usize) {
        self.corrupt_every = n;
    }

    /// Install a seeded fault plan on this endpoint's *outgoing* direction.
    /// A no-op for [`FaultPlan::none`]. Replaces any previous plan and
    /// resets the fault tallies.
    pub fn inject_faults(&mut self, plan: FaultPlan, seed: u64) {
        self.faults = if plan.is_none() {
            None
        } else {
            Some(Box::new(FaultState {
                plan,
                rng: seed,
                stats: FaultCounters::default(),
            }))
        };
    }

    /// Faults injected by this endpoint so far (zeros on a clean link).
    pub fn fault_stats(&self) -> FaultCounters {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Discard everything in flight towards this endpoint plus any chunk
    /// held back by a reorder fault — the transport half of a simulated
    /// reconnect (both endpoints of the pair must purge). Fault RNG state
    /// and tallies survive, so a chaos run stays on one deterministic
    /// stream across reconnects.
    pub fn purge(&mut self) {
        self.pending.clear();
        self.held = None;
        while self.rx.try_recv().is_ok() {}
    }

    /// Non-blocking receive used by pollers.
    ///
    /// Returns `Err(WouldBlock)` when no data is waiting but the peer is
    /// still connected (a stall, from the caller's perspective), and
    /// `Ok(0)` only for a disconnected peer (clean close) — callers can
    /// tell the two apart, unlike the pre-v2 behaviour that returned
    /// `Ok(0)` for both.
    pub fn try_recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.try_recv() {
                Ok(chunk) => self.pending = chunk,
                Err(TryRecvError::Empty) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "no data waiting",
                    ))
                }
                Err(TryRecvError::Disconnected) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }

    /// Whether bytes are waiting to be received — the readiness probe the
    /// async plane's poller calls once per connection per round. A `true`
    /// is definitive (residue or a queued chunk exists); a `false` may be
    /// stale by the next instruction, which level-triggered polling
    /// tolerates (the next round sees it).
    pub fn has_incoming(&self) -> bool {
        !self.pending.is_empty() || !self.rx.is_empty()
    }

    /// Blocking receive with a timeout: the async client's reply wait.
    ///
    /// Like [`MemTransport::try_recv`] but parks on the channel's condvar
    /// up to `timeout` when nothing is waiting, so a client thread waiting
    /// for a reply from an async-plane worker costs no CPU while it waits.
    /// Returns `Err(WouldBlock)` on timeout with a live peer and `Ok(0)`
    /// for a disconnected peer.
    pub fn recv_deadline(
        &mut self,
        buf: &mut [u8],
        timeout: std::time::Duration,
    ) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.recv_timeout(timeout) {
                Ok(chunk) => self.pending = chunk,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "no data within deadline",
                    ))
                }
                Err(RecvTimeoutError::Disconnected) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }

    /// Push one chunk into the channel, flushing any reorder-held chunk
    /// behind it.
    fn deliver(&mut self, chunk: Vec<u8>) -> std::io::Result<()> {
        let gone = |_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone");
        self.tx.send(chunk).map_err(gone)?;
        if let Some(held) = self.held.take() {
            self.tx.send(held).map_err(gone)?;
        }
        Ok(())
    }
}

impl Transport for MemTransport {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.sends += 1;
        let mut chunk = bytes.to_vec();
        if self.corrupt_every > 0
            && self.sends.is_multiple_of(self.corrupt_every)
            && !chunk.is_empty()
        {
            let idx = chunk.len() / 2;
            chunk[idx] ^= 0x40;
        }
        let Some(faults) = self.faults.as_mut() else {
            return self.deliver(chunk);
        };
        match faults.sample() {
            None => self.deliver(chunk),
            Some(Fault::Drop) => {
                faults.stats.dropped += 1;
                Ok(())
            }
            Some(Fault::Stall) => {
                faults.stats.stalled += 1;
                Ok(())
            }
            Some(Fault::Duplicate) => {
                faults.stats.duplicated += 1;
                self.deliver(chunk.clone())?;
                self.deliver(chunk)
            }
            Some(Fault::Reorder) => {
                faults.stats.reordered += 1;
                // Hold this chunk; it rides behind the next delivery. A
                // second reorder before then releases the first hold so at
                // most one chunk is ever in the late slot.
                if let Some(prev) = self.held.take() {
                    self.tx.send(prev).map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer gone")
                    })?;
                }
                self.held = Some(chunk);
                Ok(())
            }
            Some(Fault::Truncate) => {
                faults.stats.truncated += 1;
                let keep = (chunk.len() / 2).max(1).min(chunk.len());
                chunk.truncate(keep);
                self.deliver(chunk)
            }
            Some(Fault::Corrupt) => {
                faults.stats.corrupted += 1;
                if !chunk.is_empty() {
                    let idx = (splitmix64(&mut faults.rng) as usize) % chunk.len();
                    chunk[idx] ^= 0x40;
                }
                self.deliver(chunk)
            }
            Some(Fault::Disconnect) => {
                faults.stats.disconnected += 1;
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected connection reset",
                ))
            }
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.pending = chunk,
                Err(_) => return Ok(0), // peer closed
            }
        }
        let n = buf.len().min(self.pending.len());
        buf[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

/// TCP-backed transport.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap an established stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream }
    }

    /// Connect to an address.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        Ok(TcpTransport {
            stream: TcpStream::connect(addr)?,
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }
}

/// Drive a codec until one full message arrives on `transport` (helper for
/// request/response exchanges).
pub fn recv_message(
    transport: &mut impl Transport,
    codec: &mut crate::wire::FrameCodec,
) -> std::io::Result<Option<crate::wire::Message>> {
    loop {
        match codec.try_decode_message() {
            Ok(Some(msg)) => return Ok(Some(msg)),
            Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
            }
        }
        let mut buf = [0u8; 4096];
        let n = transport.recv(&mut buf)?;
        if n == 0 {
            return Ok(None); // peer closed mid-message
        }
        codec.feed(&buf[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FrameCodec, Message};
    use racket_types::{InstallId, ParticipantId};

    #[test]
    fn mem_pair_round_trip() {
        let (mut a, mut b) = MemTransport::pair();
        a.send(b"hello").unwrap();
        a.send(b" world").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b"hel");
        assert_eq!(b.recv(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"lo");
        assert_eq!(b.recv(&mut buf).unwrap(), 3);
        assert_eq!(&buf, b" wo");
    }

    #[test]
    fn mem_try_recv_nonblocking() {
        let (mut a, mut b) = MemTransport::pair();
        let mut buf = [0u8; 8];
        assert_eq!(
            b.try_recv(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::WouldBlock,
            "empty pipe with live peer is a stall, not a close"
        );
        a.send(b"x").unwrap();
        assert_eq!(b.try_recv(&mut buf).unwrap(), 1);
    }

    #[test]
    fn try_recv_distinguishes_stall_from_disconnect() {
        // Regression test for the pre-v2 ambiguity where `Ok(0)` meant
        // both "empty channel" and "disconnected peer": a stalled but
        // connected peer must surface as `WouldBlock`, a dropped peer as a
        // clean `Ok(0)` close — and buffered data must still drain after
        // the peer is gone.
        let (mut a, mut b) = MemTransport::pair();
        let mut buf = [0u8; 8];
        assert_eq!(
            b.try_recv(&mut buf).unwrap_err().kind(),
            std::io::ErrorKind::WouldBlock
        );
        a.send(b"bye").unwrap();
        drop(a);
        assert_eq!(b.try_recv(&mut buf).unwrap(), 3, "residue drains first");
        assert_eq!(b.try_recv(&mut buf).unwrap(), 0, "then clean close");
        assert_eq!(b.try_recv(&mut buf).unwrap(), 0, "close is sticky");
    }

    #[test]
    fn message_exchange_over_mem_transport() {
        let (mut client, mut server) = MemTransport::pair();
        let msg = Message::SignIn {
            participant: ParticipantId(111_111),
            install: InstallId(1_000_000_001),
        };
        client.send(&msg.encode()).unwrap();
        let mut codec = FrameCodec::new();
        let got = recv_message(&mut server, &mut codec).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn corruption_injection_breaks_crc() {
        let (mut client, mut server) = MemTransport::pair();
        client.corrupt_every(1);
        // A payload long enough that the midpoint bit-flip lands in the
        // payload (a flip in the length field would stall the decoder
        // instead — that recovery path is exercised by the chaos tests).
        let msg = Message::SnapshotUpload {
            install: InstallId(1),
            file_id: 1,
            fast: true,
            payload: vec![0xAA; 64],
        };
        client.send(&msg.encode()).unwrap();
        let mut codec = FrameCodec::new();
        let err = recv_message(&mut server, &mut codec).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    fn drain(t: &mut MemTransport) -> Vec<Vec<u8>> {
        let mut chunks = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            match t.try_recv(&mut buf) {
                Ok(0) => break,
                Ok(n) => chunks.push(buf[..n].to_vec()),
                Err(_) => break, // WouldBlock
            }
        }
        chunks
    }

    #[test]
    fn fault_plan_drop_swallows_chunks() {
        let (mut a, mut b) = MemTransport::pair();
        a.inject_faults(
            FaultPlan {
                drop: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        for _ in 0..5 {
            a.send(b"x").unwrap();
        }
        assert!(drain(&mut b).is_empty());
        assert_eq!(a.fault_stats().dropped, 5);
    }

    #[test]
    fn fault_plan_duplicate_delivers_twice() {
        let (mut a, mut b) = MemTransport::pair();
        a.inject_faults(
            FaultPlan {
                duplicate: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        a.send(b"x").unwrap();
        assert_eq!(drain(&mut b), vec![b"x".to_vec(), b"x".to_vec()]);
        assert_eq!(a.fault_stats().duplicated, 1);
    }

    #[test]
    fn fault_plan_reorder_holds_and_releases() {
        let (mut a, mut b) = MemTransport::pair();
        // Only the first send reorders (seeded stream: make every chunk
        // reorder, then disable to release deterministically).
        a.inject_faults(
            FaultPlan {
                reorder: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        a.send(b"first").unwrap();
        assert!(drain(&mut b).is_empty(), "held chunk not yet delivered");
        assert_eq!(a.fault_stats().reordered, 1);
        // A second reorder releases the first hold.
        a.send(b"second").unwrap();
        assert_eq!(drain(&mut b), vec![b"first".to_vec()]);
        // Purge clears the remaining held chunk.
        a.purge();
        a.inject_faults(FaultPlan::none(), 0);
        a.send(b"third").unwrap();
        assert_eq!(drain(&mut b), vec![b"third".to_vec()]);
    }

    #[test]
    fn fault_plan_truncate_cuts_mid_frame() {
        let (mut a, mut b) = MemTransport::pair();
        a.inject_faults(
            FaultPlan {
                truncate: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        a.send(b"12345678").unwrap();
        assert_eq!(drain(&mut b), vec![b"1234".to_vec()]);
        assert_eq!(a.fault_stats().truncated, 1);
    }

    #[test]
    fn fault_plan_disconnect_surfaces_connection_reset() {
        let (mut a, _b) = MemTransport::pair();
        a.inject_faults(
            FaultPlan {
                disconnect: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        let err = a.send(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(a.fault_stats().disconnected, 1);
    }

    #[test]
    fn fault_plan_corrupt_breaks_crc_detectably() {
        let (mut a, mut b) = MemTransport::pair();
        a.inject_faults(
            FaultPlan {
                corrupt: 1.0,
                ..FaultPlan::none()
            },
            7,
        );
        let msg = Message::SnapshotUpload {
            install: InstallId(1),
            file_id: 1,
            fast: true,
            payload: vec![0xAA; 64],
        };
        a.send(&msg.encode()).unwrap();
        assert_eq!(a.fault_stats().corrupted, 1);
        // Wherever the seeded flip lands — magic, header or payload — the
        // frame must never decode as a *valid* message: the codec either
        // errors out or keeps waiting for bytes that never come (which the
        // retry layer resolves as a timeout).
        let mut codec = FrameCodec::new();
        for chunk in drain(&mut b) {
            codec.feed(&chunk);
        }
        assert_ne!(
            codec.try_decode_message().ok().flatten(),
            Some(msg),
            "corruption must not yield a silently accepted frame"
        );
    }

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (mut a, mut b) = MemTransport::pair();
            a.inject_faults(FaultPlan::hostile(), seed);
            for i in 0..200u32 {
                let _ = a.send(&i.to_le_bytes());
            }
            (a.fault_stats(), drain(&mut b).concat())
        };
        assert_eq!(run(42), run(42), "same seed, same fault stream");
        assert_ne!(
            run(42).0,
            run(43).0,
            "different seeds diverge (with overwhelming probability)"
        );
        let (stats, _) = run(42);
        assert!(stats.total() > 0, "hostile profile injects faults");
    }

    #[test]
    fn closed_peer_reports_zero() {
        let (a, mut b) = MemTransport::pair();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf).unwrap(), 0);
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let mut codec = FrameCodec::new();
            let msg = recv_message(&mut t, &mut codec).unwrap().unwrap();
            t.send(&Message::SignInAck { accepted: true }.encode())
                .unwrap();
            msg
        });
        let mut client = TcpTransport::connect(addr).unwrap();
        let sent = Message::SignIn {
            participant: ParticipantId(222_222),
            install: InstallId(2_000_000_002),
        };
        client.send(&sent.encode()).unwrap();
        let mut codec = FrameCodec::new();
        let ack = recv_message(&mut client, &mut codec).unwrap().unwrap();
        assert_eq!(ack, Message::SignInAck { accepted: true });
        assert_eq!(handle.join().unwrap(), sent);
    }
}
