//! Compact binary line codec for snapshot accumulation files.
//!
//! §3 buffers snapshots into accumulation files before compression and
//! upload. The original implementation wrote one JSON object per line
//! (~150 bytes per fast snapshot); this codec packs the same fields into
//! a length-prefixed binary record (~40 bytes), cutting both the bytes
//! the LZSS stage must chew through and the per-record parse cost on the
//! server by 3–4×.
//!
//! ## Record format
//!
//! ```text
//! ┌────────┬──────────────┬──────────────────┐
//! │ 0xB1   │ len: u32 LE  │ body (len bytes) │
//! └────────┴──────────────┴──────────────────┘
//! ```
//!
//! The leading tag byte doubles as the file-format version marker:
//! legacy accumulation files are JSON lines and always start with `{`
//! (0x7B), so [`SnapshotCollector::deserialize_file`] sniffs the first
//! byte of a file to pick the decoder — old files keep parsing forever,
//! and a future `0xB2` body layout can ride the same dispatch. All
//! multi-byte integers are little-endian; `Option` fields are a presence
//! byte (0/1) followed by the value; `Vec` fields are a `u32` count
//! followed by the elements.
//!
//! The body starts with a kind byte (0 = fast, 1 = slow) and then the
//! snapshot fields in declaration order. `Permission` is encoded as its
//! discriminant (an index into [`Permission::ALL`]); `AccountService`
//! unit variants are a 1-byte tag in declaration order with
//! `Other(tag)` escaping to `0xFF` + `u16`.
//!
//! Every decoder validates: truncation, unknown tags, out-of-range
//! discriminants and trailing garbage all return [`DecodeError`], never
//! panic — the chaos harness feeds this path corrupted payloads.
//!
//! [`SnapshotCollector::deserialize_file`]: crate::SnapshotCollector::deserialize_file

use racket_types::{
    AccountId, AccountService, AndroidId, ApkHash, AppId, FastSnapshot, GoogleId, InstallDelta,
    InstallId, InstalledApp, ParticipantId, Permission, PermissionProfile, Rating,
    RegisteredAccount, ReviewEvent, SimTime, SlowSnapshot, Snapshot,
};

/// Record tag: binary body layout, version 1.
pub const TAG_BINARY_V1: u8 = 0xB1;

const KIND_FAST: u8 = 0;
const KIND_SLOW: u8 = 1;
const DELTA_INSTALLED: u8 = 0;
const DELTA_UNINSTALLED: u8 = 1;
const SERVICE_OTHER: u8 = 0xFF;

/// Why a snapshot file (or record) failed to decode.
#[derive(Debug)]
pub enum DecodeError {
    /// A record or field was cut off mid-stream.
    Truncated,
    /// A structurally invalid value (unknown tag, bad discriminant,
    /// trailing bytes); the payload names the violation.
    Corrupt(&'static str),
    /// A legacy JSON-lines file failed to parse.
    Json(serde_json::Error),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "snapshot record truncated"),
            DecodeError::Corrupt(what) => write!(f, "snapshot record corrupt: {what}"),
            DecodeError::Json(e) => write!(f, "legacy JSON snapshot line: {e:?}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<serde_json::Error> for DecodeError {
    fn from(e: serde_json::Error) -> Self {
        DecodeError::Json(e)
    }
}

// ---------------------------------------------------------------- encode

#[inline]
fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

#[inline]
fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn put_permissions(out: &mut Vec<u8>, perms: &[Permission]) {
    out.extend_from_slice(&(perms.len() as u32).to_le_bytes());
    for &p in perms {
        out.push(p as u8);
    }
}

fn put_installed_app(out: &mut Vec<u8>, app: &InstalledApp) {
    out.extend_from_slice(&app.app.raw().to_le_bytes());
    out.extend_from_slice(&app.install_time.as_secs().to_le_bytes());
    out.extend_from_slice(&app.last_update.as_secs().to_le_bytes());
    put_permissions(out, &app.permissions.requested);
    put_permissions(out, &app.permissions.granted);
    put_permissions(out, &app.permissions.denied);
    out.extend_from_slice(app.apk_hash.bytes());
    out.push(app.stopped as u8);
    out.push(app.preinstalled as u8);
}

/// Append one snapshot as a self-delimiting binary record.
///
/// Appends (never clears), so the per-lane accumulation file is built by
/// encoding each polled snapshot straight into it — no intermediate
/// per-snapshot `Vec`.
pub fn encode_record(snapshot: &Snapshot, out: &mut Vec<u8>) {
    out.push(TAG_BINARY_V1);
    let len_pos = out.len();
    out.extend_from_slice(&[0; 4]); // length backpatched below
    match snapshot {
        Snapshot::Fast(s) => {
            out.push(KIND_FAST);
            out.extend_from_slice(&s.install_id.raw().to_le_bytes());
            out.extend_from_slice(&s.participant_id.raw().to_le_bytes());
            out.extend_from_slice(&s.time.as_secs().to_le_bytes());
            put_opt_u32(out, s.foreground_app.map(|a| a.raw()));
            out.push(s.screen_on as u8);
            out.push(s.battery_pct);
            out.extend_from_slice(&(s.install_events.len() as u32).to_le_bytes());
            for event in &s.install_events {
                match event {
                    InstallDelta::Installed(app) => {
                        out.push(DELTA_INSTALLED);
                        put_installed_app(out, app);
                    }
                    InstallDelta::Uninstalled { app } => {
                        out.push(DELTA_UNINSTALLED);
                        out.extend_from_slice(&app.raw().to_le_bytes());
                    }
                }
            }
        }
        Snapshot::Slow(s) => {
            out.push(KIND_SLOW);
            out.extend_from_slice(&s.install_id.raw().to_le_bytes());
            out.extend_from_slice(&s.participant_id.raw().to_le_bytes());
            put_opt_u64(out, s.android_id.map(|a| a.raw()));
            out.extend_from_slice(&s.time.as_secs().to_le_bytes());
            out.extend_from_slice(&(s.accounts.len() as u32).to_le_bytes());
            for account in &s.accounts {
                out.extend_from_slice(&account.id.raw().to_le_bytes());
                match account.service {
                    AccountService::Other(tag) => {
                        out.push(SERVICE_OTHER);
                        out.extend_from_slice(&tag.to_le_bytes());
                    }
                    service => out.push(service_tag(service)),
                }
                put_opt_u64(out, account.google_id.map(|g| g.raw()));
            }
            out.push(s.save_mode as u8);
            out.extend_from_slice(&(s.stopped_apps.len() as u32).to_le_bytes());
            for app in &s.stopped_apps {
                out.extend_from_slice(&app.raw().to_le_bytes());
            }
            // Review section, appended only when non-empty: review-off
            // records stay byte-identical to the pre-review layout, and
            // the decoder reads the section iff body bytes remain.
            if !s.review_events.is_empty() {
                out.extend_from_slice(&(s.review_events.len() as u32).to_le_bytes());
                for review in &s.review_events {
                    out.extend_from_slice(&review.app.raw().to_le_bytes());
                    out.extend_from_slice(&review.reviewer.raw().to_le_bytes());
                    out.extend_from_slice(&review.time.as_secs().to_le_bytes());
                    out.push(review.rating.stars());
                    out.extend_from_slice(&(review.text.len() as u32).to_le_bytes());
                    out.extend_from_slice(review.text.as_bytes());
                }
            }
        }
    }
    let body_len = (out.len() - len_pos - 4) as u32;
    out[len_pos..len_pos + 4].copy_from_slice(&body_len.to_le_bytes());
}

fn service_tag(service: AccountService) -> u8 {
    use AccountService::*;
    match service {
        Gmail => 0,
        WhatsApp => 1,
        Facebook => 2,
        Telegram => 3,
        Instagram => 4,
        Twitter => 5,
        TikTok => 6,
        Snapchat => 7,
        Viber => 8,
        Imo => 9,
        Skype => 10,
        LinkedIn => 11,
        Outlook => 12,
        Yahoo => 13,
        Samsung => 14,
        Xiaomi => 15,
        Huawei => 16,
        DualSpace => 17,
        Freelancer => 18,
        Easypaisa => 19,
        Other(_) => unreachable!("Other is escaped before dispatch"),
    }
}

fn service_from_tag(tag: u8, r: &mut Reader<'_>) -> Result<AccountService, DecodeError> {
    use AccountService::*;
    Ok(match tag {
        0 => Gmail,
        1 => WhatsApp,
        2 => Facebook,
        3 => Telegram,
        4 => Instagram,
        5 => Twitter,
        6 => TikTok,
        7 => Snapchat,
        8 => Viber,
        9 => Imo,
        10 => Skype,
        11 => LinkedIn,
        12 => Outlook,
        13 => Yahoo,
        14 => Samsung,
        15 => Xiaomi,
        16 => Huawei,
        17 => DualSpace,
        18 => Freelancer,
        19 => Easypaisa,
        SERVICE_OTHER => Other(r.u16()?),
        _ => return Err(DecodeError::Corrupt("unknown account service tag")),
    })
}

// ---------------------------------------------------------------- decode

/// Bounds-checked cursor over a record body.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt("bool byte out of range")),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, DecodeError> {
        Ok(if self.bool()? {
            Some(self.u32()?)
        } else {
            None
        })
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Element count for a Vec field, sanity-capped against the remaining
    /// bytes so corrupt counts cannot trigger huge preallocations.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.data.len() - self.pos {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    fn permissions(&mut self) -> Result<Vec<Permission>, DecodeError> {
        let n = self.count(1)?;
        let mut perms = Vec::with_capacity(n);
        for _ in 0..n {
            let i = self.u8()? as usize;
            let p = *Permission::ALL
                .get(i)
                .ok_or(DecodeError::Corrupt("permission discriminant out of range"))?;
            perms.push(p);
        }
        Ok(perms)
    }

    fn installed_app(&mut self) -> Result<InstalledApp, DecodeError> {
        Ok(InstalledApp {
            app: AppId(self.u32()?),
            install_time: SimTime::from_secs(self.u64()?),
            last_update: SimTime::from_secs(self.u64()?),
            permissions: PermissionProfile {
                requested: self.permissions()?,
                granted: self.permissions()?,
                denied: self.permissions()?,
            },
            apk_hash: ApkHash(self.take(16)?.try_into().expect("16 bytes")),
            stopped: self.bool()?,
            preinstalled: self.bool()?,
        })
    }

    /// Whether unread body bytes remain (optional trailing sections).
    fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    fn review_event(&mut self) -> Result<ReviewEvent, DecodeError> {
        let app = AppId(self.u32()?);
        let reviewer = GoogleId(self.u64()?);
        let time = SimTime::from_secs(self.u64()?);
        let rating =
            Rating::new(self.u8()?).ok_or(DecodeError::Corrupt("review rating out of range"))?;
        let len = self.count(1)?;
        let text = std::str::from_utf8(self.take(len)?)
            .map_err(|_| DecodeError::Corrupt("review text is not UTF-8"))?
            .to_string();
        Ok(ReviewEvent {
            app,
            reviewer,
            time,
            rating,
            text,
        })
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(DecodeError::Corrupt("trailing bytes after record body"))
        }
    }
}

/// Decode one record body (the bytes after the tag + length prefix).
fn decode_body(body: &[u8]) -> Result<Snapshot, DecodeError> {
    let mut r = Reader::new(body);
    let snapshot = match r.u8()? {
        KIND_FAST => {
            let install_id = InstallId(r.u64()?);
            let participant_id = ParticipantId(r.u32()?);
            let time = SimTime::from_secs(r.u64()?);
            let foreground_app = r.opt_u32()?.map(AppId);
            let screen_on = r.bool()?;
            let battery_pct = r.u8()?;
            let n_events = r.count(5)?;
            let mut install_events = Vec::with_capacity(n_events);
            for _ in 0..n_events {
                install_events.push(match r.u8()? {
                    DELTA_INSTALLED => InstallDelta::Installed(r.installed_app()?),
                    DELTA_UNINSTALLED => InstallDelta::Uninstalled {
                        app: AppId(r.u32()?),
                    },
                    _ => return Err(DecodeError::Corrupt("unknown install-delta tag")),
                });
            }
            Snapshot::Fast(FastSnapshot {
                install_id,
                participant_id,
                time,
                foreground_app,
                screen_on,
                battery_pct,
                install_events,
            })
        }
        KIND_SLOW => {
            let install_id = InstallId(r.u64()?);
            let participant_id = ParticipantId(r.u32()?);
            let android_id = r.opt_u64()?.map(AndroidId);
            let time = SimTime::from_secs(r.u64()?);
            let n_accounts = r.count(10)?;
            let mut accounts = Vec::with_capacity(n_accounts);
            for _ in 0..n_accounts {
                let id = AccountId(r.u64()?);
                let tag = r.u8()?;
                let service = service_from_tag(tag, &mut r)?;
                let google_id = r.opt_u64()?.map(GoogleId);
                accounts.push(RegisteredAccount {
                    id,
                    service,
                    google_id,
                });
            }
            let save_mode = r.bool()?;
            let n_stopped = r.count(4)?;
            let mut stopped_apps = Vec::with_capacity(n_stopped);
            for _ in 0..n_stopped {
                stopped_apps.push(AppId(r.u32()?));
            }
            // Optional trailing review section (records written with
            // review collection off — and all pre-review records — end
            // right here).
            let mut review_events = Vec::new();
            if r.has_remaining() {
                let n_reviews = r.count(25)?;
                review_events.reserve(n_reviews);
                for _ in 0..n_reviews {
                    review_events.push(r.review_event()?);
                }
            }
            Snapshot::Slow(SlowSnapshot {
                install_id,
                participant_id,
                android_id,
                time,
                accounts,
                save_mode,
                stopped_apps,
                review_events,
            })
        }
        _ => return Err(DecodeError::Corrupt("unknown snapshot kind")),
    };
    r.done()?;
    Ok(snapshot)
}

/// Decode a whole binary accumulation file (a concatenation of
/// [`encode_record`] outputs) into its snapshots.
pub fn decode_file(data: &[u8]) -> Result<Vec<Snapshot>, DecodeError> {
    // A fast snapshot without events is ~36 bytes of body + 5 of framing.
    let mut snapshots = Vec::with_capacity(data.len() / 40 + 1);
    let mut pos = 0;
    while pos < data.len() {
        if data[pos] != TAG_BINARY_V1 {
            return Err(DecodeError::Corrupt("unknown record tag"));
        }
        if pos + 5 > data.len() {
            return Err(DecodeError::Truncated);
        }
        let len = u32::from_le_bytes(data[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let end = pos + 5 + len;
        if len > data.len() || end > data.len() {
            return Err(DecodeError::Truncated);
        }
        snapshots.push(decode_body(&data[pos + 5..end])?);
        pos = end;
    }
    Ok(snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(events: Vec<InstallDelta>) -> Snapshot {
        Snapshot::Fast(FastSnapshot {
            install_id: InstallId(9_876_543_210),
            participant_id: ParticipantId(123_456),
            time: SimTime::from_secs(86_400),
            foreground_app: Some(AppId(42)),
            screen_on: true,
            battery_pct: 87,
            install_events: events,
        })
    }

    fn slow() -> Snapshot {
        Snapshot::Slow(SlowSnapshot {
            install_id: InstallId(9_876_543_210),
            participant_id: ParticipantId(123_456),
            android_id: Some(AndroidId(0xDEAD_BEEF_CAFE)),
            time: SimTime::from_secs(7_200),
            accounts: vec![
                RegisteredAccount {
                    id: AccountId(1),
                    service: AccountService::Gmail,
                    google_id: Some(GoogleId(77)),
                },
                RegisteredAccount {
                    id: AccountId(2),
                    service: AccountService::Other(901),
                    google_id: None,
                },
            ],
            save_mode: true,
            stopped_apps: vec![AppId(3), AppId(9)],
            review_events: vec![],
        })
    }

    fn slow_with_reviews() -> Snapshot {
        let Snapshot::Slow(mut s) = slow() else {
            unreachable!()
        };
        s.review_events = vec![
            ReviewEvent {
                app: AppId(3),
                reviewer: GoogleId(77),
                time: SimTime::from_secs(7_000),
                rating: Rating::FIVE,
                text: "great app works perfectly".to_string(),
            },
            ReviewEvent {
                app: AppId(9),
                reviewer: GoogleId(78),
                time: SimTime::from_secs(7_100),
                rating: Rating::ONE,
                text: String::new(),
            },
        ];
        Snapshot::Slow(s)
    }

    fn installed() -> InstallDelta {
        InstallDelta::Installed(InstalledApp {
            app: AppId(7),
            install_time: SimTime::from_secs(100),
            last_update: SimTime::from_secs(200),
            permissions: PermissionProfile {
                requested: vec![Permission::Internet, Permission::Camera],
                granted: vec![Permission::Internet],
                denied: vec![Permission::Camera],
            },
            apk_hash: ApkHash([0xAB; 16]),
            stopped: false,
            preinstalled: true,
        })
    }

    fn round_trip(snapshot: &Snapshot) -> Snapshot {
        let mut buf = Vec::new();
        encode_record(snapshot, &mut buf);
        let mut decoded = decode_file(&buf).expect("decodes");
        assert_eq!(decoded.len(), 1);
        decoded.pop().unwrap()
    }

    #[test]
    fn fast_and_slow_round_trip() {
        for s in [
            fast(vec![]),
            fast(vec![
                installed(),
                InstallDelta::Uninstalled { app: AppId(5) },
            ]),
            slow(),
            slow_with_reviews(),
        ] {
            assert_eq!(round_trip(&s), s);
        }
    }

    #[test]
    fn empty_review_list_adds_no_bytes() {
        // A review-off record must be byte-identical to the pre-review
        // layout: the decoder's end-of-body check is the section gate, so
        // the review-on body is the review-off body plus a trailing
        // section.
        let mut without = Vec::new();
        encode_record(&slow(), &mut without);
        let mut with = Vec::new();
        encode_record(&slow_with_reviews(), &mut with);
        assert!(with.len() > without.len());
        assert_eq!(&without[5..], &with[5..without.len()]);
    }

    #[test]
    fn review_truncation_and_corruption_rejected() {
        let mut without = Vec::new();
        encode_record(&slow(), &mut without);
        let mut buf = Vec::new();
        encode_record(&slow_with_reviews(), &mut buf);
        // Any strict prefix of the record body fails loudly — except the
        // one landing exactly at the review-section boundary, which is a
        // valid review-less record by construction of the optional
        // section.
        for cut in 6..buf.len() {
            let mut bad = buf[..cut].to_vec();
            let len = (bad.len() - 5) as u32;
            bad[1..5].copy_from_slice(&len.to_le_bytes());
            if cut == without.len() {
                let decoded = decode_file(&bad).expect("section boundary is a valid record");
                assert_eq!(decoded, vec![slow()]);
            } else {
                assert!(decode_file(&bad).is_err(), "prefix of {cut} bytes decoded");
            }
        }
        // Rating byte out of range.
        let mut bad = buf.clone();
        let rating_pos = without.len() + 4 + 4 + 8 + 8;
        assert_eq!(bad[rating_pos], 5, "rating byte located");
        bad[rating_pos] = 6;
        assert!(decode_file(&bad).is_err());
        // Review text that is not UTF-8.
        let mut bad = buf.clone();
        let text_pos = rating_pos + 1 + 4;
        bad[text_pos] = 0xFF;
        assert!(decode_file(&bad).is_err());
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let s = fast(vec![]);
        let mut buf = Vec::new();
        encode_record(&s, &mut buf);
        let json = serde_json::to_vec(&s).unwrap();
        assert!(
            buf.len() * 3 < json.len(),
            "binary {} vs json {}",
            buf.len(),
            json.len()
        );
    }

    #[test]
    fn every_permission_discriminant_round_trips() {
        // The codec relies on `p as u8` indexing `Permission::ALL`; pin it.
        for (i, &p) in Permission::ALL.iter().enumerate() {
            assert_eq!(p as u8 as usize, i, "{p:?} discriminant moved");
        }
    }

    #[test]
    fn every_account_service_round_trips() {
        for &service in AccountService::consumer_services() {
            let mut s = slow();
            if let Snapshot::Slow(ref mut sl) = s {
                sl.accounts[0].service = service;
            }
            assert_eq!(round_trip(&s), s);
        }
    }

    #[test]
    fn concatenated_records_decode_in_order() {
        let mut buf = Vec::new();
        let snaps = vec![fast(vec![installed()]), slow(), fast(vec![])];
        for s in &snaps {
            encode_record(s, &mut buf);
        }
        assert_eq!(decode_file(&buf).unwrap(), snaps);
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_record(&fast(vec![installed()]), &mut buf);
        let first_record = buf.len(); // a cut here is a valid 1-record file
        encode_record(&slow(), &mut buf);
        for cut in 1..buf.len() {
            if cut == first_record {
                assert_eq!(decode_file(&buf[..cut]).unwrap().len(), 1);
                continue;
            }
            assert!(
                decode_file(&buf[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn corrupt_fields_are_rejected() {
        let mut buf = Vec::new();
        encode_record(&fast(vec![]), &mut buf);
        // Unknown record tag.
        let mut bad = buf.clone();
        bad[0] = 0x7B;
        assert!(decode_file(&bad).is_err());
        // Unknown snapshot kind.
        let mut bad = buf.clone();
        bad[5] = 9;
        assert!(decode_file(&bad).is_err());
        // Absurd length prefix.
        let mut bad = buf.clone();
        bad[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_file(&bad).is_err());
        // Trailing garbage inside the declared body.
        let mut bad = buf.clone();
        bad.push(0);
        let len = (bad.len() - 5) as u32;
        bad[1..5].copy_from_slice(&len.to_le_bytes());
        assert!(decode_file(&bad).is_err());
    }
}
