//! Cryptographic and checksum hashes, implemented from scratch.
//!
//! The platform needs three digests (§3): **SHA-256** for the resilient
//! upload protocol (the server returns the hash of received data and the
//! app deletes its local file only on a match), **MD5** for apk hashes
//! (what the fast snapshot collector reports and VirusTotal keys on), and
//! **CRC32** for wire-frame integrity. All three are pinned against their
//! published test vectors below.

// FIPS 180-4 round constants.
const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const SHA256_INIT: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// One SHA-256 compression round over a 64-byte block. The round loop is
/// unrolled 8-wide with statically rotated registers, so each round is a
/// straight-line dependency chain with no shuffle of the working state.
#[inline]
fn sha256_block(h: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[$i])
                .wrapping_add(w[$i]);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0).wrapping_add(maj);
        }};
    }
    let mut i = 0;
    while i < 64 {
        round!(a, b, c, d, e, f, g, hh, i);
        round!(hh, a, b, c, d, e, f, g, i + 1);
        round!(g, hh, a, b, c, d, e, f, i + 2);
        round!(f, g, hh, a, b, c, d, e, i + 3);
        round!(e, f, g, hh, a, b, c, d, i + 4);
        round!(d, e, f, g, hh, a, b, c, i + 5);
        round!(c, d, e, f, g, hh, a, b, i + 6);
        round!(b, c, d, e, f, g, hh, a, i + 7);
        i += 8;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

/// SHA-256 digest of a byte slice.
///
/// Allocation-free: whole blocks are compressed straight out of `data`,
/// and only the final partial block plus padding goes through a 128-byte
/// stack buffer.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = SHA256_INIT;
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        sha256_block(&mut h, block);
    }

    // Padding: 0x80, zeros, 64-bit big-endian bit length — at most two
    // trailing blocks, built on the stack.
    let rem = blocks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        sha256_block(&mut h, block);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// MD5 digest of a byte slice (RFC 1321).
pub fn md5(data: &[u8]) -> [u8; 16] {
    // Per-round shift amounts.
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5,
        9, 14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10,
        15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    // K[i] = floor(2^32 × |sin(i + 1)|).
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];

    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Padding: 0x80, zeros, 64-bit little-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for block in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let f = f.wrapping_add(a).wrapping_add(K[i]).wrapping_add(m[g]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(f.rotate_left(S[i]));
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// The eight slicing tables for CRC-32, built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; `CRC_TABLES[t]`
/// advances a byte's contribution `t` further positions through the
/// polynomial, which lets the kernel fold 8 input bytes per iteration.
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut n = 0;
    while n < 256 {
        let mut crc = n as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            k += 1;
        }
        tables[0][n] = crc;
        n += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut n = 0;
        while n < 256 {
            let prev = tables[t - 1][n];
            tables[t][n] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            n += 1;
        }
        t += 1;
    }
    tables
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte slice.
///
/// Slicing-by-8: the hot loop consumes 8 bytes per iteration with eight
/// independent table lookups instead of 64 data-dependent shift/XOR steps,
/// ~8–10× the bitwise version's throughput on frame-sized payloads.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

/// Render a digest as lowercase hex.
pub fn to_hex(digest: &[u8]) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_test_vectors() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_padding_boundaries() {
        // Lengths straddling the 55/56-byte padding boundary must not panic
        // and must produce distinct digests.
        let a = sha256(&[0x61; 55]);
        let b = sha256(&[0x61; 56]);
        let c = sha256(&[0x61; 64]);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn md5_test_vectors() {
        assert_eq!(to_hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(to_hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            to_hex(&md5(b"The quick brown fox jumps over the lazy dog")),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
        assert_eq!(
            to_hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
    }

    #[test]
    fn crc32_test_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let data = b"snapshot payload".to_vec();
        let original = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&corrupted),
                    original,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }

    #[test]
    fn crc32_matches_bitwise_reference_at_every_alignment() {
        // The slicing kernel folds 8 bytes at a time; lengths 0..=40 cover
        // every remainder length and several full iterations.
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc: u32 = 0xFFFF_FFFF;
            for &byte in data {
                crc ^= u32::from(byte);
                for _ in 0..8 {
                    let lsb = crc & 1;
                    crc >>= 1;
                    if lsb != 0 {
                        crc ^= 0xEDB8_8320;
                    }
                }
            }
            !crc
        }
        let data: Vec<u8> = (0..40u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), bitwise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn sha256_every_tail_length() {
        // One digest per remainder length 0..=129: covers the 1-block and
        // 2-block padding tails and both sides of the 56-byte boundary.
        let data = [0xA5u8; 130];
        let mut seen = std::collections::HashSet::new();
        for len in 0..=129 {
            assert!(seen.insert(sha256(&data[..len])), "collision at len {len}");
        }
    }

    #[test]
    fn digests_are_deterministic() {
        let data = b"same input";
        assert_eq!(sha256(data), sha256(data));
        assert_eq!(md5(data), md5(data));
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
        assert_eq!(to_hex(&[]), "");
    }
}
