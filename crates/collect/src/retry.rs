//! Client-side retry/backoff state machine for the upload protocol.
//!
//! §3's transfer loop keeps a rotated snapshot file queued until the
//! server acknowledges it with a matching content hash. This module
//! supplies the part the paper leaves implicit: *how* the client survives
//! a flaky link. [`WireLane`] drives one device's protocol session over an
//! in-memory loopback transport (optionally behind a seeded
//! [`FaultPlan`]), retrying every exchange with bounded exponential
//! backoff and jittered, RNG-seeded delays, and reconnecting (purge +
//! fresh sequence-checked codecs) after a connection reset or a poisoned
//! frame stream.
//!
//! Recovery is safe because the protocol is idempotent end to end:
//!
//! * every *transmission* carries a fresh frame sequence number, so the
//!   receiver's strict codec discards duplicated or reordered stale
//!   copies at the frame layer;
//! * the server deduplicates replayed upload files by `(install,
//!   file_id)` and re-acknowledges without re-ingesting, so an upload
//!   whose ack was lost can be retried without double-counting a single
//!   snapshot;
//! * sign-in is idempotent and survives reconnects server-side, so a
//!   resumed session just replays its unacknowledged files.
//!
//! Everything is deterministic given the seed: backoff jitter and fault
//! decisions come from SplitMix64 streams, and no wall-clock time is
//! involved (delays are accounted, not slept — the study driver is a
//! simulation). The full state machine is specified in `PROTOCOL.md`.
//!
//! # Backends
//!
//! A lane runs over one of two backends (`LaneBackend`, chosen at
//! construction):
//!
//! * **Loopback** ([`WireLane::new`]) — the lane owns both transport
//!   endpoints and pumps the server side inline through a caller-supplied
//!   handler closure. Fully deterministic, no threads; the original
//!   synchronous study path.
//! * **Async** ([`WireLane::new_async`]) — the lane owns only the client
//!   half of an [`AsyncConn`] from
//!   [`crate::async_server::AsyncCollectServer::connect`]; replies are
//!   awaited with escalating deadlines and the server side runs on the
//!   async plane's reactor workers. Same state machine, same wire
//!   semantics; reconnect becomes the explicit cross-thread handshake
//!   ([`AsyncConn::request_reset`]).

use crate::async_server::AsyncConn;
use crate::buffer::{DataBuffer, StageTimers};
use crate::transport::{splitmix64, FaultPlan, MemTransport, Transport};
use crate::wire::{self, FrameCodec, Message};
use racket_types::{FaultCounters, InstallId, ParticipantId};
use std::time::{Duration, Instant};

/// Salt separating the server endpoint's fault RNG stream from the
/// client's, so the two directions of one lane fail independently. Shared
/// with the async plane's `connect`, which installs the same two streams
/// on the two ends of a connection.
pub(crate) const SERVER_FAULT_SALT: u64 = 0x9E6C_63D0_3F15_2A85;
/// Salt separating backoff jitter from fault sampling.
const JITTER_SALT: u64 = 0x4CF5_AD43_2745_937F;

/// Async backend: reply deadline for the first attempt of an exchange, in
/// milliseconds. Doubles per retry up to [`ASYNC_REPLY_CAP_MS`] — slow
/// (but alive) workers get more slack before the client retransmits.
const ASYNC_REPLY_BASE_MS: u64 = 4;
/// Async backend: ceiling on any single reply deadline, in milliseconds.
const ASYNC_REPLY_CAP_MS: u64 = 64;

/// Bounded exponential backoff configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Transmissions attempted per exchange before giving up.
    pub max_attempts: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on any single delay, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter width as a fraction of the delay: the sampled delay is
    /// uniform in `delay * [1 - jitter/2, 1 + jitter/2]`.
    pub jitter: f64,
    /// Timeout escalation: after this many consecutive attempts with no
    /// matching reply, tear the connection down and resume fresh. This is
    /// what recovers from a *silently* wedged stream — e.g. a corrupted
    /// length field leaves the peer's decoder waiting for bytes that never
    /// come, which produces timeouts but no decode error. Must be ≥ 1.
    pub reconnect_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            base_backoff_ms: 40,
            max_backoff_ms: 5_000,
            jitter: 0.5,
            reconnect_after: 4,
        }
    }
}

/// Counters describing one lane's retry behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transmissions attempted (first tries and retries combined).
    pub attempts: u64,
    /// Retransmissions after a timeout, decode error or reset.
    pub retries: u64,
    /// Reconnect-and-resume cycles.
    pub reconnects: u64,
    /// Simulated backoff accumulated across retries, in milliseconds.
    pub backoff_ms: u64,
    /// Exchanges abandoned after exhausting the attempt budget.
    pub exhausted: u64,
    /// Acks whose hash did not match the local file (kept for retry).
    pub hash_mismatches: u64,
    /// Upload files acknowledged and deleted.
    pub files_acked: u64,
    /// Duplicate/stale frames discarded by this lane's strict codecs.
    pub stale_frames: u64,
}

impl RetryStats {
    /// Add this lane's counts to the canonical `wire.*` counters of a
    /// registry (see [`racket_types::metrics::keys`]). Lane aggregation
    /// is a plain counter add, so the totals are independent of lane
    /// retirement order.
    pub fn record_to(&self, registry: &racket_obs::Registry) {
        use racket_types::metrics::keys;
        registry.add(keys::UPLOAD_ATTEMPTS, self.attempts);
        registry.add(keys::UPLOAD_RETRIES, self.retries);
        registry.add(keys::RECONNECTS, self.reconnects);
        registry.add(keys::BACKOFF_MS, self.backoff_ms);
        registry.add(keys::EXCHANGES_EXHAUSTED, self.exhausted);
        registry.add(keys::STALE_FRAMES, self.stale_frames);
    }
}

/// Which kind of link a [`WireLane`] runs over.
///
/// Private enum, public concept: the lane's observable protocol behaviour
/// (sequence discipline, retry/backoff, idempotent recovery) is identical
/// across backends; only the mechanics of moving bytes and reconnecting
/// differ. The equivalence is enforced end-to-end by
/// `tests/async_equivalence.rs`.
enum LaneBackend {
    /// The lane owns both endpoints of an in-memory pair and pumps the
    /// server side inline through a handler closure (the deterministic,
    /// thread-free study path).
    Loopback {
        client: MemTransport,
        server_end: MemTransport,
        server_codec: FrameCodec,
        server_seq: u32,
    },
    /// The lane owns the client half of an async-plane connection; the
    /// server half lives on a reactor worker thread.
    Async { conn: AsyncConn },
}

/// One device's protocol session over a fault-injected link.
///
/// With the loopback backend the lane owns both transport endpoints — the
/// study driver is an in-process simulation, so the "server side" of the
/// pipe is pumped by a caller-supplied handler closure
/// (`FnMut(Message) -> Option<Message>`, normally
/// `|m| server.lock().handle(m)`); replies travel back through the same
/// fault layer. Both directions get independent seeded fault streams
/// derived from the lane seed. With the async backend the handler is
/// unused (the async plane's workers handle messages) and replies are
/// awaited with escalating deadlines.
pub struct WireLane {
    backend: LaneBackend,
    client_codec: FrameCodec,
    client_seq: u32,
    install: InstallId,
    participant: ParticipantId,
    policy: RetryPolicy,
    /// SplitMix64 state for backoff jitter.
    jitter_rng: u64,
    stats: RetryStats,
    /// Pooled frame buffer: every transmission (first tries and
    /// retransmissions alike) encodes into this one allocation.
    frame_buf: Vec<u8>,
    /// Delivery sub-stage shards this lane owns: `hash` (ack
    /// verification) and `frame` (wire encoding). The buffer's own
    /// [`StageTimers`] covers serialize + compress.
    pub timers: StageTimers,
}

impl WireLane {
    /// Create a connected lane. `plan` is installed on both directions
    /// with independent RNG streams derived from `seed`; pass
    /// [`FaultPlan::none`] for a clean link.
    pub fn new(
        install: InstallId,
        participant: ParticipantId,
        plan: FaultPlan,
        policy: RetryPolicy,
        seed: u64,
    ) -> Self {
        let (mut client, mut server_end) = MemTransport::pair();
        client.inject_faults(plan, seed);
        server_end.inject_faults(plan, seed ^ SERVER_FAULT_SALT);
        WireLane {
            backend: LaneBackend::Loopback {
                client,
                server_end,
                server_codec: FrameCodec::strict(),
                server_seq: 0,
            },
            client_codec: FrameCodec::strict(),
            client_seq: 0,
            install,
            participant,
            policy,
            jitter_rng: seed ^ JITTER_SALT,
            stats: RetryStats::default(),
            frame_buf: Vec::new(),
            timers: StageTimers::default(),
        }
    }

    /// Create a lane over an async-plane connection (from
    /// [`crate::async_server::AsyncCollectServer::connect`], which
    /// installed the fault plan on both directions). `seed` drives only
    /// the backoff jitter here — pass the same lane seed used for
    /// `connect` so a chaos run stays on comparable streams.
    pub fn new_async(
        install: InstallId,
        participant: ParticipantId,
        policy: RetryPolicy,
        seed: u64,
        conn: AsyncConn,
    ) -> Self {
        WireLane {
            backend: LaneBackend::Async { conn },
            client_codec: FrameCodec::strict(),
            client_seq: 0,
            install,
            participant,
            policy,
            jitter_rng: seed ^ JITTER_SALT,
            stats: RetryStats::default(),
            frame_buf: Vec::new(),
            timers: StageTimers::default(),
        }
    }

    /// The lane's retry counters, including the live codecs' stale-frame
    /// discards. (The async backend counts only client-side discards
    /// here; the server side's are folded in by the worker reports at
    /// plane shutdown.)
    pub fn stats(&self) -> RetryStats {
        let mut s = self.stats;
        s.stale_frames += self.client_codec.stale_discards();
        if let LaneBackend::Loopback { server_codec, .. } = &self.backend {
            s.stale_frames += server_codec.stale_discards();
        }
        s
    }

    /// Faults injected on this lane so far. Loopback lanes report both
    /// directions; async lanes report the client→server direction only
    /// (the server→client direction is tallied by the worker that owns
    /// the connection and recorded at plane shutdown).
    pub fn fault_stats(&self) -> FaultCounters {
        match &self.backend {
            LaneBackend::Loopback {
                client, server_end, ..
            } => {
                let mut f = client.fault_stats();
                f.merge(&server_end.fault_stats());
                f
            }
            LaneBackend::Async { conn } => conn.fault_stats(),
        }
    }

    /// Sign in (with retries). Returns the server's verdict, or `None` if
    /// the exchange exhausted its retry budget.
    pub fn sign_in(
        &mut self,
        handler: &mut impl FnMut(Message) -> Option<Message>,
    ) -> Option<bool> {
        let msg = Message::SignIn {
            participant: self.participant,
            install: self.install,
        };
        let encode = |seq: u32, out: &mut Vec<u8>| msg.encode_seq_into(seq, out);
        match self.request(encode, handler, |m| matches!(m, Message::SignInAck { .. }))? {
            Message::SignInAck { accepted } => Some(accepted),
            _ => unreachable!("matcher admits only SignInAck"),
        }
    }

    /// Upload every pending file in the buffer, retrying each until the
    /// server's hash acknowledgement matches and the buffer deletes it.
    /// Returns compressed bytes transmitted, retransmissions included.
    /// Files whose retry budget is exhausted stay queued — a later call
    /// (next delivery tick or the final flush) resumes them.
    pub fn upload_pending(
        &mut self,
        buffer: &mut DataBuffer,
        handler: &mut impl FnMut(Message) -> Option<Message>,
    ) -> u64 {
        let mut bytes = 0u64;
        // Ids only — payloads stay in the buffer's queue and are borrowed
        // in place per transmission, never cloned into an owned message.
        let ids: Vec<u64> = buffer.pending().map(|f| f.file_id).collect();
        for file_id in ids {
            let len = buffer.file(file_id).map_or(0, |f| f.data.len() as u64);
            let before = self.stats.attempts;
            let acked = self.upload_file(file_id, buffer, handler);
            bytes += len * (self.stats.attempts - before);
            if acked {
                self.stats.files_acked += 1;
            }
        }
        bytes
    }

    /// Upload one file until acknowledged with a matching hash.
    fn upload_file(
        &mut self,
        file_id: u64,
        buffer: &mut DataBuffer,
        handler: &mut impl FnMut(Message) -> Option<Message>,
    ) -> bool {
        let install = self.install;
        // Outer loop: hash-mismatch rounds (an ack that fails the content
        // comparison keeps the file queued; §3's retransmission rule).
        for _ in 0..self.policy.max_attempts {
            let Some(file) = buffer.file(file_id) else {
                return false; // already acknowledged (stale ack raced us)
            };
            let (fast, payload) = (file.fast, file.data.as_slice());
            let encode = |seq: u32, out: &mut Vec<u8>| {
                wire::encode_upload_into(seq, install, file_id, fast, payload, out);
            };
            let want =
                |m: &Message| matches!(m, Message::UploadAck { file_id: id, .. } if *id == file_id);
            let Some(Message::UploadAck {
                file_id: acked_id,
                sha256,
            }) = self.request(encode, handler, want)
            else {
                return false; // budget exhausted
            };
            let start = Instant::now();
            let acked = buffer.acknowledge(acked_id, sha256);
            self.timers.hash.record(start.elapsed().as_nanos() as u64);
            if acked {
                return true;
            }
            self.stats.hash_mismatches += 1;
        }
        self.stats.exhausted += 1;
        false
    }

    /// One request/response exchange with retry, backoff and
    /// reconnect-on-error. `encode` writes the frame for a given sequence
    /// number into the lane's pooled buffer (callers hand it a closure so
    /// upload payloads can be borrowed straight out of the data buffer).
    /// Replies not admitted by `matcher` (stale acks from earlier
    /// exchanges, errors) are discarded.
    fn request(
        &mut self,
        encode: impl Fn(u32, &mut Vec<u8>),
        handler: &mut impl FnMut(Message) -> Option<Message>,
        matcher: impl Fn(&Message) -> bool,
    ) -> Option<Message> {
        for attempt in 1..=self.policy.max_attempts {
            self.stats.attempts += 1;
            if attempt > 1 {
                self.stats.retries += 1;
                self.stats.backoff_ms += self.backoff_delay_ms(attempt - 1);
            }
            // Every transmission takes a fresh sequence number — receivers
            // discard stale copies, and the application layer (file_id
            // dedup) absorbs replays.
            let seq = self.client_seq;
            self.client_seq += 1;
            let start = Instant::now();
            encode(seq, &mut self.frame_buf);
            self.timers.frame.record(start.elapsed().as_nanos() as u64);
            let sent = match &mut self.backend {
                LaneBackend::Loopback { client, .. } => client.send(&self.frame_buf),
                LaneBackend::Async { conn } => conn.send(&self.frame_buf),
            };
            if sent.is_err() {
                self.reconnect();
                continue;
            }
            match self.exchange_replies(handler, attempt) {
                Err(()) => {
                    self.reconnect();
                    continue;
                }
                Ok(replies) => {
                    if let Some(hit) = replies.into_iter().find(|r| matcher(r)) {
                        return Some(hit);
                    }
                    // No reply within the deadline: loss or stall — retry.
                }
            }
            // Timeout escalation: repeated silent attempts suggest a
            // wedged stream (e.g. a corrupted length field has the peer's
            // decoder waiting forever) — reconnect rather than feed it.
            if attempt % self.policy.reconnect_after.max(1) == 0 {
                self.reconnect();
            }
        }
        self.stats.exhausted += 1;
        None
    }

    /// Move the exchange forward after a send: on loopback, pump the
    /// server side through the handler and drain its replies; on async,
    /// await replies up to a per-attempt escalating deadline. Returns the
    /// decoded replies (possibly none — loss or stall); `Err` means a
    /// poisoned frame stream or a reset link (the caller reconnects).
    fn exchange_replies(
        &mut self,
        handler: &mut impl FnMut(Message) -> Option<Message>,
        attempt: u32,
    ) -> Result<Vec<Message>, ()> {
        let WireLane {
            backend,
            client_codec,
            ..
        } = self;
        let mut buf = [0u8; 4096];
        let mut msgs = Vec::new();
        match backend {
            LaneBackend::Loopback {
                client,
                server_end,
                server_codec,
                server_seq,
            } => {
                // Deliver buffered client→server bytes to the handler and
                // send its replies back through the fault layer.
                loop {
                    match server_end.try_recv(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => server_codec.feed(&buf[..n]),
                        Err(_) => break, // WouldBlock: drained
                    }
                }
                loop {
                    match server_codec.try_decode_message() {
                        Ok(None) => break,
                        Ok(Some(msg)) => {
                            if let Some(reply) = handler(msg) {
                                let seq = *server_seq;
                                *server_seq += 1;
                                if server_end.send(&reply.encode_seq(seq)).is_err() {
                                    return Err(());
                                }
                            }
                        }
                        Err(_) => return Err(()),
                    }
                }
                // Drain everything waiting on the client side.
                loop {
                    match client.try_recv(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => client_codec.feed(&buf[..n]),
                        Err(_) => break, // WouldBlock: drained
                    }
                }
                loop {
                    match client_codec.try_decode_message() {
                        Ok(None) => return Ok(msgs),
                        Ok(Some(m)) => msgs.push(m),
                        Err(_) => return Err(()),
                    }
                }
            }
            LaneBackend::Async { conn } => {
                // Await replies from the worker thread. The deadline
                // escalates with the attempt number so a slow-but-alive
                // server eventually gets enough slack; a reply batch
                // returns as soon as anything decodes (the matcher
                // decides whether it settles the exchange).
                let wait_ms = ASYNC_REPLY_BASE_MS
                    .saturating_mul(1u64 << attempt.saturating_sub(1).min(10))
                    .min(ASYNC_REPLY_CAP_MS);
                let deadline = Instant::now() + Duration::from_millis(wait_ms);
                loop {
                    loop {
                        match client_codec.try_decode_message() {
                            Ok(None) => break,
                            Ok(Some(m)) => msgs.push(m),
                            Err(_) => return Err(()),
                        }
                    }
                    if !msgs.is_empty() {
                        return Ok(msgs);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Ok(msgs); // timed out: loss or stall
                    }
                    match conn.recv_deadline(&mut buf, deadline - now) {
                        Ok(0) => return Err(()), // server closed the pipe
                        Ok(n) => client_codec.feed(&buf[..n]),
                        Err(_) => {} // deadline re-checked above
                    }
                }
            }
        }
    }

    /// Simulated reconnect: discard everything in flight, restart both
    /// codecs (fresh per-connection sequence spaces) and resume. The
    /// server keeps the install's sign-in session, so resuming is just
    /// replaying unacknowledged files. On the async backend this runs the
    /// cross-thread handshake ([`AsyncConn::request_reset`]) so the
    /// worker retires its half of the sequence space in step.
    fn reconnect(&mut self) {
        self.stats.reconnects += 1;
        self.stats.stale_frames += self.client_codec.stale_discards();
        match &mut self.backend {
            LaneBackend::Loopback {
                client,
                server_end,
                server_codec,
                server_seq,
            } => {
                self.stats.stale_frames += server_codec.stale_discards();
                client.purge();
                server_end.purge();
                *server_codec = FrameCodec::strict();
                *server_seq = 0;
            }
            LaneBackend::Async { conn } => conn.request_reset(),
        }
        self.client_codec = FrameCodec::strict();
        self.client_seq = 0;
    }

    /// Jittered exponential delay for the n-th retry (1-based), in
    /// milliseconds. Never slept — the study is a simulation — but
    /// accounted, so chaos runs report how long a real deployment would
    /// have waited.
    fn backoff_delay_ms(&mut self, nth_retry: u32) -> u64 {
        let exp = nth_retry.saturating_sub(1).min(20);
        let raw = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.policy.max_backoff_ms);
        let u = (splitmix64(&mut self.jitter_rng) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.policy.jitter / 2.0 + self.policy.jitter * u;
        ((raw as f64 * factor).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CollectorConfig, SnapshotCollector};
    use crate::server::CollectionServer;
    use racket_device::{Device, DeviceModel};
    use racket_types::{AndroidId, ApkHash, AppId, DeviceId, PermissionProfile, SimTime};

    const P: ParticipantId = ParticipantId(123_456);
    const I: InstallId = InstallId(1_000_000_000);

    /// A buffer with ~20 simulated minutes of snapshots rotated into
    /// upload files.
    fn loaded_buffer() -> (DataBuffer, u64) {
        let mut device = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(1));
        for app in 0..4u32 {
            device.install_app(
                AppId(app),
                SimTime::from_secs(u64::from(app)),
                PermissionProfile::default(),
                ApkHash([app as u8; 16]),
            );
        }
        let mut collector = SnapshotCollector::new(CollectorConfig::default(), I, P);
        let mut buffer = DataBuffer::new();
        let mut n_snapshots = 0u64;
        for minute in 0..20 {
            for snap in collector.poll(&device, SimTime::from_mins(minute)) {
                buffer.push(&snap);
                n_snapshots += 1;
            }
            // Force-rotate every minute so the fixture yields many small
            // upload files — more protocol exchanges for faults to hit.
            buffer.flush();
        }
        (buffer, n_snapshots)
    }

    #[test]
    fn clean_lane_uploads_without_retries() {
        let mut server = CollectionServer::new([P]);
        let mut lane = WireLane::new(I, P, FaultPlan::none(), RetryPolicy::default(), 1);
        assert_eq!(lane.sign_in(&mut |m| server.handle(m)), Some(true));
        let (mut buffer, n_snapshots) = loaded_buffer();
        let n_files = buffer.pending_count() as u64;
        let bytes = lane.upload_pending(&mut buffer, &mut |m| server.handle(m));
        assert_eq!(buffer.pending_count(), 0);
        assert!(bytes > 0);
        let s = lane.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(s.reconnects, 0);
        assert_eq!(s.stale_frames, 0);
        assert_eq!(s.files_acked, n_files);
        assert_eq!(lane.fault_stats().total(), 0);
        assert_eq!(server.stats().snapshots, n_snapshots);
        assert_eq!(server.stats().dup_files, 0);
    }

    #[test]
    fn hostile_lane_delivers_every_snapshot_exactly_once() {
        let mut server = CollectionServer::new([P]);
        let mut lane = WireLane::new(I, P, FaultPlan::hostile(), RetryPolicy::default(), 2021);
        assert_eq!(lane.sign_in(&mut |m| server.handle(m)), Some(true));
        let (mut buffer, n_snapshots) = loaded_buffer();
        let n_files = buffer.pending_count() as u64;
        // Keep calling until drained (exhausted files resume, like the
        // study's delivery ticks + final flush).
        for _ in 0..10 {
            lane.upload_pending(&mut buffer, &mut |m| server.handle(m));
            if buffer.pending_count() == 0 {
                break;
            }
        }
        assert_eq!(buffer.pending_count(), 0, "all files eventually acked");
        let s = lane.stats();
        assert!(s.retries > 0, "hostile link must force retries");
        assert!(lane.fault_stats().total() > 0);
        assert_eq!(s.files_acked, n_files);
        // The recovery guarantee: exactly-once ingestion despite replays.
        assert_eq!(server.stats().snapshots, n_snapshots);
        assert_eq!(server.stats().files, n_files);
        let rec = server.record(I).expect("record");
        assert_eq!(rec.n_fast + rec.n_slow, n_snapshots);
    }

    #[test]
    fn lost_acks_force_server_side_dedup() {
        // Faults on the ack direction only would be ideal; with the plan
        // on both directions and a fixed seed, drops still hit acks and
        // the server must re-ack replayed files without re-ingesting.
        let mut server = CollectionServer::new([P]);
        let mut lane = WireLane::new(I, P, FaultPlan::drops(), RetryPolicy::default(), 7);
        assert_eq!(lane.sign_in(&mut |m| server.handle(m)), Some(true));
        let (mut buffer, n_snapshots) = loaded_buffer();
        for _ in 0..10 {
            lane.upload_pending(&mut buffer, &mut |m| server.handle(m));
            if buffer.pending_count() == 0 {
                break;
            }
        }
        assert_eq!(buffer.pending_count(), 0);
        assert_eq!(
            server.stats().snapshots,
            n_snapshots,
            "dedup prevents double counting"
        );
        assert!(
            server.stats().dup_files > 0,
            "seed 7 drops at least one ack, forcing a replay"
        );
    }

    fn start_async(
        plan: FaultPlan,
        seed: u64,
    ) -> (
        crate::async_server::AsyncCollectServer,
        std::sync::Arc<crate::shard::ShardedIngest>,
        WireLane,
    ) {
        use crate::async_server::{AsyncCollectServer, AsyncServerConfig};
        let sharded = std::sync::Arc::new(crate::shard::ShardedIngest::new(4));
        let srv = AsyncCollectServer::start(
            [P],
            std::sync::Arc::clone(&sharded),
            AsyncServerConfig {
                workers: 1,
                ..AsyncServerConfig::default()
            },
        );
        let conn = srv.connect(plan, seed);
        let lane = WireLane::new_async(I, P, RetryPolicy::default(), seed, conn);
        (srv, sharded, lane)
    }

    /// The handler is unused on the async backend; the worker replies.
    fn no_handler(_: Message) -> Option<Message> {
        unreachable!("async lanes never invoke the loopback handler")
    }

    #[test]
    fn clean_async_lane_delivers_through_the_worker() {
        let (srv, sharded, mut lane) = start_async(FaultPlan::none(), 11);
        assert_eq!(lane.sign_in(&mut no_handler), Some(true));
        let (mut buffer, n_snapshots) = loaded_buffer();
        let n_files = buffer.pending_count() as u64;
        for _ in 0..10 {
            lane.upload_pending(&mut buffer, &mut no_handler);
            if buffer.pending_count() == 0 {
                break;
            }
        }
        assert_eq!(buffer.pending_count(), 0, "all files acked");
        assert_eq!(lane.stats().files_acked, n_files);
        let registry = racket_obs::Registry::new();
        let stats = srv.shutdown(&registry);
        assert_eq!(stats.sign_ins, 1);
        assert_eq!(stats.files, n_files);
        assert_eq!(sharded.snapshots_ingested(), n_snapshots);
    }

    #[test]
    fn hostile_async_lane_delivers_every_snapshot_exactly_once() {
        let (srv, sharded, mut lane) = start_async(FaultPlan::hostile(), 2021);
        assert_eq!(lane.sign_in(&mut no_handler), Some(true));
        let (mut buffer, n_snapshots) = loaded_buffer();
        let n_files = buffer.pending_count() as u64;
        for _ in 0..20 {
            lane.upload_pending(&mut buffer, &mut no_handler);
            if buffer.pending_count() == 0 {
                break;
            }
        }
        assert_eq!(buffer.pending_count(), 0, "all files eventually acked");
        assert!(lane.stats().retries > 0, "hostile link must force retries");
        assert!(lane.fault_stats().total() > 0);
        let registry = racket_obs::Registry::new();
        let stats = srv.shutdown(&registry);
        // The recovery guarantee holds across threads: exactly-once
        // ingestion despite replays, resets and reconnect handshakes.
        assert_eq!(stats.files, n_files);
        assert_eq!(sharded.snapshots_ingested(), n_snapshots);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let mut lane = WireLane::new(
            I,
            P,
            FaultPlan::none(),
            RetryPolicy {
                max_attempts: 16,
                base_backoff_ms: 100,
                max_backoff_ms: 1_000,
                jitter: 0.0,
                reconnect_after: 4,
            },
            9,
        );
        assert_eq!(lane.backoff_delay_ms(1), 100);
        assert_eq!(lane.backoff_delay_ms(2), 200);
        assert_eq!(lane.backoff_delay_ms(3), 400);
        assert_eq!(lane.backoff_delay_ms(5), 1_000, "capped at max");
        assert_eq!(lane.backoff_delay_ms(12), 1_000);
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let delays = |seed: u64| {
            let mut lane = WireLane::new(I, P, FaultPlan::none(), RetryPolicy::default(), seed);
            (1..8).map(|n| lane.backoff_delay_ms(n)).collect::<Vec<_>>()
        };
        assert_eq!(delays(5), delays(5));
        assert_ne!(delays(5), delays(6));
    }
}
