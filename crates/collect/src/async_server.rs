//! The asynchronous collection front end: a reactor-driven server that
//! multiplexes thousands of device connections over a small pool of
//! worker threads.
//!
//! The synchronous paths ([`crate::server::CollectionServer::serve_tcp`],
//! the loopback lane in [`crate::retry`]) dedicate a thread or an inline
//! pump to every connection. That is the right shape for tens of devices
//! and the wrong one for the paper's scale ambition (§5 ingested 58.3M
//! snapshots from a fleet): a million idle installs must not cost a
//! million stacks. This module is the scale path:
//!
//! * [`AsyncCollectServer::start`] spawns a thread-per-core pool of
//!   workers. Each worker owns a [`racket_reactor::Poller`] over its
//!   share of connections, a [`racket_reactor::TimerWheel`] for stall
//!   deadlines and an [`racket_reactor::IdleStrategy`] so an idle fleet
//!   costs no CPU.
//! * [`AsyncCollectServer::connect`] hands out an [`AsyncConn`] — the
//!   client half of an in-memory duplex pair, optionally behind the same
//!   seeded [`FaultPlan`] the chaos suite drives — and registers the
//!   server half with one worker. A connection lives on exactly one
//!   worker for its lifetime, so per-connection frame order is preserved
//!   without any cross-thread coordination.
//! * Decoded messages land in a **bounded per-connection queue**
//!   (admission control). When the queue is full, further uploads are
//!   *load-shed* with a protocol `Error {{ code: 429 }}` reply instead of
//!   buffered without limit — the client's retry loop redelivers them
//!   later, and the end-to-end idempotency contract (fresh frame seqs +
//!   server-side file dedup) makes the shed invisible in the study data.
//!   Sign-ins are never shed: they are tiny, and admission decisions
//!   depend on them.
//! * Sign-in gating and upload dedup live in a sharded admission table
//!   (`Admission`'s internals) so workers only contend on installs that
//!   hash to the same shard; decompression and parsing happen *outside*
//!   every lock, and parsed snapshots feed the same
//!   [`crate::shard::ShardedIngest`] the direct path uses.
//!
//! # Equivalence with the synchronous paths
//!
//! The async plane produces byte-identical study output because nothing
//! order-dependent crosses a connection boundary: one install is one
//! connection is one worker (per-install messages stay sequential), and
//! everything cross-install — shard maps, atomic counters, admission
//! stats — is commutative and idempotent. Timing-dependent quantities
//! (load sheds, stall sweeps, queue depths, duplicate-file re-acks) exist
//! only as observability counters, which are excluded from every output
//! fingerprint. `ARCHITECTURE.md` §8 states the full contract;
//! `tests/async_equivalence.rs` and `tests/backpressure.rs` enforce it.

use crate::collector::SnapshotCollector;
use crate::hash::sha256;
use crate::lzss;
use crate::retry::SERVER_FAULT_SALT;
use crate::server::ServerStats;
use crate::shard::ShardedIngest;
use crate::transport::{FaultPlan, MemTransport, Transport};
use crate::wire::{FrameCodec, Message};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use racket_obs::{LocalHistogram, Registry, SPAN_PREFIX};
use racket_reactor::{IdleStrategy, Poller, Source, TimerWheel, Token};
use racket_types::metrics::keys;
use racket_types::{FaultCounters, InstallId, ParticipantId, Snapshot};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of admission shards (sign-in sets, dedup tables, stats). Sized
/// so that even a full worker pool rarely contends on one lock.
const ADMISSION_SHARDS: usize = 64;

/// Protocol error code for a load-shed upload (the wire-visible half of
/// admission control; see `PROTOCOL.md` §"Concurrent connections").
pub const SHED_ERROR_CODE: u16 = 429;

/// Tuning knobs for the async collection plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsyncServerConfig {
    /// Worker threads (thread-per-core topology; clamped to ≥ 1).
    pub workers: usize,
    /// Bound on each connection's decoded-message queue. Uploads that
    /// would overflow it are load-shed with [`SHED_ERROR_CODE`].
    pub queue_limit: usize,
    /// A connection buffering a partial frame with no progress for this
    /// long (worker-clock milliseconds) is swept: transport purged, fresh
    /// strict codec. Recovers streams wedged by a corrupted length field.
    pub stall_deadline_ms: u64,
    /// Max ready connections serviced per poll round (fairness bound; the
    /// poller's rotating cursor resumes where a truncated round stopped).
    pub poll_budget: usize,
    /// Max queued messages processed per connection per service round, so
    /// one chatty device cannot starve its worker's other connections.
    /// Ignored during shutdown drain (everything queued is processed).
    pub drain_per_conn: usize,
}

impl Default for AsyncServerConfig {
    fn default() -> Self {
        AsyncServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_limit: 64,
            stall_deadline_ms: 50,
            poll_budget: 1024,
            drain_per_conn: 32,
        }
    }
}

/// Client/worker rendezvous for the reconnect handshake.
///
/// A reconnect must atomically retire both sequence spaces of a
/// connection, but the two halves live on different threads. The client
/// bumps `reset_req` and waits (bounded) for the worker to acknowledge;
/// the worker, which checks the flag at the top of every service round,
/// purges its incoming direction, installs a fresh strict codec, resets
/// its outgoing sequence counter and publishes the acknowledged
/// generation in `reset_ack`.
#[derive(Debug, Default)]
struct ConnShared {
    /// Reconnect generation requested by the client.
    reset_req: AtomicU32,
    /// Latest generation the worker has acknowledged.
    reset_ack: AtomicU32,
}

/// The client half of an async-plane connection.
///
/// Handed out by [`AsyncCollectServer::connect`]; the matching server
/// half lives inside one worker's poll set. All methods are plain
/// non-blocking or deadline-bounded byte-pipe operations — the protocol
/// state machine on top of them is the caller's (normally
/// [`crate::retry::WireLane`] in async mode, or a bench client).
pub struct AsyncConn {
    transport: MemTransport,
    shared: Arc<ConnShared>,
}

impl AsyncConn {
    /// Send one frame towards the server. Errors surface injected
    /// connection resets exactly like the loopback lane.
    pub fn send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.transport.send(bytes)
    }

    /// Non-blocking receive (`WouldBlock` when nothing is waiting).
    pub fn try_recv(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.transport.try_recv(buf)
    }

    /// Receive with a deadline: parks on the reply channel up to
    /// `timeout`, so a client awaiting an ack costs no CPU.
    pub fn recv_deadline(&mut self, buf: &mut [u8], timeout: Duration) -> std::io::Result<usize> {
        self.transport.recv_deadline(buf, timeout)
    }

    /// Discard everything in flight towards this endpoint (the client's
    /// transport half of a reconnect).
    pub fn purge(&mut self) {
        self.transport.purge();
    }

    /// Faults injected on the client→server direction so far.
    pub fn fault_stats(&self) -> FaultCounters {
        self.transport.fault_stats()
    }

    /// Run the reconnect handshake: request a server-side reset and wait
    /// (bounded) for the worker to acknowledge it, then purge this end.
    /// After it returns the client must install a fresh strict codec and
    /// restart its sequence numbers at 0 — the worker has done the same.
    ///
    /// The bound (1 s of yields) only matters if the worker is wedged or
    /// gone; the handshake normally completes within one poll round. An
    /// unacknowledged reset is still safe: the worker applies it at its
    /// next service round, and until then the strict codec discards the
    /// client's restarted sequence numbers exactly like stale frames —
    /// the retry loop absorbs the extra round trips.
    pub fn request_reset(&mut self) {
        let generation = self.shared.reset_req.fetch_add(1, Ordering::SeqCst) + 1;
        let deadline = Instant::now() + Duration::from_secs(1);
        while self.shared.reset_ack.load(Ordering::SeqCst) < generation {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
        }
        self.transport.purge();
    }
}

/// The worker-side half of one connection: transport, decode state, the
/// bounded message queue and stall-tracking bookkeeping.
struct Connection {
    transport: MemTransport,
    codec: FrameCodec,
    /// Server→client frame sequence counter.
    out_seq: u32,
    shared: Arc<ConnShared>,
    /// Last reconnect generation this worker acknowledged.
    handled_reset: u32,
    /// Decoded messages awaiting admission (bounded by
    /// [`AsyncServerConfig::queue_limit`]).
    queue: VecDeque<Message>,
    /// `(buffered_bytes, stamp)` while the codec holds a partial frame:
    /// the stall detector's progress marker. A timer expiry whose stamp
    /// and byte count both still match means the stream is wedged.
    wedge: Option<(usize, u64)>,
    /// Stale-frame discards accumulated from retired codec instances.
    stale_accum: u64,
    /// Peer closed its half (drain the queue, then deregister).
    closed: bool,
    /// Pooled reply-frame buffer.
    frame_buf: Vec<u8>,
}

impl Source for Connection {
    fn ready(&mut self) -> bool {
        self.shared.reset_req.load(Ordering::Acquire) != self.handled_reset
            || self.transport.has_incoming()
            || !self.queue.is_empty()
    }
}

/// One admission shard: the sign-in set, the upload dedup table and the
/// protocol stats for the installs hashing here.
#[derive(Default)]
struct AdmShard {
    signed_in: HashSet<InstallId>,
    /// `(install, file_id) → sha256` of every ingested file (the dedup
    /// table that makes upload replays idempotent, PROTOCOL.md §6).
    ingested: HashMap<InstallId, HashMap<u64, [u8; 32]>>,
    stats: ServerStats,
}

/// Shared admission state: participant gating, sharded sign-in/dedup
/// tables, and the ingest sink.
///
/// The lock discipline that keeps the hot path parallel: hashing,
/// decompression and parsing happen on the worker thread *outside* any
/// shard lock; the lock is held only for set/map probes and counter
/// bumps. Per-install sequentiality (one install = one connection = one
/// worker) means the check-then-insert dedup window is race-free without
/// holding the lock across the parse.
struct Admission {
    registered: HashSet<ParticipantId>,
    shards: Vec<Mutex<AdmShard>>,
    sharded: Arc<ShardedIngest>,
}

impl Admission {
    fn new(
        participants: impl IntoIterator<Item = ParticipantId>,
        sharded: Arc<ShardedIngest>,
    ) -> Self {
        Admission {
            registered: participants.into_iter().collect(),
            shards: (0..ADMISSION_SHARDS)
                .map(|_| Mutex::new(AdmShard::default()))
                .collect(),
            sharded,
        }
    }

    fn shard(&self, install: InstallId) -> &Mutex<AdmShard> {
        &self.shards[install.raw() as usize % self.shards.len()]
    }

    /// Handle one admitted message, producing the reply to send (if any).
    /// Mirrors [`crate::server::CollectionServer::handle`] decision for
    /// decision; the differences are purely structural (sharded state,
    /// scratch owned by the worker, ingest through [`ShardedIngest`]).
    fn handle(&self, msg: Message, scratch: &mut Vec<u8>) -> Option<Message> {
        match msg {
            Message::SignIn {
                participant,
                install,
            } => {
                let accepted = participant.is_valid() && self.registered.contains(&participant);
                let mut shard = self.shard(install).lock();
                if accepted {
                    if shard.signed_in.insert(install) {
                        shard.stats.sign_ins += 1;
                    }
                } else {
                    shard.stats.rejected_sign_ins += 1;
                }
                Some(Message::SignInAck { accepted })
            }
            Message::SnapshotUpload {
                install,
                file_id,
                fast: _,
                payload,
            } => Some(self.handle_upload(install, file_id, &payload, scratch)),
            // Acks and errors addressed to clients are ignored, as on the
            // synchronous server.
            Message::SignInAck { .. } | Message::UploadAck { .. } | Message::Error { .. } => None,
        }
    }

    fn handle_upload(
        &self,
        install: InstallId,
        file_id: u64,
        payload: &[u8],
        scratch: &mut Vec<u8>,
    ) -> Message {
        // Hash exactly what was received, outside any lock.
        let digest = sha256(payload);
        {
            let mut shard = self.shard(install).lock();
            if !shard.signed_in.contains(&install) {
                return Message::Error {
                    code: 401,
                    detail: "install not signed in".into(),
                };
            }
            if shard
                .ingested
                .get(&install)
                .and_then(|files| files.get(&file_id))
                == Some(&digest)
            {
                // Replay of an already-ingested file (the ack was lost):
                // re-acknowledge without re-ingesting.
                shard.stats.dup_files += 1;
                return Message::UploadAck {
                    file_id,
                    sha256: digest,
                };
            }
        }
        // Decompress + parse outside the lock; only the bookkeeping
        // re-acquires it.
        match lzss::decompress_into(payload, scratch)
            .map_err(|e| e.to_string())
            .and_then(|()| SnapshotCollector::deserialize_file(scratch).map_err(|e| e.to_string()))
        {
            Ok(snapshots) => {
                self.ingest_file(&snapshots);
                let mut shard = self.shard(install).lock();
                shard.stats.files += 1;
                shard
                    .ingested
                    .entry(install)
                    .or_default()
                    .insert(file_id, digest);
                Message::UploadAck {
                    file_id,
                    sha256: digest,
                }
            }
            Err(detail) => {
                self.shard(install).lock().stats.bad_uploads += 1;
                Message::Error { code: 400, detail }
            }
        }
    }

    /// Feed one decoded file's snapshots to the sharded ingest in
    /// single-install runs (files are single-install in practice; mixed
    /// files still ingest correctly, one batch per run).
    fn ingest_file(&self, snapshots: &[Snapshot]) {
        let mut i = 0;
        while i < snapshots.len() {
            let install = snapshots[i].install_id();
            let mut j = i + 1;
            while j < snapshots.len() && snapshots[j].install_id() == install {
                j += 1;
            }
            self.sharded.ingest_batch(&snapshots[i..j]);
            i = j;
        }
    }
}

/// Per-worker counters and span histograms, returned on join and merged
/// into the study registry at shutdown. Everything here is observability
/// only — none of it enters an output fingerprint.
#[derive(Default)]
struct WorkerReport {
    load_sheds: u64,
    stall_sweeps: u64,
    queue_depth_peak: u64,
    stale_frames: u64,
    faults: FaultCounters,
    accept: LocalHistogram,
    poll: LocalHistogram,
    shed: LocalHistogram,
}

/// One reactor worker: accepts connections from its intake channel,
/// polls them for readiness, decodes/admits/replies, sweeps stalls.
struct Worker {
    intake: Receiver<Connection>,
    stop: Arc<AtomicBool>,
    admission: Arc<Admission>,
    cfg: AsyncServerConfig,
    poller: Poller<Connection>,
    wheel: TimerWheel,
    idle: IdleStrategy,
    /// Pooled decompression scratch shared by every upload this worker
    /// processes.
    scratch: Vec<u8>,
    /// Monotonic stamp generator for stall-timer entries.
    stamp_counter: u64,
    report: WorkerReport,
}

impl Worker {
    fn new(
        intake: Receiver<Connection>,
        stop: Arc<AtomicBool>,
        admission: Arc<Admission>,
        cfg: AsyncServerConfig,
    ) -> Self {
        Worker {
            intake,
            stop,
            admission,
            cfg,
            poller: Poller::new(),
            wheel: TimerWheel::new(256),
            idle: IdleStrategy::default_for_io(),
            scratch: Vec::new(),
            stamp_counter: 0,
            report: WorkerReport::default(),
        }
    }

    fn run(mut self) -> WorkerReport {
        let start = Instant::now();
        let mut ready: Vec<Token> = Vec::new();
        let mut expired: Vec<(Token, u64)> = Vec::new();
        loop {
            let mut progressed = false;
            // Accept newly connected clients into the poll set.
            let accept_start = Instant::now();
            let mut accepted = 0usize;
            while let Ok(conn) = self.intake.try_recv() {
                self.poller.register(conn);
                accepted += 1;
            }
            if accepted > 0 {
                self.report
                    .accept
                    .record(accept_start.elapsed().as_nanos() as u64);
                progressed = true;
            }
            // One poll round over this worker's share of the fleet.
            let now_ms = start.elapsed().as_millis() as u64;
            let poll_start = Instant::now();
            let n_ready = self.poller.poll(&mut ready, self.cfg.poll_budget);
            if n_ready > 0 {
                for &token in &ready {
                    let (progress, close) = self.service(token, now_ms);
                    progressed |= progress;
                    if close {
                        if let Some(conn) = self.poller.deregister(token) {
                            self.retire(conn);
                        }
                    }
                }
                self.report
                    .poll
                    .record(poll_start.elapsed().as_nanos() as u64);
            }
            // Fire stall deadlines.
            self.wheel.advance(now_ms, &mut expired);
            for &(token, stamp) in &expired {
                self.sweep(token, stamp);
            }
            if self.stop.load(Ordering::Acquire) && !progressed && self.intake.is_empty() {
                break;
            }
            if progressed {
                self.idle.reset();
            } else {
                self.idle.idle();
            }
        }
        // Fold the surviving connections' codec/transport tallies in.
        let mut leftovers: Vec<Token> = self.poller.iter_mut().map(|(t, _)| t).collect();
        for token in leftovers.drain(..) {
            if let Some(conn) = self.poller.deregister(token) {
                self.retire(conn);
            }
        }
        self.report
    }

    /// Service one ready connection: reconnect handshake, reads, decode,
    /// admission-bounded queueing (load-shedding overflow uploads), then
    /// a fairness-bounded drain of the queue through admission. Returns
    /// `(made_progress, should_close)`.
    fn service(&mut self, token: Token, now_ms: u64) -> (bool, bool) {
        let Some(conn) = self.poller.get_mut(token) else {
            return (false, false);
        };
        let mut progress = false;
        // Reconnect handshake: retire both sequence spaces, then publish
        // the acknowledged generation so the blocked client proceeds.
        let reset_req = conn.shared.reset_req.load(Ordering::Acquire);
        if reset_req != conn.handled_reset {
            conn.stale_accum += conn.codec.stale_discards();
            conn.transport.purge();
            conn.codec = FrameCodec::strict();
            conn.out_seq = 0;
            conn.wedge = None;
            conn.handled_reset = reset_req;
            conn.shared.reset_ack.store(reset_req, Ordering::Release);
            progress = true;
        }
        // Drain the transport into the codec (bounded for fairness; any
        // remainder keeps the connection ready for the next round).
        let mut buf = [0u8; 4096];
        for _ in 0..256 {
            match conn.transport.try_recv(&mut buf) {
                Ok(0) => {
                    conn.closed = true;
                    break;
                }
                Ok(n) => {
                    conn.codec.feed(&buf[..n]);
                    progress = true;
                }
                Err(_) => break, // WouldBlock: drained
            }
        }
        // Decode everything decodable; queue or shed.
        loop {
            match conn.codec.try_decode_message() {
                Ok(None) => break,
                Ok(Some(msg)) => {
                    progress = true;
                    let sheddable = matches!(msg, Message::SnapshotUpload { .. });
                    if sheddable && conn.queue.len() >= self.cfg.queue_limit {
                        // Admission control: reply 429 instead of
                        // buffering without bound. The client retries
                        // later; idempotency makes the retry safe.
                        let shed_start = Instant::now();
                        self.report.load_sheds += 1;
                        let reply = Message::Error {
                            code: SHED_ERROR_CODE,
                            detail: "upload queue full".into(),
                        };
                        let seq = conn.out_seq;
                        conn.out_seq += 1;
                        reply.encode_seq_into(seq, &mut conn.frame_buf);
                        let _ = conn.transport.send(&conn.frame_buf);
                        self.report
                            .shed
                            .record(shed_start.elapsed().as_nanos() as u64);
                    } else {
                        conn.queue.push_back(msg);
                        self.report.queue_depth_peak =
                            self.report.queue_depth_peak.max(conn.queue.len() as u64);
                    }
                }
                Err(_) => {
                    // Poisoned frame stream (corruption/truncation):
                    // discard it and resynchronize on the client's next
                    // transmission — a fresh strict codec accepts any
                    // continuing sequence number (monotonic acceptance).
                    conn.stale_accum += conn.codec.stale_discards();
                    conn.transport.purge();
                    conn.codec = FrameCodec::strict();
                    conn.wedge = None;
                    progress = true;
                    break;
                }
            }
        }
        // Stall bookkeeping: a partial frame with no byte progress past
        // the deadline will be swept; any progress re-arms the timer.
        let buffered = conn.codec.buffered();
        if buffered > 0 {
            let rearm = match conn.wedge {
                Some((len, _)) => len != buffered,
                None => true,
            };
            if rearm {
                self.stamp_counter += 1;
                conn.wedge = Some((buffered, self.stamp_counter));
                self.wheel.schedule(
                    now_ms + self.cfg.stall_deadline_ms,
                    token,
                    self.stamp_counter,
                );
            }
        } else {
            conn.wedge = None;
        }
        // Admit queued messages, bounded per round for fairness (the
        // shutdown drain processes everything).
        let budget = if self.stop.load(Ordering::Acquire) {
            usize::MAX
        } else {
            self.cfg.drain_per_conn
        };
        let mut served = 0usize;
        while served < budget {
            let Some(msg) = conn.queue.pop_front() else {
                break;
            };
            served += 1;
            progress = true;
            if let Some(reply) = self.admission.handle(msg, &mut self.scratch) {
                let seq = conn.out_seq;
                conn.out_seq += 1;
                reply.encode_seq_into(seq, &mut conn.frame_buf);
                // A failed reply send (injected reset, client gone) is
                // the client's problem to recover: its retry loop times
                // out and retransmits.
                let _ = conn.transport.send(&conn.frame_buf);
            }
        }
        let close = conn.closed && conn.queue.is_empty();
        (progress, close)
    }

    /// Timer expiry: sweep the connection if its wedge marker still
    /// matches (same stamp, same buffered byte count — no progress since
    /// the deadline was armed).
    fn sweep(&mut self, token: Token, stamp: u64) {
        let Some(conn) = self.poller.get_mut(token) else {
            return; // connection retired; lazily cancelled timer
        };
        match conn.wedge {
            Some((len, s)) if s == stamp && conn.codec.buffered() == len => {
                conn.stale_accum += conn.codec.stale_discards();
                conn.transport.purge();
                conn.codec = FrameCodec::strict();
                conn.wedge = None;
                self.report.stall_sweeps += 1;
            }
            _ => {} // progress was made, or a newer wedge owns the timer
        }
    }

    /// Fold a retiring connection's transport and codec tallies into the
    /// worker report.
    fn retire(&mut self, conn: Connection) {
        self.report.stale_frames += conn.stale_accum + conn.codec.stale_discards();
        self.report.faults.merge(&conn.transport.fault_stats());
    }
}

/// The async collection plane: a worker pool plus the shared admission
/// state. See the module docs for the architecture and
/// `ARCHITECTURE.md` §8 for the full contract.
pub struct AsyncCollectServer {
    intakes: Vec<Sender<Connection>>,
    handles: Vec<std::thread::JoinHandle<WorkerReport>>,
    stop: Arc<AtomicBool>,
    admission: Arc<Admission>,
    /// Round-robin cursor for connection placement.
    next: AtomicUsize,
}

impl AsyncCollectServer {
    /// Start the worker pool. `participants` seeds the sign-in gate;
    /// parsed snapshots flow into `sharded` (the caller keeps its own
    /// `Arc` and drains it after [`AsyncCollectServer::shutdown`]).
    pub fn start(
        participants: impl IntoIterator<Item = ParticipantId>,
        sharded: Arc<ShardedIngest>,
        cfg: AsyncServerConfig,
    ) -> Self {
        let admission = Arc::new(Admission::new(participants, sharded));
        let stop = Arc::new(AtomicBool::new(false));
        let workers = cfg.workers.max(1);
        let mut intakes = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded();
            let worker = Worker::new(rx, Arc::clone(&stop), Arc::clone(&admission), cfg);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("collect-worker-{w}"))
                    .spawn(move || worker.run())
                    .expect("spawn collection worker"),
            );
            intakes.push(tx);
        }
        AsyncCollectServer {
            intakes,
            handles,
            stop,
            admission,
            next: AtomicUsize::new(0),
        }
    }

    /// Open one connection, placing its server half on a worker
    /// (round-robin). `plan` is installed on both directions with
    /// independent seeded streams — the client's from `seed`, the
    /// server's from `seed ^ SERVER_FAULT_SALT`, matching the loopback
    /// lane's convention so chaos seeds are comparable across paths.
    pub fn connect(&self, plan: FaultPlan, seed: u64) -> AsyncConn {
        let (mut client, mut server_end) = MemTransport::pair();
        client.inject_faults(plan, seed);
        server_end.inject_faults(plan, seed ^ SERVER_FAULT_SALT);
        let shared = Arc::new(ConnShared::default());
        let conn = Connection {
            transport: server_end,
            codec: FrameCodec::strict(),
            out_seq: 0,
            shared: Arc::clone(&shared),
            handled_reset: 0,
            queue: VecDeque::new(),
            wedge: None,
            stale_accum: 0,
            closed: false,
            frame_buf: Vec::new(),
        };
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.intakes.len();
        assert!(
            self.intakes[w].send(conn).is_ok(),
            "collection worker is running"
        );
        AsyncConn {
            transport: client,
            shared,
        }
    }

    /// Stop the workers (after they drain every queued message), merge
    /// their reports into `registry` (`server/*` spans, `server.*`
    /// counters, server-side fault and stale-frame tallies) and return
    /// the folded protocol stats.
    ///
    /// The returned [`ServerStats`] counts sign-ins, files, dedups and
    /// bad uploads; `snapshots` stays 0 because ingested snapshots are
    /// counted by the [`ShardedIngest`] the caller drains (fold them via
    /// [`crate::server::CollectionServer::add_ingested_snapshots`] or a
    /// shard merge, exactly like the direct path).
    pub fn shutdown(self, registry: &Registry) -> ServerStats {
        self.stop.store(true, Ordering::SeqCst);
        drop(self.intakes);
        let mut totals = WorkerReport::default();
        for handle in self.handles {
            let report = handle.join().expect("collection worker panicked");
            totals.load_sheds += report.load_sheds;
            totals.stall_sweeps += report.stall_sweeps;
            totals.queue_depth_peak = totals.queue_depth_peak.max(report.queue_depth_peak);
            totals.stale_frames += report.stale_frames;
            totals.faults.merge(&report.faults);
            registry
                .histogram(&format!("{SPAN_PREFIX}{}", keys::SPAN_SERVER_ACCEPT))
                .merge_local(&report.accept);
            registry
                .histogram(&format!("{SPAN_PREFIX}{}", keys::SPAN_SERVER_POLL))
                .merge_local(&report.poll);
            registry
                .histogram(&format!("{SPAN_PREFIX}{}", keys::SPAN_SERVER_SHED))
                .merge_local(&report.shed);
        }
        registry.add(keys::SERVER_LOAD_SHED, totals.load_sheds);
        registry.add(keys::SERVER_STALL_SWEEPS, totals.stall_sweeps);
        registry.gauge_set(keys::SERVER_QUEUE_DEPTH_PEAK, totals.queue_depth_peak);
        registry.add(keys::STALE_FRAMES, totals.stale_frames);
        totals.faults.record_to(registry);
        let mut stats = ServerStats::default();
        for shard in &self.admission.shards {
            stats.merge(&shard.lock().stats);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{
        ApkHash, AppId, FastSnapshot, InstallDelta, InstalledApp, PermissionProfile, SimTime,
    };

    const P: ParticipantId = ParticipantId(123_456);
    const I: InstallId = InstallId(1_000_000_000);

    fn test_cfg() -> AsyncServerConfig {
        AsyncServerConfig {
            workers: 1,
            ..AsyncServerConfig::default()
        }
    }

    fn start(cfg: AsyncServerConfig) -> (AsyncCollectServer, Arc<ShardedIngest>) {
        let sharded = Arc::new(ShardedIngest::new(4));
        let srv = AsyncCollectServer::start([P], Arc::clone(&sharded), cfg);
        (srv, sharded)
    }

    /// One compressed single-snapshot upload payload, distinct per `t`.
    fn payload(t: u64) -> Vec<u8> {
        let snap = Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_secs(t),
            foreground_app: Some(AppId(1)),
            screen_on: true,
            battery_pct: 90,
            install_events: vec![InstallDelta::Installed(InstalledApp::fresh(
                AppId(1),
                SimTime::from_secs(0),
                PermissionProfile::default(),
                ApkHash([1; 16]),
            ))],
        });
        lzss::compress(&SnapshotCollector::serialize(&snap))
    }

    /// Drain replies until one decodes or the deadline passes.
    fn recv_reply(
        conn: &mut AsyncConn,
        codec: &mut FrameCodec,
        timeout: Duration,
    ) -> Option<Message> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 4096];
        loop {
            if let Ok(Some(m)) = codec.try_decode_message() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            match conn.recv_deadline(&mut buf, deadline - now) {
                Ok(0) => return None,
                Ok(n) => codec.feed(&buf[..n]),
                Err(_) => {} // deadline re-checked above
            }
        }
    }

    fn sign_in(conn: &mut AsyncConn, codec: &mut FrameCodec, seq: &mut u32) {
        let msg = Message::SignIn {
            participant: P,
            install: I,
        };
        conn.send(&msg.encode_seq(*seq)).unwrap();
        *seq += 1;
        let reply = recv_reply(conn, codec, Duration::from_secs(5)).expect("sign-in ack");
        assert_eq!(reply, Message::SignInAck { accepted: true });
    }

    #[test]
    fn clean_connection_signs_in_and_uploads() {
        let (srv, sharded) = start(test_cfg());
        let mut conn = srv.connect(FaultPlan::none(), 1);
        let mut codec = FrameCodec::strict();
        let mut seq = 0u32;
        sign_in(&mut conn, &mut codec, &mut seq);
        for file_id in 1..=2u64 {
            let data = payload(file_id * 100);
            let expected = sha256(&data);
            let msg = Message::SnapshotUpload {
                install: I,
                file_id,
                fast: true,
                payload: data,
            };
            conn.send(&msg.encode_seq(seq)).unwrap();
            seq += 1;
            let reply = recv_reply(&mut conn, &mut codec, Duration::from_secs(5)).expect("ack");
            assert_eq!(
                reply,
                Message::UploadAck {
                    file_id,
                    sha256: expected
                }
            );
        }
        let registry = Registry::new();
        let stats = srv.shutdown(&registry);
        assert_eq!(stats.sign_ins, 1);
        assert_eq!(stats.files, 2);
        assert_eq!(stats.bad_uploads, 0);
        assert_eq!(sharded.snapshots_ingested(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(keys::SERVER_LOAD_SHED), 0);
        assert_eq!(snap.counter(keys::SERVER_STALL_SWEEPS), 0);
    }

    #[test]
    fn overflowed_queue_sheds_uploads_without_data_loss() {
        let (srv, sharded) = start(AsyncServerConfig {
            queue_limit: 1,
            ..test_cfg()
        });
        let mut conn = srv.connect(FaultPlan::none(), 2);
        let mut codec = FrameCodec::strict();
        let mut seq = 0u32;
        sign_in(&mut conn, &mut codec, &mut seq);
        // Flood far more uploads than the queue admits, then keep
        // retrying whatever was shed until every file is acked.
        let n_files = 32u64;
        let mut unacked: HashSet<u64> = (1..=n_files).collect();
        for round in 0..100 {
            assert!(round < 99, "files should ack within the retry budget");
            let sent = unacked.len();
            for &file_id in &unacked {
                let msg = Message::SnapshotUpload {
                    install: I,
                    file_id,
                    fast: true,
                    payload: payload(file_id * 10),
                };
                conn.send(&msg.encode_seq(seq)).unwrap();
                seq += 1;
            }
            // On a clean link every sent frame gets exactly one reply:
            // an ack if it was admitted, a 429 if it was shed.
            let mut replies = 0;
            while replies < sent {
                let Some(reply) = recv_reply(&mut conn, &mut codec, Duration::from_secs(5)) else {
                    break;
                };
                replies += 1;
                if let Message::UploadAck { file_id, .. } = reply {
                    unacked.remove(&file_id);
                }
            }
            if unacked.is_empty() {
                break;
            }
        }
        let registry = Registry::new();
        let stats = srv.shutdown(&registry);
        // Zero data loss and exactly-once ingest despite the sheds.
        assert_eq!(stats.files, n_files);
        assert_eq!(sharded.snapshots_ingested(), n_files);
        let snap = registry.snapshot();
        assert!(
            snap.counter(keys::SERVER_LOAD_SHED) > 0,
            "a 64-deep flood into a 1-deep queue must shed"
        );
        assert!(snap.gauge(keys::SERVER_QUEUE_DEPTH_PEAK) >= 1);
    }

    #[test]
    fn reconnect_handshake_restarts_both_sequence_spaces() {
        let (srv, _sharded) = start(test_cfg());
        let mut conn = srv.connect(FaultPlan::none(), 3);
        let mut codec = FrameCodec::strict();
        let mut seq = 5u32; // pretend earlier traffic consumed 0..5
        sign_in(&mut conn, &mut codec, &mut seq);
        // Without a handshake, restarting at seq 0 would be discarded by
        // the server's strict codec as stale. The handshake must make it
        // acceptable again.
        conn.request_reset();
        let mut codec = FrameCodec::strict();
        let mut seq = 0u32;
        sign_in(&mut conn, &mut codec, &mut seq);
        let registry = Registry::new();
        let stats = srv.shutdown(&registry);
        assert_eq!(stats.sign_ins, 1, "re-sign-in is idempotent");
    }

    #[test]
    fn wedged_partial_frame_is_stall_swept() {
        let (srv, sharded) = start(AsyncServerConfig {
            stall_deadline_ms: 25,
            ..test_cfg()
        });
        let mut conn = srv.connect(FaultPlan::none(), 4);
        let mut codec = FrameCodec::strict();
        let mut seq = 0u32;
        sign_in(&mut conn, &mut codec, &mut seq);
        // A frame cut off mid-header wedges the server's decoder: it
        // waits for bytes that never come. The stall sweeper must purge
        // and resynchronize without the client reconnecting.
        let data = payload(7);
        let frame = Message::SnapshotUpload {
            install: I,
            file_id: 1,
            fast: true,
            payload: data.clone(),
        }
        .encode_seq(seq);
        seq += 1;
        conn.send(&frame[..frame.len() / 2]).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        // The retransmission (fresh seq) decodes on the swept codec.
        let msg = Message::SnapshotUpload {
            install: I,
            file_id: 1,
            fast: true,
            payload: data,
        };
        conn.send(&msg.encode_seq(seq)).unwrap();
        let reply = recv_reply(&mut conn, &mut codec, Duration::from_secs(5)).expect("ack");
        assert!(matches!(reply, Message::UploadAck { file_id: 1, .. }));
        let registry = Registry::new();
        let stats = srv.shutdown(&registry);
        assert_eq!(stats.files, 1);
        assert_eq!(sharded.snapshots_ingested(), 1);
        assert!(
            registry.snapshot().counter(keys::SERVER_STALL_SWEEPS) >= 1,
            "the wedged stream must be recovered by a sweep"
        );
    }

    #[test]
    fn upload_before_sign_in_is_rejected() {
        let (srv, sharded) = start(test_cfg());
        let mut conn = srv.connect(FaultPlan::none(), 5);
        let mut codec = FrameCodec::strict();
        let msg = Message::SnapshotUpload {
            install: I,
            file_id: 1,
            fast: true,
            payload: payload(1),
        };
        conn.send(&msg.encode_seq(0)).unwrap();
        let reply = recv_reply(&mut conn, &mut codec, Duration::from_secs(5)).expect("reply");
        assert!(matches!(reply, Message::Error { code: 401, .. }));
        let registry = Registry::new();
        let stats = srv.shutdown(&registry);
        assert_eq!(stats.files, 0);
        assert_eq!(sharded.snapshots_ingested(), 0);
    }
}
