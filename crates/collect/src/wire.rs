//! The wire protocol between the RacketStore app and the collection server.
//!
//! The real platform shipped compressed snapshot files over TLS and
//! validated each transfer with a content hash returned by the server
//! (§3, "Data Buffer Module"). This module implements the framing layer:
//! length-prefixed binary frames with a CRC32 trailer, plus the message
//! set — sign-in (participant-code gating), snapshot upload and the hash
//! acknowledgement that lets the app delete its local file.
//!
//! The full byte-level specification (frame layout, fault model,
//! retry/backoff state machine, worked example) lives in `PROTOCOL.md` at
//! the repository root; the summary:
//!
//! ```text
//! +-------+---------+------+-------+--------+----------------+-------+
//! | magic | version | type | seq   | length | payload        | crc32 |
//! | u16   | u8      | u8   | u32   | u32    | length bytes   | u32   |
//! +-------+---------+------+-------+--------+----------------+-------+
//! ```
//!
//! All integers are little-endian. The CRC covers everything from the
//! version byte through the end of the payload (bytes `2..12+length`), so
//! corruption of the type, sequence number or length is detected alongside
//! payload corruption; only the magic itself is outside the CRC (its
//! corruption surfaces as [`WireError::BadMagic`]).
//!
//! `seq` is a per-connection frame sequence number. Every *transmission*
//! (including a retransmission of the same message) carries a fresh,
//! strictly increasing number; a receiver in strict mode
//! ([`FrameCodec::strict`]) accepts a frame iff `seq >=` the next expected
//! value and silently discards the rest as duplicates or stale reordered
//! copies — the frame-layer half of the idempotency contract (the
//! application-layer half is the server's upload-file dedup). Lenient
//! codecs ([`FrameCodec::new`]) ignore `seq`, which is appropriate over
//! transports that already guarantee exactly-once ordered delivery (TCP).
//!
//! [`FrameCodec`] is an incremental (sans-IO) decoder: feed it bytes as
//! they arrive on any transport, pull frames out as they complete.

use crate::hash::crc32;
use bytes::{Buf, BytesMut};
use racket_types::{InstallId, ParticipantId};

/// Frame magic: "RS" (RacketStore).
pub const MAGIC: u16 = 0x5253;
/// Protocol version. Version 2 added the `seq` header field and extended
/// the CRC to cover the header (see `PROTOCOL.md` for the v1 → v2 delta).
pub const VERSION: u8 = 2;
/// Maximum payload size (a rotated fast-snapshot file is ~100 KB before
/// compression; 4 MiB leaves ample slack while bounding memory).
pub const MAX_PAYLOAD: usize = 4 * 1024 * 1024;

/// Fixed header size: magic + version + type + seq + length.
const HEADER: usize = 2 + 1 + 1 + 4 + 4;
/// CRC trailer size.
const TRAILER: usize = 4;
/// Offset of the first CRC-covered byte (the version field).
const CRC_START: usize = 2;

/// A decoded frame: message type byte, sequence number, raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type discriminant.
    pub msg_type: u8,
    /// Per-connection frame sequence number.
    pub seq: u32,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: sign in with the recruitment code. The server
    /// validates the participant ID; data collection is gated on success
    /// (§3 "sign-in interface").
    SignIn {
        /// The 6-digit recruitment code.
        participant: ParticipantId,
        /// The app instance's 10-digit install ID.
        install: InstallId,
    },
    /// Server → client: sign-in verdict.
    SignInAck {
        /// Whether the participant code was recognized.
        accepted: bool,
    },
    /// Client → server: one compressed snapshot accumulation file.
    SnapshotUpload {
        /// The uploading install.
        install: InstallId,
        /// Client-side file identifier (for the matching ack).
        file_id: u64,
        /// Whether this file holds fast (true) or slow snapshots.
        fast: bool,
        /// LZSS-compressed snapshot file contents.
        payload: Vec<u8>,
    },
    /// Server → client: hash acknowledgement. The client recomputes the
    /// hash of what it sent and deletes the local file on a match (§3).
    UploadAck {
        /// Which file is acknowledged.
        file_id: u64,
        /// SHA-256 of the payload *as received by the server*.
        sha256: [u8; 32],
    },
    /// Either direction: protocol error.
    Error {
        /// Numeric error code.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
}

/// Message type discriminants.
mod msg_type {
    pub const SIGN_IN: u8 = 1;
    pub const SIGN_IN_ACK: u8 = 2;
    pub const SNAPSHOT_UPLOAD: u8 = 3;
    pub const UPLOAD_ACK: u8 = 4;
    pub const ERROR: u8 = 5;
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Stream does not start with the protocol magic.
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(usize),
    /// Payload failed its CRC check.
    BadCrc {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// Unknown message type byte.
    UnknownType(u8),
    /// Payload too short / malformed for its message type.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::TooLarge(n) => write!(f, "payload of {n} bytes exceeds limit"),
            WireError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: frame {expected:#010x}, computed {actual:#010x}"
                )
            }
            WireError::UnknownType(t) => write!(f, "unknown message type {t}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Message {
    /// The frame type byte for this message.
    pub fn msg_type(&self) -> u8 {
        match self {
            Message::SignIn { .. } => msg_type::SIGN_IN,
            Message::SignInAck { .. } => msg_type::SIGN_IN_ACK,
            Message::SnapshotUpload { .. } => msg_type::SNAPSHOT_UPLOAD,
            Message::UploadAck { .. } => msg_type::UPLOAD_ACK,
            Message::Error { .. } => msg_type::ERROR,
        }
    }

    /// Append the payload body (without framing) to `p`.
    fn write_payload(&self, p: &mut Vec<u8>) {
        match self {
            Message::SignIn {
                participant,
                install,
            } => {
                p.extend_from_slice(&participant.raw().to_le_bytes());
                p.extend_from_slice(&install.raw().to_le_bytes());
            }
            Message::SignInAck { accepted } => p.push(u8::from(*accepted)),
            Message::SnapshotUpload {
                install,
                file_id,
                fast,
                payload,
            } => {
                p.extend_from_slice(&install.raw().to_le_bytes());
                p.extend_from_slice(&file_id.to_le_bytes());
                p.push(u8::from(*fast));
                p.extend_from_slice(payload);
            }
            Message::UploadAck { file_id, sha256 } => {
                p.extend_from_slice(&file_id.to_le_bytes());
                p.extend_from_slice(sha256);
            }
            Message::Error { code, detail } => {
                p.extend_from_slice(&code.to_le_bytes());
                p.extend_from_slice(detail.as_bytes());
            }
        }
    }

    /// Decode a message from a frame.
    pub fn from_frame(frame: &Frame) -> Result<Message, WireError> {
        let p = frame.payload.as_slice();
        let take_u32 =
            |b: &[u8]| -> u32 { u32::from_le_bytes(b[..4].try_into().expect("4 bytes")) };
        let take_u64 =
            |b: &[u8]| -> u64 { u64::from_le_bytes(b[..8].try_into().expect("8 bytes")) };
        match frame.msg_type {
            msg_type::SIGN_IN => {
                if p.len() != 12 {
                    return Err(WireError::Malformed("sign-in needs 12 bytes"));
                }
                Ok(Message::SignIn {
                    participant: ParticipantId(take_u32(p)),
                    install: InstallId(take_u64(&p[4..])),
                })
            }
            msg_type::SIGN_IN_ACK => {
                if p.len() != 1 {
                    return Err(WireError::Malformed("sign-in ack needs 1 byte"));
                }
                Ok(Message::SignInAck {
                    accepted: p[0] != 0,
                })
            }
            msg_type::SNAPSHOT_UPLOAD => {
                if p.len() < 17 {
                    return Err(WireError::Malformed("upload header needs 17 bytes"));
                }
                Ok(Message::SnapshotUpload {
                    install: InstallId(take_u64(p)),
                    file_id: take_u64(&p[8..]),
                    fast: p[16] != 0,
                    payload: p[17..].to_vec(),
                })
            }
            msg_type::UPLOAD_ACK => {
                if p.len() != 40 {
                    return Err(WireError::Malformed("upload ack needs 40 bytes"));
                }
                let mut sha256 = [0u8; 32];
                sha256.copy_from_slice(&p[8..40]);
                Ok(Message::UploadAck {
                    file_id: take_u64(p),
                    sha256,
                })
            }
            msg_type::ERROR => {
                if p.len() < 2 {
                    return Err(WireError::Malformed("error needs 2 bytes"));
                }
                Ok(Message::Error {
                    code: u16::from_le_bytes([p[0], p[1]]),
                    detail: String::from_utf8_lossy(&p[2..]).into_owned(),
                })
            }
            t => Err(WireError::UnknownType(t)),
        }
    }

    /// Encode a full frame with sequence number 0.
    ///
    /// Convenience for lenient-codec contexts (TCP, one-shot exchanges)
    /// where sequence checking is off; sequenced sessions use
    /// [`Message::encode_seq`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_seq(0)
    }

    /// Encode a full frame: header (with the given sequence number),
    /// payload, CRC trailer. The CRC covers bytes `2..` of the frame up to
    /// the trailer (version, type, seq, length and payload).
    pub fn encode_seq(&self, seq: u32) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_seq_into(seq, &mut out);
        out
    }

    /// Encode a full frame into a caller-supplied buffer (cleared first).
    ///
    /// The payload is written straight into `out` after the header — no
    /// intermediate payload `Vec` — with the length field backpatched once
    /// the payload size is known, then the CRC computed in place. Hot
    /// senders keep one frame buffer per connection and reuse it for every
    /// transmission.
    pub fn encode_seq_into(&self, seq: u32, out: &mut Vec<u8>) {
        frame_into(self.msg_type(), seq, out, |p| self.write_payload(p));
    }
}

/// Frame skeleton writer: header with a length placeholder, payload via
/// `write_payload`, then the backpatched length and the CRC trailer.
fn frame_into(msg_type: u8, seq: u32, out: &mut Vec<u8>, write_payload: impl FnOnce(&mut Vec<u8>)) {
    out.clear();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(msg_type);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // length, backpatched below
    write_payload(out);
    let len = out.len() - HEADER;
    assert!(len <= MAX_PAYLOAD, "payload exceeds protocol limit");
    out[HEADER - 4..HEADER].copy_from_slice(&(len as u32).to_le_bytes());
    let crc = crc32(&out[CRC_START..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encode a snapshot-upload frame from a *borrowed* payload.
///
/// Byte-identical to encoding [`Message::SnapshotUpload`] with the same
/// fields, but the compressed file contents are copied exactly once — from
/// the buffer's queue into the frame — instead of first being cloned into
/// an owned `Message`.
pub fn encode_upload_into(
    seq: u32,
    install: InstallId,
    file_id: u64,
    fast: bool,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    frame_into(msg_type::SNAPSHOT_UPLOAD, seq, out, |p| {
        p.extend_from_slice(&install.raw().to_le_bytes());
        p.extend_from_slice(&file_id.to_le_bytes());
        p.push(u8::from(fast));
        p.extend_from_slice(payload);
    });
}

/// Incremental frame decoder (sans-IO): feed bytes, pull complete frames.
///
/// ```
/// use racket_collect::wire::{FrameCodec, Message};
/// use racket_types::{InstallId, ParticipantId};
///
/// let msg = Message::SignIn {
///     participant: ParticipantId(123_456),
///     install: InstallId(1_000_000_000),
/// };
/// let bytes = msg.encode();
///
/// let mut codec = FrameCodec::new();
/// codec.feed(&bytes[..5]); // partial frame…
/// assert!(codec.try_decode_message().unwrap().is_none());
/// codec.feed(&bytes[5..]); // …completed
/// assert_eq!(codec.try_decode_message().unwrap(), Some(msg));
/// ```
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
    /// `Some(next_accept)` when sequence checking is on: a frame is
    /// accepted iff `frame.seq >= next_accept` (then `next_accept`
    /// becomes `frame.seq + 1`); the rest are discarded as duplicates or
    /// stale reordered copies.
    strict: Option<u32>,
    stale_discards: u64,
}

impl FrameCodec {
    /// Create a lenient codec: sequence numbers are decoded but not
    /// checked. Use over transports with exactly-once ordered delivery.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a sequence-checking codec for one connection: frames whose
    /// sequence number has already been seen (duplicates) or is lower than
    /// a frame already accepted (stale reordered copies) are silently
    /// discarded and counted in [`FrameCodec::stale_discards`].
    pub fn strict() -> Self {
        FrameCodec {
            strict: Some(0),
            ..Self::default()
        }
    }

    /// Append received bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Duplicate or stale frames discarded by strict sequence checking
    /// (always 0 on a lenient codec).
    pub fn stale_discards(&self) -> u64 {
        self.stale_discards
    }

    /// Try to decode the next complete, *accepted* frame. `Ok(None)` means
    /// more bytes are needed. On error the buffer is poisoned and should
    /// be discarded along with the connection (framing is unrecoverable
    /// after corruption).
    pub fn try_decode(&mut self) -> Result<Option<Frame>, WireError> {
        loop {
            let Some(frame) = self.decode_one()? else {
                return Ok(None);
            };
            if let Some(next_accept) = self.strict {
                if frame.seq < next_accept {
                    self.stale_discards += 1;
                    continue; // duplicate or stale reordered copy
                }
                self.strict = Some(frame.seq + 1);
            }
            return Ok(Some(frame));
        }
    }

    /// Decode the next complete frame off the buffer, ignoring sequence
    /// acceptance.
    fn decode_one(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < HEADER {
            return Ok(None);
        }
        let magic = u16::from_le_bytes([self.buf[0], self.buf[1]]);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = self.buf[2];
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let msg_type = self.buf[3];
        let seq = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        let len =
            u32::from_le_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::TooLarge(len));
        }
        let total = HEADER + len + TRAILER;
        if self.buf.len() < total {
            return Ok(None);
        }
        let actual = crc32(&self.buf[CRC_START..HEADER + len]);
        let expected =
            u32::from_le_bytes(self.buf[HEADER + len..total].try_into().expect("4 bytes"));
        if expected != actual {
            return Err(WireError::BadCrc { expected, actual });
        }
        // The payload is copied exactly once (into the frame); the whole
        // frame is then released with one O(1) cursor advance.
        let payload = self.buf[HEADER..HEADER + len].to_vec();
        self.buf.advance(total);
        Ok(Some(Frame {
            msg_type,
            seq,
            payload,
        }))
    }

    /// Decode the next complete *message*.
    pub fn try_decode_message(&mut self) -> Result<Option<Message>, WireError> {
        match self.try_decode()? {
            None => Ok(None),
            Some(frame) => Message::from_frame(&frame).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    fn samples() -> Vec<Message> {
        vec![
            Message::SignIn {
                participant: ParticipantId(123_456),
                install: InstallId(9_876_543_210),
            },
            Message::SignInAck { accepted: true },
            Message::SignInAck { accepted: false },
            Message::SnapshotUpload {
                install: InstallId(1_234_567_890),
                file_id: 42,
                fast: true,
                payload: b"compressed bytes".to_vec(),
            },
            Message::UploadAck {
                file_id: 42,
                sha256: [7; 32],
            },
            Message::Error {
                code: 500,
                detail: "boom".into(),
            },
        ]
    }

    #[test]
    fn round_trip_all_message_types() {
        for msg in samples() {
            let bytes = msg.encode();
            let mut codec = FrameCodec::new();
            codec.feed(&bytes);
            let decoded = codec.try_decode_message().unwrap().expect("complete frame");
            assert_eq!(decoded, msg);
            assert_eq!(codec.buffered(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let msg = Message::SnapshotUpload {
            install: InstallId(1),
            file_id: 7,
            fast: false,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = msg.encode();
        let mut codec = FrameCodec::new();
        for (i, b) in bytes.iter().enumerate() {
            codec.feed(&[*b]);
            let out = codec.try_decode_message().unwrap();
            if i + 1 < bytes.len() {
                assert!(out.is_none(), "frame completed early at byte {i}");
            } else {
                assert_eq!(out, Some(msg.clone()));
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let mut stream = Vec::new();
        for msg in samples() {
            stream.extend_from_slice(&msg.encode());
        }
        let mut codec = FrameCodec::new();
        codec.feed(&stream);
        let mut decoded = Vec::new();
        while let Some(m) = codec.try_decode_message().unwrap() {
            decoded.push(m);
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn corrupted_payload_detected_by_crc() {
        let msg = Message::SnapshotUpload {
            install: InstallId(1),
            file_id: 1,
            fast: true,
            payload: vec![0xAA; 64],
        };
        let mut bytes = msg.encode();
        bytes[HEADER + 10] ^= 0x01; // flip a payload bit
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        assert!(matches!(codec.try_decode(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Message::SignInAck { accepted: true }.encode();
        bytes[0] = 0x00;
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        assert!(matches!(codec.try_decode(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Message::SignInAck { accepted: true }.encode();
        bytes[2] = 99;
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        assert!(matches!(codec.try_decode(), Err(WireError::BadVersion(99))));
    }

    #[test]
    fn oversized_length_rejected_before_buffering() {
        let mut bytes = Message::SignInAck { accepted: true }.encode();
        // Length field sits at bytes 8..12 in the v2 header.
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        assert!(matches!(codec.try_decode(), Err(WireError::TooLarge(_))));
    }

    #[test]
    fn unknown_message_type_rejected() {
        // The type byte is CRC-covered in v2, so a raw flip would fail the
        // CRC first; craft a whole frame with an unknown type and a valid
        // CRC to reach the type check.
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(0xEE); // unknown type
        buf.put_u32_le(0); // seq
        buf.put_u32_le(0); // empty payload
        let crc = crc32(&buf[2..]);
        buf.put_u32_le(crc);
        let mut codec = FrameCodec::new();
        codec.feed(&buf);
        assert!(matches!(
            codec.try_decode_message(),
            Err(WireError::UnknownType(0xEE))
        ));
    }

    #[test]
    fn type_byte_corruption_detected_by_crc() {
        // The complementary v2 guarantee: an in-flight flip of the type
        // byte of a real frame is caught by the header-covering CRC.
        let mut bytes = Message::SignInAck { accepted: true }.encode();
        bytes[3] = 0xEE;
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        assert!(matches!(codec.try_decode(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn malformed_payload_lengths_rejected() {
        // A sign-in frame with an 11-byte payload.
        let payload = vec![0u8; 11];
        let mut buf = BytesMut::new();
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(1); // SIGN_IN
        buf.put_u32_le(0); // seq
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(&payload);
        let crc = crc32(&buf[2..]);
        buf.put_u32_le(crc);
        let mut codec = FrameCodec::new();
        codec.feed(&buf);
        assert!(matches!(
            codec.try_decode_message(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn header_seq_corruption_detected_by_crc() {
        // v2 extends the CRC over the header: flipping a bit of the seq
        // field (byte 4) must fail the CRC, not silently change acceptance.
        let mut bytes = Message::SignInAck { accepted: true }.encode_seq(7);
        bytes[4] ^= 0x10;
        let mut codec = FrameCodec::new();
        codec.feed(&bytes);
        assert!(matches!(codec.try_decode(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn strict_codec_discards_duplicates_and_stale_frames() {
        let a = Message::SignInAck { accepted: true };
        let b = Message::SignInAck { accepted: false };
        let mut codec = FrameCodec::strict();
        // seq 0 accepted, its duplicate discarded, seq 1 accepted.
        codec.feed(&a.encode_seq(0));
        codec.feed(&a.encode_seq(0));
        codec.feed(&b.encode_seq(1));
        assert_eq!(codec.try_decode_message().unwrap(), Some(a.clone()));
        assert_eq!(codec.try_decode_message().unwrap(), Some(b.clone()));
        assert_eq!(codec.try_decode_message().unwrap(), None);
        assert_eq!(codec.stale_discards(), 1);
        // A stale reordered copy (seq 0 after seq 1) is also discarded.
        codec.feed(&a.encode_seq(0));
        assert_eq!(codec.try_decode_message().unwrap(), None);
        assert_eq!(codec.stale_discards(), 2);
    }

    #[test]
    fn strict_codec_accepts_gaps_after_loss() {
        // A dropped frame consumed seq 1; the retransmission carries a
        // fresh seq 2 and must still be accepted (monotonic acceptance,
        // not contiguity).
        let m = Message::SignInAck { accepted: true };
        let mut codec = FrameCodec::strict();
        codec.feed(&m.encode_seq(0));
        codec.feed(&m.encode_seq(2));
        assert!(codec.try_decode_message().unwrap().is_some());
        assert!(codec.try_decode_message().unwrap().is_some());
        assert_eq!(codec.stale_discards(), 0);
    }

    #[test]
    fn lenient_codec_ignores_sequence_numbers() {
        let m = Message::SignInAck { accepted: true };
        let mut codec = FrameCodec::new();
        codec.feed(&m.encode_seq(5));
        codec.feed(&m.encode_seq(5));
        codec.feed(&m.encode_seq(1));
        for _ in 0..3 {
            assert!(codec.try_decode_message().unwrap().is_some());
        }
        assert_eq!(codec.stale_discards(), 0);
    }

    #[test]
    fn borrowed_upload_encoder_matches_owned_message() {
        let payload = b"compressed file bytes".to_vec();
        let msg = Message::SnapshotUpload {
            install: InstallId(77),
            file_id: 9,
            fast: true,
            payload: payload.clone(),
        };
        let mut pooled = Vec::new();
        encode_upload_into(5, InstallId(77), 9, true, &payload, &mut pooled);
        assert_eq!(pooled, msg.encode_seq(5));
    }

    #[test]
    fn pooled_frame_buffer_is_reused_across_encodes() {
        let mut buf = Vec::new();
        let big = Message::SnapshotUpload {
            install: InstallId(1),
            file_id: 1,
            fast: true,
            payload: vec![0xCD; 2048],
        };
        big.encode_seq_into(0, &mut buf);
        let (ptr, cap) = (buf.as_ptr(), buf.capacity());
        // A same-size or smaller frame must not reallocate the buffer.
        big.encode_seq_into(1, &mut buf);
        assert_eq!((buf.as_ptr(), buf.capacity()), (ptr, cap));
        Message::SignInAck { accepted: true }.encode_seq_into(2, &mut buf);
        assert_eq!((buf.as_ptr(), buf.capacity()), (ptr, cap));
        // Each encode replaces the contents (cleared, not appended).
        assert_eq!(buf, Message::SignInAck { accepted: true }.encode_seq(2));
    }

    #[test]
    fn empty_upload_payload_is_legal() {
        let msg = Message::SnapshotUpload {
            install: InstallId(3),
            file_id: 0,
            fast: true,
            payload: Vec::new(),
        };
        let mut codec = FrameCodec::new();
        codec.feed(&msg.encode());
        assert_eq!(codec.try_decode_message().unwrap(), Some(msg));
    }
}
