//! The collection server (the "web app" of Figure 3).
//!
//! Responsibilities, mirroring §3:
//!
//! * **Sign-in**: validate the 6-digit participant code — RacketStore
//!   collects nothing for codes the study never issued;
//! * **Snapshot ingestion**: for each upload, decompress, parse, fold the
//!   snapshots into per-install aggregates, and reply with the SHA-256 of
//!   the received payload so the client can delete its local file;
//! * **Aggregation**: the real backend inserted snapshots into MongoDB and
//!   aggregated at query time; [`InstallRecord`] holds the equivalent
//!   per-install aggregate the measurement and feature pipelines read.
//!
//! [`CollectionServer::serve_tcp`] runs the protocol threaded over real
//! TCP connections (one thread per client, shared state behind a
//! `parking_lot::Mutex`), which the integration tests exercise over
//! loopback.

use crate::collector::SnapshotCollector;
use crate::hash::sha256;
use crate::lzss;
use crate::stream::StreamAggregates;
use crate::wire::{FrameCodec, Message};
use parking_lot::Mutex;
use racket_types::{
    AndroidId, AppId, InstallDelta, InstallId, InstalledApp, ParticipantId, RegisteredAccount,
    ReviewEvent, SimTime, Snapshot, TimeInterval,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Server-side aggregate for one RacketStore install (one install ID).
#[derive(Debug, Clone)]
pub struct InstallRecord {
    /// The reporting install.
    pub install_id: InstallId,
    /// Participant the install signed in as.
    pub participant: ParticipantId,
    /// Android ID if any slow snapshot carried one.
    pub android_id: Option<AndroidId>,
    /// First snapshot time seen.
    pub first_seen: SimTime,
    /// Last snapshot time seen.
    pub last_seen: SimTime,
    /// Fast snapshots received.
    pub n_fast: u64,
    /// Slow snapshots received.
    pub n_slow: u64,
    /// Snapshots received per calendar day.
    pub snapshots_per_day: BTreeMap<u64, u64>,
    /// Foreground observations: app → day → count of fast snapshots with
    /// the app on screen.
    pub foreground: HashMap<AppId, BTreeMap<u64, u64>>,
    /// Latest metadata for every app ever observed installed.
    pub apps: HashMap<AppId, InstalledApp>,
    /// Apps currently installed (as of the latest delta).
    pub installed_now: HashSet<AppId>,
    /// Install events observed (app, time) — *during* monitoring.
    pub install_events: Vec<(AppId, SimTime)>,
    /// Uninstall events observed (app, time).
    pub uninstall_events: Vec<(AppId, SimTime)>,
    /// Latest registered-account list.
    pub accounts: Vec<RegisteredAccount>,
    /// Latest stopped-app list.
    pub stopped_apps: Vec<AppId>,
    /// Reviews reported by slow snapshots, in arrival order (empty unless
    /// the fleet collects reviews).
    pub review_events: Vec<ReviewEvent>,
    /// Per-app streaming aggregates folded at the same program points as
    /// the batch-visible vectors above (see [`crate::stream`]).
    pub stream: StreamAggregates,
}

impl InstallRecord {
    pub(crate) fn new(install_id: InstallId, participant: ParticipantId, t: SimTime) -> Self {
        InstallRecord {
            install_id,
            participant,
            android_id: None,
            first_seen: t,
            last_seen: t,
            n_fast: 0,
            n_slow: 0,
            snapshots_per_day: BTreeMap::new(),
            foreground: HashMap::new(),
            apps: HashMap::new(),
            installed_now: HashSet::new(),
            install_events: Vec::new(),
            uninstall_events: Vec::new(),
            accounts: Vec::new(),
            stopped_apps: Vec::new(),
            review_events: Vec::new(),
            stream: StreamAggregates::new(),
        }
    }

    /// The observed monitoring interval `[first, last]` (half-open at
    /// `last + 1 s` so single-snapshot records are non-degenerate).
    pub fn observed_interval(&self) -> TimeInterval {
        TimeInterval::new(
            self.first_seen,
            self.last_seen + racket_types::SimDuration::from_secs(1),
        )
    }

    /// Days with at least one snapshot.
    pub fn active_days(&self) -> usize {
        self.snapshots_per_day.len()
    }

    /// Average snapshots per active day (Figure 4's y-axis).
    pub fn avg_snapshots_per_day(&self) -> f64 {
        if self.snapshots_per_day.is_empty() {
            return 0.0;
        }
        self.snapshots_per_day.values().sum::<u64>() as f64 / self.snapshots_per_day.len() as f64
    }

    pub(crate) fn ingest(&mut self, snapshot: &Snapshot) {
        let t = snapshot.time();
        self.first_seen = self.first_seen.min(t);
        self.last_seen = self.last_seen.max(t);
        *self.snapshots_per_day.entry(t.day_index()).or_insert(0) += 1;
        match snapshot {
            Snapshot::Fast(f) => {
                self.n_fast += 1;
                if let Some(app) = f.foreground_app {
                    *self
                        .foreground
                        .entry(app)
                        .or_default()
                        .entry(t.day_index())
                        .or_insert(0) += 1;
                    self.stream.note_foreground(app);
                }
                for delta in &f.install_events {
                    match delta {
                        InstallDelta::Installed(info) => {
                            // The very first fast snapshot reports the whole
                            // pre-existing app set; only installs observed
                            // after monitoring began count as events.
                            if info.install_time >= self.first_seen {
                                self.install_events.push((info.app, info.install_time));
                                self.stream.note_install(info.app, info.install_time);
                            }
                            self.installed_now.insert(info.app);
                            self.apps.insert(info.app, info.clone());
                        }
                        InstallDelta::Uninstalled { app } => {
                            self.uninstall_events.push((*app, t));
                            self.stream.note_uninstall(*app, t);
                            self.installed_now.remove(app);
                        }
                    }
                }
            }
            Snapshot::Slow(s) => {
                self.n_slow += 1;
                if s.android_id.is_some() {
                    self.android_id = s.android_id;
                }
                if !s.accounts.is_empty() || self.accounts.is_empty() {
                    self.accounts = s.accounts.clone();
                }
                self.stopped_apps = s.stopped_apps.clone();
                for review in &s.review_events {
                    self.review_events.push(review.clone());
                    self.stream.note_review(
                        review.app,
                        review.reviewer,
                        review.time,
                        review.rating,
                        &review.text,
                    );
                }
            }
        }
    }
}

/// Ingestion statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Installs signed in (distinct installs — a retried sign-in for an
    /// already-signed-in install is idempotent and counted once).
    pub sign_ins: u64,
    /// Sign-ins rejected (bad participant code).
    pub rejected_sign_ins: u64,
    /// Snapshot files ingested (distinct `(install, file_id)` pairs).
    pub files: u64,
    /// Snapshots ingested.
    pub snapshots: u64,
    /// Uploads that failed to decompress or parse.
    pub bad_uploads: u64,
    /// Replayed uploads re-acknowledged without re-ingesting: the file's
    /// `(install, file_id, sha256)` had already been ingested, so the
    /// client's ack was lost in transit. Varies with the fault plan, so it
    /// is *excluded* from the chaos determinism fingerprint.
    pub dup_files: u64,
}

impl ServerStats {
    /// Fold another stats block into this one. Every field is a plain
    /// count, so merging is commutative — the async plane's admission
    /// shards can fold in any order without changing the totals.
    pub fn merge(&mut self, other: &ServerStats) {
        self.sign_ins += other.sign_ins;
        self.rejected_sign_ins += other.rejected_sign_ins;
        self.files += other.files;
        self.snapshots += other.snapshots;
        self.bad_uploads += other.bad_uploads;
        self.dup_files += other.dup_files;
    }

    /// Add these ingestion counts to a registry: the canonical
    /// `ingest.snapshots` / `ingest.dup_files` counters (see
    /// [`racket_types::metrics::keys`]) plus `server.*` counters for the
    /// remaining fields.
    pub fn record_to(&self, registry: &racket_obs::Registry) {
        use racket_types::metrics::keys;
        registry.add(keys::SNAPSHOTS_INGESTED, self.snapshots);
        registry.add(keys::DUP_FILES, self.dup_files);
        registry.add("server.sign_ins", self.sign_ins);
        registry.add("server.rejected_sign_ins", self.rejected_sign_ins);
        registry.add("server.files", self.files);
        registry.add("server.bad_uploads", self.bad_uploads);
    }
}

/// The collection server state.
#[derive(Debug, Default)]
pub struct CollectionServer {
    /// Participant codes issued at recruitment.
    registered: HashSet<ParticipantId>,
    /// Installs that have signed in successfully.
    signed_in: HashSet<InstallId>,
    /// Content hash of every file already ingested, per install — the
    /// dedup table that makes upload replays idempotent (PROTOCOL.md §6).
    ingested_files: HashMap<InstallId, HashMap<u64, [u8; 32]>>,
    records: HashMap<InstallId, InstallRecord>,
    stats: ServerStats,
    /// Pooled decompression scratch: every upload inflates into this one
    /// allocation instead of a fresh `Vec` per file.
    scratch: Vec<u8>,
}

impl CollectionServer {
    /// Create a server recognizing the given participant codes.
    pub fn new(participants: impl IntoIterator<Item = ParticipantId>) -> Self {
        CollectionServer {
            registered: participants.into_iter().collect(),
            signed_in: HashSet::new(),
            ingested_files: HashMap::new(),
            records: HashMap::new(),
            stats: ServerStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Register one more participant code (late recruitment).
    pub fn register_participant(&mut self, p: ParticipantId) {
        self.registered.insert(p);
    }

    /// Handle one protocol message, producing the reply to send (if any).
    pub fn handle(&mut self, msg: Message) -> Option<Message> {
        match msg {
            Message::SignIn {
                participant,
                install,
            } => {
                let accepted = participant.is_valid() && self.registered.contains(&participant);
                if accepted {
                    // Idempotent: a retried sign-in (lost ack) for an
                    // already-known install must not double-count.
                    if self.signed_in.insert(install) {
                        self.stats.sign_ins += 1;
                    }
                } else {
                    self.stats.rejected_sign_ins += 1;
                }
                Some(Message::SignInAck { accepted })
            }
            Message::SnapshotUpload {
                install,
                file_id,
                fast: _,
                payload,
            } => {
                if !self.signed_in.contains(&install) {
                    return Some(Message::Error {
                        code: 401,
                        detail: "install not signed in".into(),
                    });
                }
                // Hash exactly what was received — if transit corrupted the
                // payload (and CRC somehow passed), the client's comparison
                // fails and it retries.
                let digest = sha256(&payload);
                // Idempotent ingest: a file whose ack was lost gets
                // retransmitted by the client; re-acknowledge it without
                // folding its snapshots in a second time. (A colliding
                // file_id with *different* content falls through and is
                // processed as a new upload — client file ids are
                // monotonic, so this only happens across a reinstall.)
                if self
                    .ingested_files
                    .get(&install)
                    .and_then(|files| files.get(&file_id))
                    == Some(&digest)
                {
                    self.stats.dup_files += 1;
                    return Some(Message::UploadAck {
                        file_id,
                        sha256: digest,
                    });
                }
                // Decompress into the pooled scratch, then decode the whole
                // file in one pass — parse once, ingest as a batch.
                match lzss::decompress_into(&payload, &mut self.scratch)
                    .map_err(|e| e.to_string())
                    .and_then(|()| {
                        SnapshotCollector::deserialize_file(&self.scratch)
                            .map_err(|e| e.to_string())
                    }) {
                    Ok(snapshots) => {
                        self.ingest_file(&snapshots);
                        self.stats.files += 1;
                        self.ingested_files
                            .entry(install)
                            .or_default()
                            .insert(file_id, digest);
                        Some(Message::UploadAck {
                            file_id,
                            sha256: digest,
                        })
                    }
                    Err(detail) => {
                        self.stats.bad_uploads += 1;
                        Some(Message::Error { code: 400, detail })
                    }
                }
            }
            // Server ignores acks/errors addressed to clients.
            Message::SignInAck { .. } | Message::UploadAck { .. } | Message::Error { .. } => None,
        }
    }

    /// Fold one snapshot into its install record (direct ingestion path,
    /// used by the in-process study driver; the wire path converges here).
    pub fn ingest_snapshot(&mut self, snapshot: &Snapshot) {
        self.stats.snapshots += 1;
        let record = self
            .records
            .entry(snapshot.install_id())
            .or_insert_with(|| {
                InstallRecord::new(
                    snapshot.install_id(),
                    snapshot.participant_id(),
                    snapshot.time(),
                )
            });
        record.ingest(snapshot);
    }

    /// Fold one decoded upload file's snapshots in as a batch. Snapshots
    /// in a rotated accumulation file come from a single install, so runs
    /// sharing an install id are folded through one record lookup instead
    /// of a map probe per snapshot (mixed files still ingest correctly —
    /// each run resolves its own record).
    fn ingest_file(&mut self, snapshots: &[Snapshot]) {
        let mut i = 0;
        while i < snapshots.len() {
            let install = snapshots[i].install_id();
            let record = self.records.entry(install).or_insert_with(|| {
                InstallRecord::new(install, snapshots[i].participant_id(), snapshots[i].time())
            });
            let mut j = i;
            while j < snapshots.len() && snapshots[j].install_id() == install {
                record.ingest(&snapshots[j]);
                j += 1;
            }
            self.stats.snapshots += (j - i) as u64;
            i = j;
        }
    }

    /// Adopt a fully aggregated record (from a [`crate::shard::ShardedIngest`]
    /// drain). Replaces any record previously held for the same install.
    pub fn adopt_record(&mut self, record: InstallRecord) {
        self.records.insert(record.install_id, record);
    }

    /// Add externally ingested snapshots to the stats counter (the sharded
    /// direct path counts its own ingests; this folds them back in).
    pub fn add_ingested_snapshots(&mut self, n: u64) {
        self.stats.snapshots += n;
    }

    /// Fold externally accumulated protocol stats into this server's —
    /// the convergence point for the async plane, whose admission shards
    /// count sign-ins, files, dedups and bad uploads on worker threads.
    pub fn absorb_stats(&mut self, other: &ServerStats) {
        self.stats.merge(other);
    }

    /// All install records.
    pub fn records(&self) -> impl Iterator<Item = &InstallRecord> {
        self.records.values()
    }

    /// One install's record.
    pub fn record(&self, install: InstallId) -> Option<&InstallRecord> {
        self.records.get(&install)
    }

    /// Ingestion statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Serve the wire protocol on a TCP listener until the listener errors
    /// or `max_connections` clients have been handled (tests bound this;
    /// pass `usize::MAX` to serve forever). One thread per connection.
    pub fn serve_tcp(
        server: Arc<Mutex<CollectionServer>>,
        listener: std::net::TcpListener,
        max_connections: usize,
    ) -> std::io::Result<()> {
        let mut handles = Vec::new();
        for stream in listener.incoming().take(max_connections) {
            let stream = stream?;
            let server = Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                let mut transport = crate::transport::TcpTransport::new(stream);
                let mut codec = FrameCodec::new();
                while let Ok(Some(msg)) = crate::transport::recv_message(&mut transport, &mut codec)
                {
                    let reply = server.lock().handle(msg);
                    if let Some(reply) = reply {
                        use crate::transport::Transport;
                        if transport.send(&reply.encode()).is_err() {
                            break;
                        }
                    }
                }
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{ApkHash, FastSnapshot, PermissionProfile, SlowSnapshot};

    const P: ParticipantId = ParticipantId(123_456);
    const I: InstallId = InstallId(1_000_000_000);

    fn server() -> CollectionServer {
        CollectionServer::new([P])
    }

    fn fast_with_install(t: u64, app: u32, installed_at: u64) -> Snapshot {
        Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_secs(t),
            foreground_app: Some(AppId(app)),
            screen_on: true,
            battery_pct: 80,
            install_events: vec![InstallDelta::Installed(InstalledApp::fresh(
                AppId(app),
                SimTime::from_secs(installed_at),
                PermissionProfile::default(),
                ApkHash([app as u8; 16]),
            ))],
        })
    }

    #[test]
    fn sign_in_gating() {
        let mut s = server();
        let ok = s.handle(Message::SignIn {
            participant: P,
            install: I,
        });
        assert_eq!(ok, Some(Message::SignInAck { accepted: true }));
        let bad = s.handle(Message::SignIn {
            participant: ParticipantId(999_999),
            install: InstallId(2_000_000_000),
        });
        assert_eq!(bad, Some(Message::SignInAck { accepted: false }));
        assert_eq!(s.stats().sign_ins, 1);
        assert_eq!(s.stats().rejected_sign_ins, 1);
    }

    #[test]
    fn upload_requires_sign_in() {
        let mut s = server();
        let reply = s.handle(Message::SnapshotUpload {
            install: I,
            file_id: 1,
            fast: true,
            payload: vec![],
        });
        assert!(matches!(reply, Some(Message::Error { code: 401, .. })));
    }

    #[test]
    fn upload_round_trip_acks_hash_and_ingests() {
        let mut s = server();
        s.handle(Message::SignIn {
            participant: P,
            install: I,
        });
        // Build a compressed file of two snapshots.
        let snaps = vec![
            fast_with_install(100, 1, 50),
            fast_with_install(105, 2, 104),
        ];
        let mut raw = Vec::new();
        for snap in &snaps {
            raw.extend_from_slice(&SnapshotCollector::serialize(snap));
        }
        let payload = lzss::compress(&raw);
        let expected_hash = sha256(&payload);
        let reply = s
            .handle(Message::SnapshotUpload {
                install: I,
                file_id: 9,
                fast: true,
                payload,
            })
            .unwrap();
        assert_eq!(
            reply,
            Message::UploadAck {
                file_id: 9,
                sha256: expected_hash
            }
        );
        let rec = s.record(I).unwrap();
        assert_eq!(rec.n_fast, 2);
        assert_eq!(rec.apps.len(), 2);
        assert!(rec.installed_now.contains(&AppId(1)));
        assert_eq!(s.stats().snapshots, 2);
    }

    #[test]
    fn replayed_upload_is_deduped_and_reacked() {
        let mut s = server();
        s.handle(Message::SignIn {
            participant: P,
            install: I,
        });
        let mut raw = Vec::new();
        raw.extend_from_slice(&SnapshotCollector::serialize(&fast_with_install(
            100, 1, 50,
        )));
        let payload = lzss::compress(&raw);
        let upload = Message::SnapshotUpload {
            install: I,
            file_id: 3,
            fast: true,
            payload,
        };
        let first = s.handle(upload.clone()).unwrap();
        // Replay (the ack was "lost"): identical ack, nothing re-ingested.
        let second = s.handle(upload).unwrap();
        assert_eq!(first, second);
        assert_eq!(s.stats().snapshots, 1, "snapshot counted once");
        assert_eq!(s.stats().files, 1, "file counted once");
        assert_eq!(s.stats().dup_files, 1);
        assert_eq!(s.record(I).unwrap().n_fast, 1);
    }

    #[test]
    fn replayed_upload_folds_streaming_state_exactly_once() {
        // Regression guard for the latent double-count hazard: a replayed
        // upload chunk walks the same server batch path as the original,
        // and every per-install counter *and* streaming aggregate must
        // fold once — never per delivery attempt.
        let mut s = server();
        s.handle(Message::SignIn {
            participant: P,
            install: I,
        });
        let mut raw = Vec::new();
        // t=0 creates the record (first_seen = 0), so installed_at = 5 is
        // a monitored install event; the t=60 snapshot uninstalls it.
        raw.extend_from_slice(&SnapshotCollector::serialize(&fast_with_install(0, 7, 5)));
        raw.extend_from_slice(&SnapshotCollector::serialize(&Snapshot::Fast(
            FastSnapshot {
                install_id: I,
                participant_id: P,
                time: SimTime::from_secs(60),
                foreground_app: Some(AppId(7)),
                screen_on: true,
                battery_pct: 79,
                install_events: vec![InstallDelta::Uninstalled { app: AppId(7) }],
            },
        )));
        let payload = lzss::compress(&raw);
        let upload = Message::SnapshotUpload {
            install: I,
            file_id: 9,
            fast: true,
            payload,
        };
        s.handle(upload.clone()).unwrap();
        let once = s.record(I).unwrap().clone();
        for _ in 0..3 {
            s.handle(upload.clone()).unwrap();
        }
        let rec = s.record(I).unwrap();
        assert_eq!(s.stats().snapshots, 2, "snapshots counted once");
        assert_eq!(s.stats().dup_files, 3);
        assert_eq!(rec.n_fast, once.n_fast);
        assert_eq!(rec.snapshots_per_day, once.snapshots_per_day);
        assert_eq!(rec.install_events, once.install_events);
        assert_eq!(rec.uninstall_events, once.uninstall_events);
        let app = rec.stream.app(AppId(7)).unwrap();
        assert_eq!(app.n_installs, 1, "install folded once");
        assert_eq!(app.n_uninstalls, 1, "uninstall folded once");
        assert_eq!(app.last_uninstall, Some(SimTime::from_secs(60)));
        assert_eq!(app.fg_total, 2, "one foreground fold per snapshot");
        assert_eq!(rec.stream.n_install_events, 1);
        assert_eq!(rec.stream.n_uninstall_events, 1);
    }

    #[test]
    fn stream_state_mirrors_batch_event_vectors() {
        // The stream aggregate is folded at the same program points as the
        // batch-visible vectors, so counts must agree by construction.
        let mut s = server();
        s.ingest_snapshot(&fast_with_install(0, 1, 0));
        s.ingest_snapshot(&fast_with_install(86_400, 2, 86_400));
        s.ingest_snapshot(&Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_secs(90_000),
            foreground_app: None,
            screen_on: false,
            battery_pct: 50,
            install_events: vec![InstallDelta::Uninstalled { app: AppId(1) }],
        }));
        let rec = s.record(I).unwrap();
        assert_eq!(
            rec.stream.n_install_events as usize,
            rec.install_events.len()
        );
        assert_eq!(
            rec.stream.n_uninstall_events as usize,
            rec.uninstall_events.len()
        );
        for (app, stream) in rec.stream.apps() {
            let batch_installs = rec.install_events.iter().filter(|(a, _)| a == app).count();
            let batch_uninstalls = rec
                .uninstall_events
                .iter()
                .filter(|(a, _)| a == app)
                .count();
            let batch_fg: u64 = rec
                .foreground
                .get(app)
                .map(|days| days.values().sum())
                .unwrap_or(0);
            assert_eq!(stream.n_installs as usize, batch_installs);
            assert_eq!(stream.n_uninstalls as usize, batch_uninstalls);
            assert_eq!(stream.fg_total, batch_fg);
            assert_eq!(
                stream.last_uninstall,
                rec.uninstall_events
                    .iter()
                    .filter(|(a, _)| a == app)
                    .map(|&(_, t)| t)
                    .max()
            );
        }
    }

    #[test]
    fn repeated_sign_in_is_idempotent() {
        let mut s = server();
        for _ in 0..3 {
            let reply = s.handle(Message::SignIn {
                participant: P,
                install: I,
            });
            assert_eq!(reply, Some(Message::SignInAck { accepted: true }));
        }
        assert_eq!(s.stats().sign_ins, 1, "distinct installs, not messages");
    }

    #[test]
    fn malformed_upload_rejected() {
        let mut s = server();
        s.handle(Message::SignIn {
            participant: P,
            install: I,
        });
        let reply = s.handle(Message::SnapshotUpload {
            install: I,
            file_id: 1,
            fast: true,
            payload: vec![0b0000_0001, 0x01], // truncated LZSS reference
        });
        assert!(matches!(reply, Some(Message::Error { code: 400, .. })));
        assert_eq!(s.stats().bad_uploads, 1);
    }

    #[test]
    fn record_aggregates_days_and_foreground() {
        let mut s = server();
        s.ingest_snapshot(&fast_with_install(0, 1, 0));
        s.ingest_snapshot(&fast_with_install(5, 1, 0));
        s.ingest_snapshot(&fast_with_install(86_400 + 5, 1, 0));
        let rec = s.record(I).unwrap();
        assert_eq!(rec.active_days(), 2);
        assert_eq!(rec.avg_snapshots_per_day(), 1.5);
        let fg: u64 = rec.foreground[&AppId(1)].values().sum();
        assert_eq!(fg, 3);
    }

    #[test]
    fn uninstall_event_tracked() {
        let mut s = server();
        s.ingest_snapshot(&fast_with_install(10, 1, 5));
        s.ingest_snapshot(&Snapshot::Fast(FastSnapshot {
            install_id: I,
            participant_id: P,
            time: SimTime::from_secs(20),
            foreground_app: None,
            screen_on: false,
            battery_pct: 80,
            install_events: vec![InstallDelta::Uninstalled { app: AppId(1) }],
        }));
        let rec = s.record(I).unwrap();
        assert_eq!(rec.uninstall_events.len(), 1);
        assert!(!rec.installed_now.contains(&AppId(1)));
        assert!(
            rec.apps.contains_key(&AppId(1)),
            "metadata retained after uninstall"
        );
    }

    #[test]
    fn slow_snapshot_updates_accounts_and_android_id() {
        let mut s = server();
        s.ingest_snapshot(&Snapshot::Slow(SlowSnapshot {
            install_id: I,
            participant_id: P,
            android_id: Some(AndroidId(77)),
            time: SimTime::from_secs(10),
            accounts: vec![RegisteredAccount::gmail(
                racket_types::AccountId(1),
                racket_types::GoogleId(1),
            )],
            save_mode: false,
            stopped_apps: vec![AppId(3)],
            review_events: vec![],
        }));
        let rec = s.record(I).unwrap();
        assert_eq!(rec.android_id, Some(AndroidId(77)));
        assert_eq!(rec.accounts.len(), 1);
        assert_eq!(rec.stopped_apps, vec![AppId(3)]);
        assert_eq!(rec.n_slow, 1);
    }

    #[test]
    fn slow_snapshot_reviews_fold_into_record_and_text_sketch() {
        let review = ReviewEvent {
            app: AppId(4),
            reviewer: racket_types::GoogleId(9),
            time: SimTime::from_secs(8),
            rating: racket_types::Rating::FIVE,
            text: "great app works perfectly".to_string(),
        };
        let slow = Snapshot::Slow(SlowSnapshot {
            install_id: I,
            participant_id: P,
            android_id: None,
            time: SimTime::from_secs(10),
            accounts: vec![],
            save_mode: false,
            stopped_apps: vec![],
            review_events: vec![review.clone()],
        });
        let mut s = server();
        s.ingest_snapshot(&slow);
        let rec = s.record(I).unwrap();
        assert_eq!(rec.review_events, vec![review]);
        assert_eq!(rec.stream.text().n_reviews(), 1);
        let row = rec.stream.text().rows().next().unwrap();
        assert_eq!(row.app, 4);
        assert_eq!(row.rating, 5);

        // The replay path (idempotent file dedup) never re-folds text —
        // same mechanism as the campaign sketch, exercised via upload.
        let mut s = server();
        s.handle(Message::SignIn {
            participant: P,
            install: I,
        });
        let mut raw = Vec::new();
        raw.extend_from_slice(&SnapshotCollector::serialize(&slow));
        let payload = lzss::compress(&raw);
        let upload = Message::SnapshotUpload {
            install: I,
            file_id: 1,
            fast: true,
            payload,
        };
        s.handle(upload.clone()).unwrap();
        let once = s.record(I).unwrap().clone();
        s.handle(upload).unwrap();
        let rec = s.record(I).unwrap();
        assert_eq!(rec.review_events, once.review_events);
        assert_eq!(rec.stream.text(), once.stream.text());
    }

    #[test]
    fn preexisting_apps_not_counted_as_install_events() {
        let mut s = server();
        // Monitoring starts at t = 100; the app was installed at t = 50.
        s.ingest_snapshot(&fast_with_install(100, 1, 50));
        let rec = s.record(I).unwrap();
        assert!(
            rec.install_events.is_empty(),
            "old install is baseline, not event"
        );
        // An app installed during monitoring is an event.
        s.ingest_snapshot(&fast_with_install(200, 2, 150));
        assert_eq!(s.record(I).unwrap().install_events.len(), 1);
    }
}
