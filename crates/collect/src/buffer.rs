//! The on-device data buffer (§3, "Data Buffer Module: Snapshot Processor").
//!
//! Snapshots accumulate into per-type files; when the slow file reaches
//! 8 KB or the fast file 100 KB, the file is compressed (LZSS) and queued
//! for upload. The uploader sends queued files to the server; on receiving
//! an acknowledgement carrying the SHA-256 of what the server got, the
//! buffer deletes the file only if the hash matches its own — otherwise
//! the file stays queued for retransmission. This is the paper's resilient
//! transfer loop.

use crate::hash::sha256;
use crate::lzss;
use racket_obs::LocalHistogram;
use racket_types::Snapshot;
use std::collections::VecDeque;
use std::time::Instant;

/// Rotation threshold for the slow-snapshot accumulation file (§3: 8 KB).
pub const SLOW_ROTATE_BYTES: usize = 8 * 1024;
/// Rotation threshold for the fast-snapshot accumulation file (§3: 100 KB).
pub const FAST_ROTATE_BYTES: usize = 100 * 1024;

/// A compressed, upload-ready snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadFile {
    /// Monotonic client-side file identifier.
    pub file_id: u64,
    /// Whether the file holds fast snapshots.
    pub fast: bool,
    /// LZSS-compressed file contents.
    pub data: Vec<u8>,
}

impl UploadFile {
    /// SHA-256 of the compressed contents — what a valid ack must carry.
    pub fn expected_hash(&self) -> [u8; 32] {
        sha256(&self.data)
    }
}

/// Per-lane wall-clock shards for the delivery sub-stages. Unsynchronized
/// ([`LocalHistogram`]); the study driver merges each retiring lane's
/// shards into the shared `span.simulate/deliver/*` histograms so the
/// BENCH report attributes the delivery cost per kernel.
#[derive(Debug, Default, Clone)]
pub struct StageTimers {
    /// Nanoseconds encoding snapshots into the accumulation file.
    pub serialize: LocalHistogram,
    /// Nanoseconds LZSS-compressing rotated files.
    pub compress: LocalHistogram,
    /// Nanoseconds hashing upload payloads (ack verification).
    pub hash: LocalHistogram,
    /// Nanoseconds encoding and decoding wire frames.
    pub frame: LocalHistogram,
}

/// The device-side buffer.
#[derive(Debug, Default)]
pub struct DataBuffer {
    fast_file: Vec<u8>,
    slow_file: Vec<u8>,
    ready: VecDeque<UploadFile>,
    next_file_id: u64,
    /// Persistent LZSS state: hash chains survive across rotates, so a
    /// rotate allocates nothing beyond the queued file's exact-size copy.
    workspace: lzss::Workspace,
    /// Reused compressed-output scratch (worst-case capacity after the
    /// first rotate, never regrown).
    scratch: Vec<u8>,
    /// Delivery sub-stage timing shards (serialize + compress recorded
    /// here; the wire lane records hash + frame).
    pub timers: StageTimers,
    /// Total uncompressed bytes accumulated (stat).
    pub bytes_in: u64,
    /// Total compressed bytes queued (stat).
    pub bytes_out: u64,
}

impl DataBuffer {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one snapshot (encoded as a binary record) to its
    /// accumulation file, rotating if the threshold is crossed.
    pub fn push(&mut self, snapshot: &Snapshot) {
        let fast = snapshot.is_fast();
        let start = Instant::now();
        let (before, after) = {
            let file = if fast {
                &mut self.fast_file
            } else {
                &mut self.slow_file
            };
            let before = file.len();
            crate::collector::SnapshotCollector::serialize_into(snapshot, file);
            (before, file.len())
        };
        self.timers
            .serialize
            .record(start.elapsed().as_nanos() as u64);
        self.bytes_in += (after - before) as u64;
        let threshold = if fast {
            FAST_ROTATE_BYTES
        } else {
            SLOW_ROTATE_BYTES
        };
        if after >= threshold {
            self.rotate(fast);
        }
    }

    /// Force-rotate a (non-empty) accumulation file into the upload queue;
    /// called on threshold crossings and at study end (final flush).
    ///
    /// Compresses through the persistent [`lzss::Workspace`] into the
    /// reused scratch buffer; the accumulation file keeps its capacity for
    /// the next fill, so steady-state rotation allocates only the queued
    /// file's exact-size copy.
    pub fn rotate(&mut self, fast: bool) {
        let start = Instant::now();
        if fast {
            if self.fast_file.is_empty() {
                return;
            }
            self.workspace
                .compress_into(&self.fast_file, &mut self.scratch);
            self.fast_file.clear();
        } else {
            if self.slow_file.is_empty() {
                return;
            }
            self.workspace
                .compress_into(&self.slow_file, &mut self.scratch);
            self.slow_file.clear();
        }
        self.timers
            .compress
            .record(start.elapsed().as_nanos() as u64);
        let data = self.scratch.as_slice().to_vec();
        self.bytes_out += data.len() as u64;
        self.next_file_id += 1;
        self.ready.push_back(UploadFile {
            file_id: self.next_file_id,
            fast,
            data,
        });
    }

    /// Flush both accumulation files (end of study / app uninstall).
    pub fn flush(&mut self) {
        self.rotate(true);
        self.rotate(false);
    }

    /// Files ready for upload, oldest first.
    pub fn pending(&self) -> impl Iterator<Item = &UploadFile> {
        self.ready.iter()
    }

    /// A queued file by id (`None` once acknowledged), letting the upload
    /// loop borrow payloads in place instead of cloning the queue.
    pub fn file(&self, file_id: u64) -> Option<&UploadFile> {
        self.ready.iter().find(|f| f.file_id == file_id)
    }

    /// Number of files awaiting acknowledgement.
    pub fn pending_count(&self) -> usize {
        self.ready.len()
    }

    /// Handle a server acknowledgement: delete the file if the server's
    /// hash matches ours (§3's transfer validation); returns whether the
    /// file was deleted. An unknown `file_id` returns `false`.
    pub fn acknowledge(&mut self, file_id: u64, server_hash: [u8; 32]) -> bool {
        let Some(pos) = self.ready.iter().position(|f| f.file_id == file_id) else {
            return false;
        };
        if self.ready[pos].expected_hash() != server_hash {
            return false; // corrupted in transit; keep for retry
        }
        self.ready.remove(pos);
        true
    }

    /// Achieved compression ratio so far (uncompressed / compressed).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            return 1.0;
        }
        self.bytes_in as f64 / self.bytes_out as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_types::{FastSnapshot, InstallId, ParticipantId, SimTime, SlowSnapshot};

    fn fast(t: u64) -> Snapshot {
        Snapshot::Fast(FastSnapshot {
            install_id: InstallId(1),
            participant_id: ParticipantId(111_111),
            time: SimTime::from_secs(t),
            foreground_app: Some(racket_types::AppId(7)),
            screen_on: true,
            battery_pct: 90,
            install_events: vec![],
        })
    }

    fn slow(t: u64) -> Snapshot {
        Snapshot::Slow(SlowSnapshot {
            install_id: InstallId(1),
            participant_id: ParticipantId(111_111),
            android_id: None,
            time: SimTime::from_secs(t),
            accounts: vec![],
            save_mode: false,
            stopped_apps: vec![],
            review_events: vec![],
        })
    }

    #[test]
    fn accumulates_until_threshold() {
        let mut buf = DataBuffer::new();
        buf.push(&fast(0));
        assert_eq!(buf.pending_count(), 0, "below threshold, nothing queued");
        // Fast binary records are ~40 bytes; 4,000 pushes cross 100 KB.
        for t in 1..4000 {
            buf.push(&fast(t));
        }
        assert!(buf.pending_count() >= 1, "fast file rotated");
        // Slow threshold (8 KB) crosses much sooner.
        let mut buf2 = DataBuffer::new();
        for t in 0..300 {
            buf2.push(&slow(t));
        }
        assert!(buf2.pending_count() >= 1, "slow file rotated");
    }

    #[test]
    fn rotated_files_decompress_to_original_lines() {
        let mut buf = DataBuffer::new();
        let snaps: Vec<Snapshot> = (0..100).map(slow).collect();
        for s in &snaps {
            buf.push(s);
        }
        buf.flush();
        let mut recovered = Vec::new();
        for f in buf.pending() {
            let raw = crate::lzss::decompress(&f.data).unwrap();
            recovered.extend(crate::collector::SnapshotCollector::deserialize_file(&raw).unwrap());
        }
        assert_eq!(recovered, snaps);
    }

    #[test]
    fn ack_with_matching_hash_deletes() {
        let mut buf = DataBuffer::new();
        buf.push(&fast(0));
        buf.flush();
        let f = buf.pending().next().unwrap().clone();
        assert!(buf.acknowledge(f.file_id, f.expected_hash()));
        assert_eq!(buf.pending_count(), 0);
    }

    #[test]
    fn ack_with_wrong_hash_keeps_file_for_retry() {
        let mut buf = DataBuffer::new();
        buf.push(&fast(0));
        buf.flush();
        let f = buf.pending().next().unwrap().clone();
        assert!(!buf.acknowledge(f.file_id, [0; 32]));
        assert_eq!(buf.pending_count(), 1, "file retained for retransmission");
        assert!(!buf.acknowledge(999, f.expected_hash()), "unknown file id");
    }

    #[test]
    fn duplicate_ack_is_idempotent() {
        // A duplicated ack frame (or a re-ack of a replayed upload) may
        // reach the buffer twice; the second must be a harmless no-op.
        let mut buf = DataBuffer::new();
        buf.push(&fast(0));
        buf.flush();
        let f = buf.pending().next().unwrap().clone();
        assert!(buf.acknowledge(f.file_id, f.expected_hash()));
        assert!(
            !buf.acknowledge(f.file_id, f.expected_hash()),
            "second ack finds no file and reports false"
        );
        assert_eq!(buf.pending_count(), 0);
    }

    #[test]
    fn ack_after_reconnect_still_matches_queued_file() {
        // Files survive a transport reconnect (they live in the buffer,
        // not the connection), so a late ack for a file queued before the
        // reconnect must still delete it — and only it.
        let mut buf = DataBuffer::new();
        buf.push(&fast(0));
        buf.flush();
        buf.push(&slow(1));
        buf.flush();
        let files: Vec<UploadFile> = buf.pending().cloned().collect();
        assert_eq!(files.len(), 2);
        // "Reconnect happens here" — buffer state is connection-independent.
        assert!(buf.acknowledge(files[0].file_id, files[0].expected_hash()));
        assert_eq!(buf.pending_count(), 1);
        assert_eq!(buf.pending().next().unwrap().file_id, files[1].file_id);
    }

    #[test]
    fn flush_on_empty_is_noop() {
        let mut buf = DataBuffer::new();
        buf.flush();
        assert_eq!(buf.pending_count(), 0);
    }

    #[test]
    fn compression_ratio_tracks() {
        let mut buf = DataBuffer::new();
        for t in 0..200 {
            buf.push(&slow(t));
        }
        buf.flush();
        assert!(
            buf.compression_ratio() > 3.0,
            "ratio {}",
            buf.compression_ratio()
        );
    }

    #[test]
    fn compression_ratio_is_one_before_first_rotate() {
        // Satellite: an empty buffer (bytes_out == 0) must report a
        // neutral 1.0, not divide by zero.
        let buf = DataBuffer::new();
        assert_eq!(buf.compression_ratio(), 1.0);
        let mut buf = DataBuffer::new();
        buf.push(&fast(0)); // accumulated but not yet rotated
        assert_eq!(buf.compression_ratio(), 1.0);
    }

    #[test]
    fn serialize_and_compress_timers_record() {
        let mut buf = DataBuffer::new();
        for t in 0..300 {
            buf.push(&slow(t));
        }
        buf.flush();
        assert_eq!(buf.timers.serialize.count(), 300);
        assert!(buf.timers.compress.count() >= 1);
    }

    #[test]
    fn file_ids_are_monotonic() {
        let mut buf = DataBuffer::new();
        for t in 0..700 {
            buf.push(&slow(t));
        }
        buf.flush();
        let ids: Vec<u64> = buf.pending().map(|f| f.file_id).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
