//! The mobile app's snapshot collectors (§3).
//!
//! Two periodic samplers over a [`racket_device::Device`]:
//!
//! * **fast** (default 5 s): identifiers, foreground app, screen status,
//!   battery level, and install/uninstall deltas since the previous fast
//!   snapshot — with full metadata (install time, last update, permissions,
//!   apk MD5) for each newly observed app;
//! * **slow** (default 2 min): identifiers plus the Android ID, registered
//!   accounts, save-mode status and the stopped-app list.
//!
//! Collection is permission-gated exactly as the paper describes:
//! without `PACKAGE_USAGE_STATS` the foreground app is not reported;
//! without `GET_ACCOUNTS` the account list is empty. The very first fast
//! snapshot reports the entire installed-app set as install deltas — the
//! paper's separate "initial data collector" folded into the delta stream.

use racket_types::snapshot::{FAST_SNAPSHOT_PERIOD_SECS, SLOW_SNAPSHOT_PERIOD_SECS};
use racket_types::{
    AppId, FastSnapshot, InstallDelta, InstallId, ParticipantId, SimTime, SlowSnapshot, Snapshot,
};
use std::collections::BTreeMap;

/// Collector cadences (seconds). The defaults are the paper's 5 s / 120 s;
/// large-scale experiment drivers may *thin* the fast cadence (collect
/// every n-th tick) — per-day rate features scale accordingly and cohort
/// contrasts are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// Fast snapshot period in seconds.
    pub fast_period_secs: u64,
    /// Slow snapshot period in seconds.
    pub slow_period_secs: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            fast_period_secs: FAST_SNAPSHOT_PERIOD_SECS,
            slow_period_secs: SLOW_SNAPSHOT_PERIOD_SECS,
        }
    }
}

/// Stateful snapshot collector for one RacketStore install.
#[derive(Debug, Clone)]
pub struct SnapshotCollector {
    config: CollectorConfig,
    install_id: InstallId,
    participant: ParticipantId,
    next_fast: Option<SimTime>,
    next_slow: Option<SimTime>,
    /// Install times of apps seen in the previous fast sample, for deltas.
    known_apps: BTreeMap<AppId, SimTime>,
}

impl SnapshotCollector {
    /// Create a collector for an install signed in as `participant`.
    pub fn new(config: CollectorConfig, install_id: InstallId, participant: ParticipantId) -> Self {
        assert!(config.fast_period_secs > 0 && config.slow_period_secs > 0);
        SnapshotCollector {
            config,
            install_id,
            participant,
            next_fast: None,
            next_slow: None,
            known_apps: BTreeMap::new(),
        }
    }

    /// Produce all snapshots due in `(.., now]`, advancing internal timers.
    /// The first call emits one fast and one slow snapshot immediately.
    pub fn poll(&mut self, device: &racket_device::Device, now: SimTime) -> Vec<Snapshot> {
        let mut out = Vec::new();
        let fast_period = racket_types::SimDuration::from_secs(self.config.fast_period_secs);
        let slow_period = racket_types::SimDuration::from_secs(self.config.slow_period_secs);

        let mut t = self.next_fast.unwrap_or(now);
        while t <= now {
            out.push(Snapshot::Fast(self.sample_fast(device, t)));
            t += fast_period;
        }
        self.next_fast = Some(t);

        let mut t = self.next_slow.unwrap_or(now);
        while t <= now {
            out.push(Snapshot::Slow(self.sample_slow(device, t)));
            t += slow_period;
        }
        self.next_slow = Some(t);

        out
    }

    /// Take one fast snapshot right now (advances the delta baseline).
    pub fn sample_fast(&mut self, device: &racket_device::Device, now: SimTime) -> FastSnapshot {
        // Install/uninstall deltas vs. the previous sample. A re-install
        // surfaces as a changed install time and is reported as a fresh
        // Installed delta (Android's last-install-time semantics).
        let mut deltas = Vec::new();
        let mut current: BTreeMap<AppId, SimTime> = BTreeMap::new();
        for info in device.installed_apps() {
            current.insert(info.app, info.install_time);
            match self.known_apps.get(&info.app) {
                Some(&t) if t == info.install_time => {}
                _ => deltas.push(InstallDelta::Installed(info.clone())),
            }
        }
        for app in self.known_apps.keys() {
            if !current.contains_key(app) {
                deltas.push(InstallDelta::Uninstalled { app: *app });
            }
        }
        self.known_apps = current;

        let foreground_app = if device.permissions().usage_stats {
            device.foreground_app()
        } else {
            None
        };

        FastSnapshot {
            install_id: self.install_id,
            participant_id: self.participant,
            time: now,
            foreground_app,
            screen_on: device.screen_on(),
            battery_pct: device.battery_pct(),
            install_events: deltas,
        }
    }

    /// Take one slow snapshot right now.
    pub fn sample_slow(&self, device: &racket_device::Device, now: SimTime) -> SlowSnapshot {
        let accounts = if device.permissions().get_accounts {
            device.accounts().to_vec()
        } else {
            Vec::new()
        };
        SlowSnapshot {
            install_id: self.install_id,
            participant_id: self.participant,
            android_id: device.android_id(),
            time: now,
            accounts,
            save_mode: device.save_mode(),
            stopped_apps: device.stopped_apps(),
        }
    }

    /// Serialize one snapshot in the current accumulation-file format
    /// (the binary record codec, [`crate::codec`]).
    pub fn serialize(snapshot: &Snapshot) -> Vec<u8> {
        let mut out = Vec::new();
        Self::serialize_into(snapshot, &mut out);
        out
    }

    /// Append one snapshot record to a caller-supplied buffer — the
    /// allocation-free path the data buffer accumulates files through.
    pub fn serialize_into(snapshot: &Snapshot, out: &mut Vec<u8>) {
        crate::codec::encode_record(snapshot, out);
    }

    /// Parse an accumulation file back into snapshots.
    ///
    /// Format is sniffed from the first byte: current files start with the
    /// binary record tag ([`crate::codec::TAG_BINARY_V1`]); anything else
    /// is treated as the legacy JSON-lines format (whose lines start with
    /// `{`), so files written before the codec switch keep parsing.
    pub fn deserialize_file(data: &[u8]) -> Result<Vec<Snapshot>, crate::codec::DecodeError> {
        match data.first() {
            None => Ok(Vec::new()),
            Some(&crate::codec::TAG_BINARY_V1) => crate::codec::decode_file(data),
            Some(_) => data
                .split(|&b| b == b'\n')
                .filter(|line| !line.is_empty())
                .map(|line| serde_json::from_slice(line).map_err(Into::into))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_device::{Device, DeviceModel, DevicePermissions};
    use racket_types::{AndroidId, ApkHash, DeviceId, PermissionProfile};

    fn device() -> Device {
        let mut d = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(5));
        d.install_app(
            AppId(1),
            SimTime::from_secs(10),
            PermissionProfile::default(),
            ApkHash([1; 16]),
        );
        d
    }

    fn collector() -> SnapshotCollector {
        SnapshotCollector::new(
            CollectorConfig::default(),
            InstallId(1_000_000_000),
            ParticipantId(123_456),
        )
    }

    #[test]
    fn first_poll_emits_both_kinds_and_full_app_list() {
        let d = device();
        let mut c = collector();
        let snaps = c.poll(&d, SimTime::from_secs(100));
        assert_eq!(snaps.len(), 2);
        let fast = snaps.iter().find(|s| s.is_fast()).unwrap();
        if let Snapshot::Fast(f) = fast {
            assert_eq!(f.install_events.len(), 1, "initial snapshot lists all apps");
            assert!(f.install_events[0].is_install());
        }
    }

    #[test]
    fn cadence_five_seconds_and_two_minutes() {
        let d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        // 120 seconds later: 24 fast ticks (5..=120 step 5) + 1 slow tick.
        let snaps = c.poll(&d, SimTime::from_secs(120));
        let fast = snaps.iter().filter(|s| s.is_fast()).count();
        let slow = snaps.len() - fast;
        assert_eq!(fast, 24);
        assert_eq!(slow, 1);
    }

    #[test]
    fn install_and_uninstall_deltas() {
        let mut d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        d.install_app(
            AppId(2),
            SimTime::from_secs(2),
            PermissionProfile::default(),
            ApkHash([2; 16]),
        );
        d.uninstall_app(AppId(1), SimTime::from_secs(3));
        let snap = c.sample_fast(&d, SimTime::from_secs(5));
        let installs: Vec<_> = snap
            .install_events
            .iter()
            .filter(|e| e.is_install())
            .collect();
        let uninstalls: Vec<_> = snap
            .install_events
            .iter()
            .filter(|e| !e.is_install())
            .collect();
        assert_eq!(installs.len(), 1);
        assert_eq!(installs[0].app(), AppId(2));
        assert_eq!(uninstalls.len(), 1);
        assert_eq!(uninstalls[0].app(), AppId(1));
        // Next sample: no deltas.
        assert!(c
            .sample_fast(&d, SimTime::from_secs(10))
            .install_events
            .is_empty());
    }

    #[test]
    fn reinstall_reported_as_fresh_install() {
        let mut d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        d.install_app(
            AppId(1),
            SimTime::from_secs(50),
            PermissionProfile::default(),
            ApkHash([1; 16]),
        );
        let snap = c.sample_fast(&d, SimTime::from_secs(55));
        assert_eq!(snap.install_events.len(), 1);
        assert!(snap.install_events[0].is_install());
    }

    #[test]
    fn permissions_gate_collection() {
        let mut d = device();
        d.register_account(
            racket_types::RegisteredAccount::gmail(
                racket_types::AccountId(1),
                racket_types::GoogleId(1),
            ),
            SimTime::EPOCH,
        );
        d.open_app(AppId(1), SimTime::from_secs(1), 60);
        d.set_permissions(DevicePermissions {
            usage_stats: false,
            get_accounts: false,
        });
        let mut c = collector();
        let fast = c.sample_fast(&d, SimTime::from_secs(2));
        assert_eq!(fast.foreground_app, None, "PACKAGE_USAGE_STATS denied");
        let slow = c.sample_slow(&d, SimTime::from_secs(2));
        assert!(slow.accounts.is_empty(), "GET_ACCOUNTS denied");
        // Stopped apps are package-manager data, still reported.
        d.set_permissions(DevicePermissions::default());
        let slow2 = c.sample_slow(&d, SimTime::from_secs(3));
        assert_eq!(slow2.accounts.len(), 1);
    }

    #[test]
    fn serialization_round_trips_files() {
        let d = device();
        let mut c = collector();
        let snaps = c.poll(&d, SimTime::from_secs(100));
        let mut file = Vec::new();
        for s in &snaps {
            file.extend_from_slice(&SnapshotCollector::serialize(s));
        }
        let back = SnapshotCollector::deserialize_file(&file).unwrap();
        assert_eq!(back, snaps);
    }

    #[test]
    fn legacy_json_lines_files_still_parse() {
        let d = device();
        let mut c = collector();
        let snaps = c.poll(&d, SimTime::from_secs(100));
        // A file written by the pre-codec implementation: JSON lines.
        let mut file = Vec::new();
        for s in &snaps {
            file.extend_from_slice(&serde_json::to_vec(s).unwrap());
            file.push(b'\n');
        }
        let back = SnapshotCollector::deserialize_file(&file).unwrap();
        assert_eq!(back, snaps);
    }

    #[test]
    fn thinned_cadence() {
        let d = device();
        let mut c = SnapshotCollector::new(
            CollectorConfig {
                fast_period_secs: 60,
                slow_period_secs: 120,
            },
            InstallId(1),
            ParticipantId(1),
        );
        c.poll(&d, SimTime::from_secs(0));
        let snaps = c.poll(&d, SimTime::from_secs(600));
        let fast = snaps.iter().filter(|s| s.is_fast()).count();
        assert_eq!(fast, 10);
    }
}
