//! The mobile app's snapshot collectors (§3).
//!
//! Two periodic samplers over a [`racket_device::Device`]:
//!
//! * **fast** (default 5 s): identifiers, foreground app, screen status,
//!   battery level, and install/uninstall deltas since the previous fast
//!   snapshot — with full metadata (install time, last update, permissions,
//!   apk MD5) for each newly observed app;
//! * **slow** (default 2 min): identifiers plus the Android ID, registered
//!   accounts, save-mode status and the stopped-app list.
//!
//! Collection is permission-gated exactly as the paper describes:
//! without `PACKAGE_USAGE_STATS` the foreground app is not reported;
//! without `GET_ACCOUNTS` the account list is empty. The very first fast
//! snapshot reports the entire installed-app set as install deltas — the
//! paper's separate "initial data collector" folded into the delta stream.

use racket_types::snapshot::{FAST_SNAPSHOT_PERIOD_SECS, SLOW_SNAPSHOT_PERIOD_SECS};
use racket_types::{
    AppId, FastSnapshot, InstallDelta, InstallId, ParticipantId, ReclaimedBuffer,
    RegisteredAccount, ReviewEvent, SimTime, SlowSnapshot, Snapshot,
};

/// Collector cadences (seconds). The defaults are the paper's 5 s / 120 s;
/// large-scale experiment drivers may *thin* the fast cadence (collect
/// every n-th tick) — per-day rate features scale accordingly and cohort
/// contrasts are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorConfig {
    /// Fast snapshot period in seconds.
    pub fast_period_secs: u64,
    /// Slow snapshot period in seconds.
    pub slow_period_secs: u64,
    /// Report reviews posted from the device in slow snapshots. Off by
    /// default: review-off studies emit byte-identical snapshot files to
    /// builds that predate review collection.
    pub collect_reviews: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            fast_period_secs: FAST_SNAPSHOT_PERIOD_SECS,
            slow_period_secs: SLOW_SNAPSHOT_PERIOD_SECS,
            collect_reviews: false,
        }
    }
}

/// A pooled batch of snapshots: the target of [`SnapshotCollector::poll_into`].
///
/// Owns the emitted [`Snapshot`]s plus free lists for their heap-backed
/// internals (`install_events` / `accounts` / `stopped_apps`). Clearing the
/// batch recycles every inner vector back to the free lists with capacity
/// intact, so a lane that reuses one batch across its whole study reaches a
/// steady state where polling allocates nothing at all. Recycling never
/// changes emitted bytes — a pooled snapshot is value-equal to a freshly
/// allocated one (only spare capacity differs).
#[derive(Debug, Default)]
pub struct SnapshotBatch {
    snaps: Vec<Snapshot>,
    free_events: Vec<Vec<InstallDelta>>,
    free_accounts: Vec<Vec<RegisteredAccount>>,
    free_apps: Vec<Vec<AppId>>,
    free_reviews: Vec<Vec<ReviewEvent>>,
}

impl SnapshotBatch {
    /// An empty batch with empty pools.
    pub fn new() -> Self {
        Self::default()
    }

    /// The batched snapshots, in emission order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snaps
    }

    /// Number of batched snapshots.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether the batch holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Drop the batched snapshots, harvesting their inner vectors into the
    /// free lists for the next fill.
    pub fn clear(&mut self) {
        let mut snaps = std::mem::take(&mut self.snaps);
        for s in &mut snaps {
            s.reclaim_buffers(|b| match b {
                ReclaimedBuffer::InstallEvents(v) => self.free_events.push(v),
                ReclaimedBuffer::Accounts(v) => self.free_accounts.push(v),
                ReclaimedBuffer::StoppedApps(v) => self.free_apps.push(v),
                ReclaimedBuffer::ReviewEvents(v) => self.free_reviews.push(v),
            });
        }
        snaps.clear();
        self.snaps = snaps;
    }

    /// Surrender the batched snapshots as a plain vector (pools are kept).
    pub fn into_snapshots(self) -> Vec<Snapshot> {
        self.snaps
    }

    fn take_events(&mut self) -> Vec<InstallDelta> {
        self.free_events.pop().unwrap_or_default()
    }

    fn take_accounts(&mut self) -> Vec<RegisteredAccount> {
        self.free_accounts.pop().unwrap_or_default()
    }

    fn take_apps(&mut self) -> Vec<AppId> {
        self.free_apps.pop().unwrap_or_default()
    }

    fn take_reviews(&mut self) -> Vec<ReviewEvent> {
        self.free_reviews.pop().unwrap_or_default()
    }
}

/// Stateful snapshot collector for one RacketStore install.
///
/// A collector samples exactly one device for its whole lifetime (as the
/// real app does); the package-stamp fast path relies on this pairing.
#[derive(Debug, Clone)]
pub struct SnapshotCollector {
    config: CollectorConfig,
    install_id: InstallId,
    participant: ParticipantId,
    next_fast: Option<SimTime>,
    next_slow: Option<SimTime>,
    /// Install times of apps seen in the previous fast sample, ascending
    /// by app ID — the delta baseline.
    known_apps: Vec<(AppId, SimTime)>,
    /// Reused build area for the next baseline (swapped with `known_apps`
    /// after each delta scan).
    apps_scratch: Vec<(AppId, SimTime)>,
    /// The device's package stamp at the previous fast sample. While it is
    /// unchanged the installed-app map cannot have changed, so the delta
    /// scan is skipped wholesale — the dominant case, since package events
    /// are orders of magnitude rarer than fast ticks.
    last_stamp: Option<u64>,
    /// Cursor into the device's append-only review log: reviews before it
    /// have already been reported by an earlier slow snapshot.
    reviews_reported: usize,
}

impl SnapshotCollector {
    /// Create a collector for an install signed in as `participant`.
    pub fn new(config: CollectorConfig, install_id: InstallId, participant: ParticipantId) -> Self {
        assert!(config.fast_period_secs > 0 && config.slow_period_secs > 0);
        SnapshotCollector {
            config,
            install_id,
            participant,
            next_fast: None,
            next_slow: None,
            known_apps: Vec::new(),
            apps_scratch: Vec::new(),
            last_stamp: None,
            reviews_reported: 0,
        }
    }

    /// Produce all snapshots due in `(.., now]`, advancing internal timers.
    /// The first call emits one fast and one slow snapshot immediately.
    pub fn poll(&mut self, device: &racket_device::Device, now: SimTime) -> Vec<Snapshot> {
        let mut batch = SnapshotBatch::new();
        self.poll_into(device, now, &mut batch);
        batch.into_snapshots()
    }

    /// [`SnapshotCollector::poll`] into a caller-owned pooled batch:
    /// appends every due snapshot to `batch` (which the caller clears
    /// between polls to recycle buffers), in the same order `poll` returns
    /// them — all due fast snapshots, then all due slow snapshots.
    pub fn poll_into(
        &mut self,
        device: &racket_device::Device,
        now: SimTime,
        batch: &mut SnapshotBatch,
    ) {
        let fast_period = racket_types::SimDuration::from_secs(self.config.fast_period_secs);
        let slow_period = racket_types::SimDuration::from_secs(self.config.slow_period_secs);

        let mut t = self.next_fast.unwrap_or(now);
        while t <= now {
            let deltas = batch.take_events();
            let snap = self.sample_fast_pooled(device, t, deltas);
            batch.snaps.push(Snapshot::Fast(snap));
            t += fast_period;
        }
        self.next_fast = Some(t);

        let mut t = self.next_slow.unwrap_or(now);
        while t <= now {
            let accounts = batch.take_accounts();
            let stopped = batch.take_apps();
            let reviews = batch.take_reviews();
            let snap = self.sample_slow_pooled(device, t, accounts, stopped, reviews);
            batch.snaps.push(Snapshot::Slow(snap));
            t += slow_period;
        }
        self.next_slow = Some(t);
    }

    /// Take one fast snapshot right now (advances the delta baseline).
    pub fn sample_fast(&mut self, device: &racket_device::Device, now: SimTime) -> FastSnapshot {
        self.sample_fast_pooled(device, now, Vec::new())
    }

    /// [`SnapshotCollector::sample_fast`] writing deltas into a recycled
    /// vector (cleared first). The delta scan itself is gated on the
    /// device's package stamp: unchanged stamp ⇒ unchanged installed-app
    /// map ⇒ the scan would produce zero deltas, so it is skipped.
    fn sample_fast_pooled(
        &mut self,
        device: &racket_device::Device,
        now: SimTime,
        mut deltas: Vec<InstallDelta>,
    ) -> FastSnapshot {
        deltas.clear();
        let stamp = device.pkg_stamp();
        if self.last_stamp != Some(stamp) {
            // Install/uninstall deltas vs. the previous sample. A
            // re-install surfaces as a changed install time and is reported
            // as a fresh Installed delta (Android's last-install-time
            // semantics). Both the baseline and the device map iterate in
            // ascending app order, so the diff is two linear cursor walks:
            // first every Installed delta (ascending), then every
            // Uninstalled delta (ascending) — exactly the order the
            // original map-based diff emitted.
            self.apps_scratch.clear();
            let mut k = 0; // cursor into the old baseline
            for info in device.installed_apps() {
                self.apps_scratch.push((info.app, info.install_time));
                while k < self.known_apps.len() && self.known_apps[k].0 < info.app {
                    k += 1;
                }
                match self.known_apps.get(k) {
                    Some(&(app, t)) if app == info.app && t == info.install_time => {}
                    _ => deltas.push(InstallDelta::Installed(info.clone())),
                }
            }
            let mut c = 0; // cursor into the new baseline
            for &(app, _) in &self.known_apps {
                while c < self.apps_scratch.len() && self.apps_scratch[c].0 < app {
                    c += 1;
                }
                if !matches!(self.apps_scratch.get(c), Some(&(a, _)) if a == app) {
                    deltas.push(InstallDelta::Uninstalled { app });
                }
            }
            std::mem::swap(&mut self.known_apps, &mut self.apps_scratch);
            self.last_stamp = Some(stamp);
        }

        let foreground_app = if device.permissions().usage_stats {
            device.foreground_app()
        } else {
            None
        };

        FastSnapshot {
            install_id: self.install_id,
            participant_id: self.participant,
            time: now,
            foreground_app,
            screen_on: device.screen_on(),
            battery_pct: device.battery_pct(),
            install_events: deltas,
        }
    }

    /// Take one slow snapshot right now (advances the review cursor when
    /// review collection is enabled).
    pub fn sample_slow(&mut self, device: &racket_device::Device, now: SimTime) -> SlowSnapshot {
        self.sample_slow_pooled(device, now, Vec::new(), Vec::new(), Vec::new())
    }

    /// [`SnapshotCollector::sample_slow`] writing the account, stopped-app
    /// and review lists into recycled vectors (cleared first). With review
    /// collection enabled, every review the device log gained since the
    /// previous slow sample ships in this snapshot — the first slow
    /// snapshot therefore carries the device's whole review history, the
    /// same "initial data collector" pattern the fast path uses for the
    /// installed-app list.
    fn sample_slow_pooled(
        &mut self,
        device: &racket_device::Device,
        now: SimTime,
        mut accounts: Vec<RegisteredAccount>,
        mut stopped: Vec<AppId>,
        mut reviews: Vec<ReviewEvent>,
    ) -> SlowSnapshot {
        accounts.clear();
        if device.permissions().get_accounts {
            accounts.extend_from_slice(device.accounts());
        }
        device.stopped_apps_into(&mut stopped);
        reviews.clear();
        if self.config.collect_reviews {
            let log = device.review_log();
            reviews.extend_from_slice(&log[self.reviews_reported.min(log.len())..]);
            self.reviews_reported = log.len();
        }
        SlowSnapshot {
            install_id: self.install_id,
            participant_id: self.participant,
            android_id: device.android_id(),
            time: now,
            accounts,
            save_mode: device.save_mode(),
            stopped_apps: stopped,
            review_events: reviews,
        }
    }

    /// Serialize one snapshot in the current accumulation-file format
    /// (the binary record codec, [`crate::codec`]).
    pub fn serialize(snapshot: &Snapshot) -> Vec<u8> {
        let mut out = Vec::new();
        Self::serialize_into(snapshot, &mut out);
        out
    }

    /// Append one snapshot record to a caller-supplied buffer — the
    /// allocation-free path the data buffer accumulates files through.
    pub fn serialize_into(snapshot: &Snapshot, out: &mut Vec<u8>) {
        crate::codec::encode_record(snapshot, out);
    }

    /// Parse an accumulation file back into snapshots.
    ///
    /// Format is sniffed from the first byte: current files start with the
    /// binary record tag ([`crate::codec::TAG_BINARY_V1`]); anything else
    /// is treated as the legacy JSON-lines format (whose lines start with
    /// `{`), so files written before the codec switch keep parsing.
    pub fn deserialize_file(data: &[u8]) -> Result<Vec<Snapshot>, crate::codec::DecodeError> {
        match data.first() {
            None => Ok(Vec::new()),
            Some(&crate::codec::TAG_BINARY_V1) => crate::codec::decode_file(data),
            Some(_) => data
                .split(|&b| b == b'\n')
                .filter(|line| !line.is_empty())
                .map(|line| serde_json::from_slice(line).map_err(Into::into))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racket_device::{Device, DeviceModel, DevicePermissions};
    use racket_types::{AndroidId, ApkHash, DeviceId, PermissionProfile};

    fn device() -> Device {
        let mut d = Device::new(DeviceId(1), DeviceModel::generic(), AndroidId(5));
        d.install_app(
            AppId(1),
            SimTime::from_secs(10),
            PermissionProfile::default(),
            ApkHash([1; 16]),
        );
        d
    }

    fn collector() -> SnapshotCollector {
        SnapshotCollector::new(
            CollectorConfig::default(),
            InstallId(1_000_000_000),
            ParticipantId(123_456),
        )
    }

    #[test]
    fn first_poll_emits_both_kinds_and_full_app_list() {
        let d = device();
        let mut c = collector();
        let snaps = c.poll(&d, SimTime::from_secs(100));
        assert_eq!(snaps.len(), 2);
        let fast = snaps.iter().find(|s| s.is_fast()).unwrap();
        if let Snapshot::Fast(f) = fast {
            assert_eq!(f.install_events.len(), 1, "initial snapshot lists all apps");
            assert!(f.install_events[0].is_install());
        }
    }

    #[test]
    fn cadence_five_seconds_and_two_minutes() {
        let d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        // 120 seconds later: 24 fast ticks (5..=120 step 5) + 1 slow tick.
        let snaps = c.poll(&d, SimTime::from_secs(120));
        let fast = snaps.iter().filter(|s| s.is_fast()).count();
        let slow = snaps.len() - fast;
        assert_eq!(fast, 24);
        assert_eq!(slow, 1);
    }

    #[test]
    fn install_and_uninstall_deltas() {
        let mut d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        d.install_app(
            AppId(2),
            SimTime::from_secs(2),
            PermissionProfile::default(),
            ApkHash([2; 16]),
        );
        d.uninstall_app(AppId(1), SimTime::from_secs(3));
        let snap = c.sample_fast(&d, SimTime::from_secs(5));
        let installs: Vec<_> = snap
            .install_events
            .iter()
            .filter(|e| e.is_install())
            .collect();
        let uninstalls: Vec<_> = snap
            .install_events
            .iter()
            .filter(|e| !e.is_install())
            .collect();
        assert_eq!(installs.len(), 1);
        assert_eq!(installs[0].app(), AppId(2));
        assert_eq!(uninstalls.len(), 1);
        assert_eq!(uninstalls[0].app(), AppId(1));
        // Next sample: no deltas.
        assert!(c
            .sample_fast(&d, SimTime::from_secs(10))
            .install_events
            .is_empty());
    }

    #[test]
    fn reinstall_reported_as_fresh_install() {
        let mut d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        d.install_app(
            AppId(1),
            SimTime::from_secs(50),
            PermissionProfile::default(),
            ApkHash([1; 16]),
        );
        let snap = c.sample_fast(&d, SimTime::from_secs(55));
        assert_eq!(snap.install_events.len(), 1);
        assert!(snap.install_events[0].is_install());
    }

    #[test]
    fn permissions_gate_collection() {
        let mut d = device();
        d.register_account(
            racket_types::RegisteredAccount::gmail(
                racket_types::AccountId(1),
                racket_types::GoogleId(1),
            ),
            SimTime::EPOCH,
        );
        d.open_app(AppId(1), SimTime::from_secs(1), 60);
        d.set_permissions(DevicePermissions {
            usage_stats: false,
            get_accounts: false,
        });
        let mut c = collector();
        let fast = c.sample_fast(&d, SimTime::from_secs(2));
        assert_eq!(fast.foreground_app, None, "PACKAGE_USAGE_STATS denied");
        let slow = c.sample_slow(&d, SimTime::from_secs(2));
        assert!(slow.accounts.is_empty(), "GET_ACCOUNTS denied");
        // Stopped apps are package-manager data, still reported.
        d.set_permissions(DevicePermissions::default());
        let slow2 = c.sample_slow(&d, SimTime::from_secs(3));
        assert_eq!(slow2.accounts.len(), 1);
    }

    #[test]
    fn serialization_round_trips_files() {
        let d = device();
        let mut c = collector();
        let snaps = c.poll(&d, SimTime::from_secs(100));
        let mut file = Vec::new();
        for s in &snaps {
            file.extend_from_slice(&SnapshotCollector::serialize(s));
        }
        let back = SnapshotCollector::deserialize_file(&file).unwrap();
        assert_eq!(back, snaps);
    }

    #[test]
    fn legacy_json_lines_files_still_parse() {
        let d = device();
        let mut c = collector();
        let snaps = c.poll(&d, SimTime::from_secs(100));
        // A file written by the pre-codec implementation: JSON lines.
        let mut file = Vec::new();
        for s in &snaps {
            file.extend_from_slice(&serde_json::to_vec(s).unwrap());
            file.push(b'\n');
        }
        let back = SnapshotCollector::deserialize_file(&file).unwrap();
        assert_eq!(back, snaps);
    }

    #[test]
    fn poll_into_matches_poll_across_package_churn() {
        // Drive two identical collectors through the same device history:
        // one via the allocating `poll`, one via `poll_into` with a single
        // reused batch. Every emission must match snapshot-for-snapshot.
        let mut d = device();
        let mut c_ref = collector();
        let mut c_pooled = collector();
        let mut batch = SnapshotBatch::new();
        let mut polls = 0usize;
        for step in 0u32..60 {
            let t = SimTime::from_secs(u64::from(step) * 7);
            match step % 4 {
                1 => {
                    d.install_app(
                        AppId(100 + step),
                        t,
                        PermissionProfile::default(),
                        ApkHash([step as u8; 16]),
                    );
                }
                3 => {
                    d.uninstall_app(AppId(100 + step - 2), t);
                }
                _ => {}
            }
            let expected = c_ref.poll(&d, t);
            batch.clear();
            c_pooled.poll_into(&d, t, &mut batch);
            assert_eq!(batch.snapshots(), expected.as_slice(), "step {step}");
            assert_eq!(batch.len(), expected.len());
            assert_eq!(batch.is_empty(), expected.is_empty());
            polls += expected.len();
        }
        assert!(polls > 60, "the sequence exercised real emissions");
    }

    #[test]
    fn poll_at_exact_period_boundary_is_inclusive_and_idempotent() {
        let d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        // One second before the next fast tick: nothing is due.
        assert!(c.poll(&d, SimTime::from_secs(4)).is_empty());
        // Exactly on the tick: due snapshots are emitted inclusively…
        let snaps = c.poll(&d, SimTime::from_secs(5));
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].time().as_secs(), 5);
        // …and a second poll at the same instant (the study driver's
        // end-of-monitoring final tick pattern) emits nothing again.
        assert!(c.poll(&d, SimTime::from_secs(5)).is_empty());
    }

    #[test]
    fn stamp_fast_path_never_swallows_deltas() {
        // Interleave quiet polls (which take the package-stamp skip) with
        // package churn; every mutation must still surface exactly once.
        let mut d = device();
        let mut c = collector();
        c.poll(&d, SimTime::from_secs(0));
        for quiet in 1..=3 {
            assert!(c
                .sample_fast(&d, SimTime::from_secs(quiet))
                .install_events
                .is_empty());
        }
        d.install_app(
            AppId(2),
            SimTime::from_secs(4),
            PermissionProfile::default(),
            ApkHash([2; 16]),
        );
        let snap = c.sample_fast(&d, SimTime::from_secs(5));
        assert_eq!(snap.install_events.len(), 1);
        assert_eq!(snap.install_events[0].app(), AppId(2));
        // Uninstall then reinstall between samples: both the uninstall and
        // the fresh install carry distinct stamps, so the skip cannot hide
        // the combined churn either.
        d.uninstall_app(AppId(2), SimTime::from_secs(6));
        d.install_app(
            AppId(2),
            SimTime::from_secs(7),
            PermissionProfile::default(),
            ApkHash([3; 16]),
        );
        let snap = c.sample_fast(&d, SimTime::from_secs(8));
        assert_eq!(snap.install_events.len(), 1, "reinstall is a fresh install");
        assert!(snap.install_events[0].is_install());
        assert!(c
            .sample_fast(&d, SimTime::from_secs(9))
            .install_events
            .is_empty());
    }

    #[test]
    fn batch_clear_recycles_buffers_between_polls() {
        let mut d = device();
        let mut c = collector();
        let mut batch = SnapshotBatch::new();
        c.poll_into(&d, SimTime::from_secs(0), &mut batch);
        assert_eq!(batch.len(), 2, "first poll emits one fast + one slow");
        batch.clear();
        assert!(batch.is_empty());
        // The recycled event buffer must come back cleared even though the
        // next tick has fresh deltas of its own.
        d.install_app(
            AppId(9),
            SimTime::from_secs(1),
            PermissionProfile::default(),
            ApkHash([9; 16]),
        );
        c.poll_into(&d, SimTime::from_secs(5), &mut batch);
        let Snapshot::Fast(f) = &batch.snapshots()[0] else {
            panic!("fast snapshot first");
        };
        assert_eq!(f.install_events.len(), 1);
        assert_eq!(f.install_events[0].app(), AppId(9));
    }

    #[test]
    fn thinned_cadence() {
        let d = device();
        let mut c = SnapshotCollector::new(
            CollectorConfig {
                fast_period_secs: 60,
                slow_period_secs: 120,
                collect_reviews: false,
            },
            InstallId(1),
            ParticipantId(1),
        );
        c.poll(&d, SimTime::from_secs(0));
        let snaps = c.poll(&d, SimTime::from_secs(600));
        let fast = snaps.iter().filter(|s| s.is_fast()).count();
        assert_eq!(fast, 10);
    }
}
