//! The RacketStore collection platform (§3, Figure 3).
//!
//! Everything between the participant's device and the study database:
//!
//! * [`collector`] — the mobile app's fast (5 s) and slow (2 min) snapshot
//!   collectors, permission-gated exactly as the paper describes;
//! * [`buffer`] — the on-device data buffer: snapshots accumulate into
//!   per-type files, compressed and rotated at 8 KB (slow) / 100 KB (fast),
//!   deleted only once the server acknowledges the upload with a matching
//!   content hash;
//! * [`codec`] — the compact, version-tagged binary record format those
//!   accumulation files use (legacy JSON-lines files still parse);
//! * [`hash`] — SHA-256 (upload acknowledgement), MD5 (apk hashes) and
//!   CRC32 (frame checksums), all implemented in-crate and pinned against
//!   published test vectors;
//! * [`lzss`] — the compression applied to rotated snapshot files;
//! * [`wire`] — the length-prefixed, CRC-protected frame codec and message
//!   set (sign-in, snapshot upload, hash acknowledgement);
//! * [`transport`] — a blocking [`transport::Transport`] abstraction with
//!   in-memory (crossbeam channel) and TCP implementations, plus the
//!   seeded fault-injection layer ([`transport::FaultPlan`]) chaos tests
//!   drive;
//! * [`retry`] — the client-side retry/backoff state machine:
//!   [`retry::WireLane`] runs one device's protocol session over a
//!   (possibly fault-injected) loopback link with bounded exponential
//!   backoff, reconnect-and-resume, and exactly-once delivery via the
//!   server's idempotent ingest;
//! * [`server`] — the collection server: sign-in validation, upload
//!   ingestion (verify CRC → decompress → parse → acknowledge), and
//!   per-install aggregation of snapshot statistics;
//! * [`async_server`] — the reactor-driven collection plane:
//!   thread-per-core workers multiplexing thousands of connections over
//!   [`racket_reactor`] readiness polling, with bounded per-connection
//!   queues, load-shedding admission control and server-side stall
//!   sweeps (the million-device scale path; see `ARCHITECTURE.md` §8);
//! * [`shard`] — the sharded ingestion facade: per-install records spread
//!   over independently locked shards so batches from different devices
//!   ingest concurrently (the parallel study driver's direct path);
//! * [`columnar`] — the struct-of-arrays projection of the ingest store
//!   ([`columnar::ColumnarSnapshots`]): dictionary-encoded identifiers and
//!   contiguous per-field columns for the analyze-side scans
//!   (`ARCHITECTURE.md` §9);
//! * [`fingerprint`] — Appendix A's snapshot fingerprinting: coalescing
//!   RacketStore installs into physical devices using install intervals,
//!   Android IDs and Jaccard similarity.

#![deny(missing_docs)]

pub mod async_server;
pub mod buffer;
pub mod codec;
pub mod collector;
pub mod columnar;
pub mod fingerprint;
pub mod hash;
pub mod lzss;
pub mod retry;
pub mod server;
pub mod shard;
pub mod stream;
pub mod transport;
pub mod wire;

pub use async_server::{AsyncCollectServer, AsyncConn, AsyncServerConfig};
pub use buffer::{DataBuffer, UploadFile};
pub use codec::DecodeError;
pub use collector::{CollectorConfig, SnapshotBatch, SnapshotCollector};
pub use columnar::{AppEntry, ColumnarSnapshots, NEVER_UNINSTALLED};
pub use fingerprint::{coalesce_installs, CandidateInstall, CoalescedDevice};
pub use hash::{crc32, md5, sha256};
pub use retry::{RetryPolicy, RetryStats, WireLane};
pub use server::{CollectionServer, InstallRecord};
pub use shard::ShardedIngest;
pub use stream::{AppStream, StreamAggregates};
pub use transport::{FaultPlan, MemTransport, TcpTransport, Transport};
pub use wire::{Frame, FrameCodec, Message};
