//! Per-app streaming aggregates folded at snapshot-ingest time.
//!
//! The batch feature extractors (`racket-features`) re-scan an
//! [`crate::InstallRecord`]'s event vectors once per app when a study
//! ends: per-app install/uninstall counts, the last uninstall time and the
//! foreground totals all come from O(events)-per-app passes. The streaming
//! engine (ARCHITECTURE.md §7) maintains those per-app sufficient
//! statistics inside `InstallRecord::ingest`, at the exact
//! program points where the batch-visible vectors are appended — so the
//! aggregate is equal to the batch scan **by construction**, rides every
//! transport of the record (sharded ingest, `adopt_record`, clones), and
//! inherits the server's idempotent-ingest guarantee: a deduplicated
//! upload replay never reaches `ingest`, so it can never double-fold.
//!
//! Everything here is an exact integer/latch aggregate (no floats), which
//! is what lets the streaming feature vectors match batch bit-for-bit.

use racket_campaign::CampaignSketch;
use racket_text::TextSketch;
use racket_types::{AppId, GoogleId, Rating, SimTime};
use std::collections::HashMap;

/// Streaming sufficient statistics for one app on one install.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppStream {
    /// Install events observed during monitoring (mirrors the app's
    /// entries in `InstallRecord::install_events`).
    pub n_installs: u64,
    /// Uninstall events observed (mirrors `uninstall_events`).
    pub n_uninstalls: u64,
    /// Latest uninstall time observed, if any (the batch path computes
    /// this as `max` over the uninstall-event vector).
    pub last_uninstall: Option<SimTime>,
    /// Total fast snapshots with this app on screen (the batch path sums
    /// the per-day foreground map).
    pub fg_total: u64,
}

impl AppStream {
    /// Merge another per-app aggregate built over a disjoint slice of the
    /// same install's snapshots. Counters add; the uninstall latch takes
    /// the max — commutative and associative, with the default value as
    /// identity.
    pub fn merge(&mut self, other: &AppStream) {
        self.n_installs += other.n_installs;
        self.n_uninstalls += other.n_uninstalls;
        self.last_uninstall = match (self.last_uninstall, other.last_uninstall) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.fg_total += other.fg_total;
    }
}

/// The per-install streaming aggregate: one [`AppStream`] per app that has
/// produced an event or foreground observation, plus device-level event
/// totals.
#[derive(Debug, Clone, Default)]
pub struct StreamAggregates {
    per_app: HashMap<AppId, AppStream>,
    /// Total install events (equals `install_events.len()`).
    pub n_install_events: u64,
    /// Total uninstall events (equals `uninstall_events.len()`).
    pub n_uninstall_events: u64,
    /// Lockstep-detection sketch over the install events (shingle set,
    /// MinHash signature, exact event set — ARCHITECTURE.md §10). Folded
    /// at the same program point as `n_install_events`, so it is equal to
    /// the batch rebuild from the install-event column family by
    /// construction. Never enters feature vectors or fingerprints.
    campaign: CampaignSketch,
    /// Review-text sketch over the reported review events (canonical
    /// per-review rows + install-level MinHash — ARCHITECTURE.md §13).
    /// Folded at the same program point as the record's review-event
    /// vector, so it equals the batch rebuild from the columnar review
    /// family by construction. Stays empty in review-off studies.
    text: TextSketch,
}

impl StreamAggregates {
    /// The empty aggregate (merge identity).
    pub fn new() -> Self {
        StreamAggregates::default()
    }

    /// The aggregate for one app, if it ever produced a signal.
    pub fn app(&self, app: AppId) -> Option<&AppStream> {
        self.per_app.get(&app)
    }

    /// Iterate all per-app aggregates (unspecified order).
    pub fn apps(&self) -> impl Iterator<Item = (&AppId, &AppStream)> {
        self.per_app.iter()
    }

    /// Number of apps with any streaming signal.
    pub fn len(&self) -> usize {
        self.per_app.len()
    }

    /// Whether no signal has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.per_app.is_empty() && self.n_install_events == 0 && self.n_uninstall_events == 0
    }

    /// The campaign (lockstep-detection) sketch folded so far.
    pub fn campaign(&self) -> &CampaignSketch {
        &self.campaign
    }

    /// The review-text sketch folded so far.
    pub fn text(&self) -> &TextSketch {
        &self.text
    }

    /// Fold one monitored install event (called exactly when the record
    /// pushes onto `install_events`; `t` is the event's install time, the
    /// same value the event vector records).
    pub fn note_install(&mut self, app: AppId, t: SimTime) {
        self.per_app.entry(app).or_default().n_installs += 1;
        self.n_install_events += 1;
        self.campaign.observe(app, t);
    }

    /// Fold one uninstall event (called exactly when the record pushes
    /// onto `uninstall_events`).
    pub fn note_uninstall(&mut self, app: AppId, t: SimTime) {
        let s = self.per_app.entry(app).or_default();
        s.n_uninstalls += 1;
        s.last_uninstall = Some(match s.last_uninstall {
            Some(prev) => prev.max(t),
            None => t,
        });
        self.n_uninstall_events += 1;
    }

    /// Fold one foreground observation (called exactly when the record
    /// bumps the per-day foreground counter).
    pub fn note_foreground(&mut self, app: AppId) {
        self.per_app.entry(app).or_default().fg_total += 1;
    }

    /// Fold one reported review (called exactly when the record pushes
    /// onto its review-event vector).
    pub fn note_review(
        &mut self,
        app: AppId,
        reviewer: GoogleId,
        t: SimTime,
        rating: Rating,
        text: &str,
    ) {
        self.text
            .observe(app.raw(), reviewer.raw(), t.as_secs(), rating.stars(), text);
    }

    /// Merge an aggregate built over a disjoint slice of the same
    /// install's snapshots: per-app entries merge pairwise, totals add.
    /// Commutative and associative with [`StreamAggregates::new`] as
    /// identity (pinned by the property suite).
    pub fn merge(&mut self, other: &StreamAggregates) {
        for (&app, s) in &other.per_app {
            self.per_app.entry(app).or_default().merge(s);
        }
        self.n_install_events += other.n_install_events;
        self.n_uninstall_events += other.n_uninstall_events;
        self.campaign.merge(&other.campaign);
        self.text.merge(&other.text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AppId = AppId(1);
    const B: AppId = AppId(2);

    #[test]
    fn folds_accumulate_per_app() {
        let mut s = StreamAggregates::new();
        s.note_install(A, SimTime::from_secs(10));
        s.note_install(A, SimTime::from_secs(11));
        s.note_uninstall(A, SimTime::from_secs(50));
        s.note_uninstall(A, SimTime::from_secs(20)); // out of order: latch keeps max
        s.note_foreground(B);
        let a = s.app(A).unwrap();
        assert_eq!(a.n_installs, 2);
        assert_eq!(a.n_uninstalls, 2);
        assert_eq!(a.last_uninstall, Some(SimTime::from_secs(50)));
        assert_eq!(s.app(B).unwrap().fg_total, 1);
        assert_eq!(s.n_install_events, 2);
        assert_eq!(s.n_uninstall_events, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_is_commutative_with_identity() {
        let mut x = StreamAggregates::new();
        x.note_install(A, SimTime::from_secs(1));
        x.note_foreground(A);
        let mut y = StreamAggregates::new();
        y.note_uninstall(A, SimTime::from_secs(9));
        y.note_install(B, SimTime::from_secs(2));

        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy.app(A), yx.app(A));
        assert_eq!(xy.app(B), yx.app(B));
        assert_eq!(xy.n_install_events, yx.n_install_events);
        assert_eq!(xy.campaign(), yx.campaign());
        assert_eq!(xy.campaign().events().count(), 2);

        let mut with_id = x.clone();
        with_id.merge(&StreamAggregates::new());
        assert_eq!(with_id.app(A), x.app(A));
        assert!(StreamAggregates::new().is_empty());
    }

    #[test]
    fn review_folds_reach_the_text_sketch_and_merge() {
        let mut x = StreamAggregates::new();
        x.note_review(
            A,
            GoogleId(7),
            SimTime::from_secs(100),
            Rating::FIVE,
            "great app",
        );
        let mut y = StreamAggregates::new();
        y.note_review(
            B,
            GoogleId(8),
            SimTime::from_secs(200),
            Rating::ONE,
            "crashes a lot",
        );

        let mut both = StreamAggregates::new();
        both.note_review(
            A,
            GoogleId(7),
            SimTime::from_secs(100),
            Rating::FIVE,
            "great app",
        );
        both.note_review(
            B,
            GoogleId(8),
            SimTime::from_secs(200),
            Rating::ONE,
            "crashes a lot",
        );

        let mut xy = x.clone();
        xy.merge(&y);
        assert_eq!(xy.text(), both.text());
        assert_eq!(xy.text().n_reviews(), 2);
        // Text folds do not create per-app install aggregates.
        assert_eq!(xy.len(), 0);
    }
}
