//! The §6 measurement analyses.
//!
//! Every comparison the paper draws between worker and regular devices,
//! as typed data: per-cohort samples plus the paper's statistical battery
//! — two-sample Kolmogorov–Smirnov, parametric one-way ANOVA and
//! non-parametric ANOVA (Kruskal–Wallis) — with Shapiro–Wilk and
//! Fligner–Killeen pre-tests (the paper runs the non-parametric tests
//! because both pre-tests reject for every feature). The experiment
//! binaries in `racket-bench` only format what this module computes.

use crate::study::StudyOutput;
use racket_stats::{
    anova_oneway, fligner_killeen, kruskal_wallis, ks_2samp, shapiro_wilk, Summary, TestOutcome,
};
use racket_types::Cohort;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// A per-feature comparison between the two cohorts.
#[derive(Debug, Clone)]
pub struct CohortComparison {
    /// Feature name.
    pub name: &'static str,
    /// Per-regular-device (or per-observation) values.
    pub regular: Vec<f64>,
    /// Per-worker-device values.
    pub worker: Vec<f64>,
    /// Two-sample KS test.
    pub ks: TestOutcome,
    /// Parametric one-way ANOVA.
    pub anova: TestOutcome,
    /// Non-parametric ANOVA (Kruskal–Wallis).
    pub kruskal: TestOutcome,
}

impl CohortComparison {
    /// Run the full battery over two samples.
    pub fn new(name: &'static str, regular: Vec<f64>, worker: Vec<f64>) -> Self {
        assert!(
            !regular.is_empty() && !worker.is_empty(),
            "comparison {name} needs both cohorts"
        );
        let ks = ks_2samp(&regular, &worker);
        let anova = anova_oneway(&[&regular, &worker]);
        let kruskal = kruskal_wallis(&[&regular, &worker]);
        CohortComparison {
            name,
            regular,
            worker,
            ks,
            anova,
            kruskal,
        }
    }

    /// Summary of the regular sample.
    pub fn regular_summary(&self) -> Summary {
        Summary::of(&self.regular).expect("non-empty")
    }

    /// Summary of the worker sample.
    pub fn worker_summary(&self) -> Summary {
        Summary::of(&self.worker).expect("non-empty")
    }

    /// §6 preamble pre-tests: Shapiro–Wilk normality on the pooled sample
    /// and Fligner–Killeen variance homogeneity across cohorts. Returns
    /// `None` when the pooled sample is degenerate (constant or too
    /// small).
    pub fn pretests(&self) -> Option<(TestOutcome, TestOutcome)> {
        let pooled: Vec<f64> = self
            .regular
            .iter()
            .chain(self.worker.iter())
            .copied()
            .collect();
        if pooled.len() < 3 || pooled.len() > 5000 {
            return None;
        }
        let min = pooled.iter().copied().fold(f64::INFINITY, f64::min);
        let max = pooled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if min == max {
            return None;
        }
        Some((
            shapiro_wilk(&pooled),
            fligner_killeen(&[&self.regular, &self.worker]),
        ))
    }
}

/// Figure 4 scatter point: one device's engagement.
#[derive(Debug, Clone, Copy)]
pub struct EngagementPoint {
    /// Average snapshots received per active day.
    pub snapshots_per_day: f64,
    /// Days with at least one snapshot.
    pub active_days: usize,
    /// Cohort of the device.
    pub cohort: Cohort,
}

/// Figure 7: install-to-review delays.
#[derive(Debug, Clone)]
pub struct InstallToReview {
    /// Per-review delay in days, regular devices.
    pub regular_days: Vec<f64>,
    /// Per-review delay in days, worker devices.
    pub worker_days: Vec<f64>,
    /// Worker reviews posted within one day of install.
    pub worker_within_one_day: usize,
    /// Regular reviews posted within one day of install.
    pub regular_within_one_day: usize,
    /// The statistical battery over the two delay samples.
    pub comparison: CohortComparison,
}

/// Figure 9 scatter point: one device's churn.
#[derive(Debug, Clone, Copy)]
pub struct ChurnPoint {
    /// Average installs per active day.
    pub daily_installs: f64,
    /// Average uninstalls per active day.
    pub daily_uninstalls: f64,
    /// Cohort of the device.
    pub cohort: Cohort,
}

/// Figure 10 scatter point.
#[derive(Debug, Clone, Copy)]
pub struct AppsUsedPoint {
    /// Average distinct apps in the foreground per active day.
    pub apps_used_per_day: f64,
    /// Apps installed on the device.
    pub installed: usize,
    /// Cohort of the device.
    pub cohort: Cohort,
}

/// Figure 11 point: one app's permission footprint, tagged by the cohort
/// whose devices exclusively host it.
#[derive(Debug, Clone, Copy)]
pub struct PermissionPoint {
    /// Total permissions requested.
    pub total: usize,
    /// Dangerous permissions requested.
    pub dangerous: usize,
    /// The cohort that exclusively installed it.
    pub cohort: Cohort,
}

/// Figure 12 point: one flagged apk.
#[derive(Debug, Clone, Copy)]
pub struct MalwarePoint {
    /// VirusTotal engines flagging the apk.
    pub flags: u8,
    /// Worker devices hosting it.
    pub worker_devices: usize,
    /// Regular devices hosting it.
    pub regular_devices: usize,
}

/// All §6 analyses over one study.
#[derive(Debug)]
pub struct MeasurementReport {
    /// Figure 4.
    pub engagement: Vec<EngagementPoint>,
    /// Figure 5 left: Gmail accounts per device.
    pub gmail_accounts: CohortComparison,
    /// Figure 5 center: distinct account types per device.
    pub account_types: CohortComparison,
    /// Figure 5 right: non-Gmail accounts per device.
    pub non_gmail_accounts: CohortComparison,
    /// Figure 6 left: installed apps per device.
    pub installed_apps: CohortComparison,
    /// Figure 6 center: installed-and-reviewed apps per device.
    pub installed_and_reviewed: CohortComparison,
    /// Figure 6 right: total reviews from device accounts.
    pub total_reviews: CohortComparison,
    /// Figure 7.
    pub install_to_review: InstallToReview,
    /// Figure 8: stopped apps per device.
    pub stopped_apps: CohortComparison,
    /// Figure 9 scatter + per-axis comparisons.
    pub churn: Vec<ChurnPoint>,
    /// Daily installs comparison (Figure 9 x-axis).
    pub daily_installs: CohortComparison,
    /// Daily uninstalls comparison (Figure 9 y-axis).
    pub daily_uninstalls: CohortComparison,
    /// Figure 10 scatter.
    pub apps_used: Vec<AppsUsedPoint>,
    /// Figure 11 points (exclusive apps only).
    pub permissions: Vec<PermissionPoint>,
    /// Figure 12 points (apks with ≥ `malware_flag_threshold` flags).
    pub malware: Vec<MalwarePoint>,
    /// The ≥-flags threshold used for the malware figure (paper: 7).
    pub malware_flag_threshold: u8,
}

impl MeasurementReport {
    /// Run every §6 analysis.
    pub fn compute(out: &StudyOutput) -> MeasurementReport {
        let cohorts: Vec<Cohort> = out.truth.iter().map(|t| t.persona.cohort()).collect();
        let split = |f: &dyn Fn(usize) -> f64| -> (Vec<f64>, Vec<f64>) {
            let mut regular = Vec::new();
            let mut worker = Vec::new();
            for (i, cohort) in cohorts.iter().enumerate() {
                match cohort {
                    Cohort::Regular => regular.push(f(i)),
                    Cohort::Worker => worker.push(f(i)),
                }
            }
            (regular, worker)
        };

        // Figure 4 — engagement. Per-device passes fan out over worker
        // threads (order-preserving, so the report is thread-count
        // independent like everything else in the pipeline).
        let engagement = (0..out.observations.len())
            .into_par_iter()
            .map(|i| EngagementPoint {
                snapshots_per_day: out.observations[i].record.avg_snapshots_per_day(),
                active_days: out.observations[i].record.active_days(),
                cohort: cohorts[i],
            })
            .collect();

        // Figure 5 — accounts.
        let (r, w) = split(&|i| {
            out.observations[i]
                .record
                .accounts
                .iter()
                .filter(|a| a.service.is_gmail())
                .count() as f64
        });
        let gmail_accounts = CohortComparison::new("gmail_accounts", r, w);
        let (r, w) = split(&|i| {
            let mut s: Vec<_> = out.observations[i]
                .record
                .accounts
                .iter()
                .map(|a| a.service)
                .collect();
            s.sort();
            s.dedup();
            s.len() as f64
        });
        let account_types = CohortComparison::new("account_types", r, w);
        let (r, w) = split(&|i| {
            out.observations[i]
                .record
                .accounts
                .iter()
                .filter(|a| !a.service.is_gmail())
                .count() as f64
        });
        let non_gmail_accounts = CohortComparison::new("non_gmail_accounts", r, w);

        // Figure 6 — installed / reviewed apps.
        let (r, w) = split(&|i| out.observations[i].record.installed_now.len() as f64);
        let installed_apps = CohortComparison::new("installed_apps", r, w);
        let (r, w) = split(&|i| out.observations[i].installed_and_reviewed() as f64);
        let installed_and_reviewed = CohortComparison::new("installed_and_reviewed", r, w);
        let (r, w) = split(&|i| out.observations[i].total_reviews() as f64);
        let total_reviews = CohortComparison::new("total_reviews", r, w);

        // Figure 7 — install-to-review delay per review (positive deltas
        // only; negative deltas are past installs, §6.3).
        let delays = |cohort: Cohort| -> Vec<f64> {
            let mut out_days = Vec::new();
            for (obs, &c) in out.observations.iter().zip(&cohorts) {
                if c != cohort {
                    continue;
                }
                for (app, reviews) in &obs.reviews_by_app {
                    let Some(info) = obs.record.apps.get(app) else {
                        continue;
                    };
                    if !obs.record.installed_now.contains(app) {
                        continue;
                    }
                    for review in reviews {
                        let d = review.posted_at.signed_delta_secs(info.install_time);
                        if d >= 0 {
                            out_days.push(d as f64 / 86_400.0);
                        }
                    }
                }
            }
            out_days
        };
        let (regular_days, worker_days) =
            rayon::join(|| delays(Cohort::Regular), || delays(Cohort::Worker));
        let install_to_review = InstallToReview {
            regular_within_one_day: regular_days.iter().filter(|&&d| d <= 1.0).count(),
            worker_within_one_day: worker_days.iter().filter(|&&d| d <= 1.0).count(),
            comparison: CohortComparison::new(
                "install_to_review_days",
                regular_days.clone(),
                worker_days.clone(),
            ),
            regular_days,
            worker_days,
        };

        // Figure 8 — stopped apps.
        let (r, w) = split(&|i| out.observations[i].record.stopped_apps.len() as f64);
        let stopped_apps = CohortComparison::new("stopped_apps", r, w);

        // Figure 9 — churn.
        let churn: Vec<ChurnPoint> = (0..out.observations.len())
            .into_par_iter()
            .map(|i| {
                let rec = &out.observations[i].record;
                let days = rec.active_days().max(1) as f64;
                ChurnPoint {
                    daily_installs: rec.install_events.len() as f64 / days,
                    daily_uninstalls: rec.uninstall_events.len() as f64 / days,
                    cohort: cohorts[i],
                }
            })
            .collect();
        let (r, w) = split(&|i| churn[i].daily_installs);
        let daily_installs = CohortComparison::new("daily_installs", r, w);
        let (r, w) = split(&|i| churn[i].daily_uninstalls);
        let daily_uninstalls = CohortComparison::new("daily_uninstalls", r, w);

        // Figure 10 — apps used per day vs installed.
        let apps_used = (0..out.observations.len())
            .into_par_iter()
            .map(|i| {
                let rec = &out.observations[i].record;
                let mut per_day: HashMap<u64, usize> = HashMap::new();
                for days in rec.foreground.values() {
                    for day in days.keys() {
                        *per_day.entry(*day).or_insert(0) += 1;
                    }
                }
                let used = if per_day.is_empty() {
                    0.0
                } else {
                    per_day.values().map(|&c| c as f64).sum::<f64>() / per_day.len() as f64
                };
                AppsUsedPoint {
                    apps_used_per_day: used,
                    installed: rec.installed_now.len(),
                    cohort: cohorts[i],
                }
            })
            .collect();

        // Figure 11 — permissions of cohort-exclusive apps.
        let mut on_regular: HashSet<racket_types::AppId> = HashSet::new();
        let mut on_worker: HashSet<racket_types::AppId> = HashSet::new();
        for (obs, cohort) in out.observations.iter().zip(&cohorts) {
            let apps = obs.record.apps.keys().copied();
            match cohort {
                Cohort::Regular => on_regular.extend(apps),
                Cohort::Worker => on_worker.extend(apps),
            }
        }
        let mut permissions = Vec::new();
        for (set, other, cohort) in [
            (&on_regular, &on_worker, Cohort::Regular),
            (&on_worker, &on_regular, Cohort::Worker),
        ] {
            let mut exclusive: Vec<racket_types::AppId> =
                set.iter().filter(|a| !other.contains(a)).copied().collect();
            exclusive.sort_unstable();
            for app in exclusive {
                let meta = out.fleet.catalog.app(app);
                permissions.push(PermissionPoint {
                    total: meta.permissions.len(),
                    dangerous: meta.dangerous_permission_count(),
                    cohort,
                });
            }
        }

        // Figure 12 — malware occurrence (≥ 7 VT flags).
        let threshold = racket_playstore::virustotal::HIGH_CONFIDENCE_FLAGS;
        let mut malware_map: HashMap<racket_types::ApkHash, MalwarePoint> = HashMap::new();
        for (obs, cohort) in out.observations.iter().zip(&cohorts) {
            for info in obs.record.apps.values() {
                let Some(Some(flags)) = obs.vt_flags.get(&info.app) else {
                    continue;
                };
                if *flags < threshold {
                    continue;
                }
                let entry = malware_map.entry(info.apk_hash).or_insert(MalwarePoint {
                    flags: *flags,
                    worker_devices: 0,
                    regular_devices: 0,
                });
                match cohort {
                    Cohort::Worker => entry.worker_devices += 1,
                    Cohort::Regular => entry.regular_devices += 1,
                }
            }
        }

        MeasurementReport {
            engagement,
            gmail_accounts,
            account_types,
            non_gmail_accounts,
            installed_apps,
            installed_and_reviewed,
            total_reviews,
            install_to_review,
            stopped_apps,
            churn,
            daily_installs,
            daily_uninstalls,
            apps_used,
            permissions,
            malware: {
                let mut entries: Vec<_> = malware_map.into_iter().collect();
                entries.sort_unstable_by_key(|(hash, _)| *hash);
                entries.into_iter().map(|(_, point)| point).collect()
            },
            malware_flag_threshold: threshold,
        }
    }

    /// The comparisons the paper declares significant, for the pre-test
    /// sweep (§6 preamble) and the summary printers.
    pub fn comparisons(&self) -> Vec<&CohortComparison> {
        vec![
            &self.gmail_accounts,
            &self.account_types,
            &self.non_gmail_accounts,
            &self.installed_apps,
            &self.installed_and_reviewed,
            &self.total_reviews,
            &self.install_to_review.comparison,
            &self.stopped_apps,
            &self.daily_installs,
            &self.daily_uninstalls,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};
    use std::sync::OnceLock;

    fn report() -> &'static MeasurementReport {
        static R: OnceLock<(StudyOutput, MeasurementReport)> = OnceLock::new();
        &R.get_or_init(|| {
            let out = Study::new(StudyConfig::test_scale()).run();
            let report = MeasurementReport::compute(&out);
            (out, report)
        })
        .1
    }

    #[test]
    fn gmail_accounts_significantly_differ() {
        let r = report();
        assert!(
            r.gmail_accounts.ks.significant(),
            "KS p = {}",
            r.gmail_accounts.ks.p_value
        );
        assert!(r.gmail_accounts.kruskal.significant());
        assert!(r.gmail_accounts.worker_summary().mean > r.gmail_accounts.regular_summary().mean);
    }

    #[test]
    fn total_reviews_dramatically_differ() {
        let r = report();
        let w = r.total_reviews.worker_summary();
        let reg = r.total_reviews.regular_summary();
        assert!(
            w.mean > 20.0 * reg.mean.max(0.5),
            "worker {} regular {}",
            w.mean,
            reg.mean
        );
        assert!(r.total_reviews.ks.significant());
    }

    #[test]
    fn installed_apps_overlap() {
        // The paper finds KS significant but ANOVA not; at minimum the
        // means must be close (overlapping distributions).
        let r = report();
        let w = r.installed_apps.worker_summary().mean;
        let reg = r.installed_apps.regular_summary().mean;
        assert!(w < 2.0 * reg, "worker {w} vs regular {reg} should overlap");
    }

    #[test]
    fn install_to_review_shape() {
        let r = report();
        let itr = &r.install_to_review;
        assert!(itr.worker_days.len() > 10 * itr.regular_days.len().max(1));
        let worker_fast = itr.worker_within_one_day as f64 / itr.worker_days.len().max(1) as f64;
        assert!((0.15..0.6).contains(&worker_fast), "P(≤1d) = {worker_fast}");
    }

    #[test]
    fn stopped_apps_heavier_for_workers() {
        let r = report();
        assert!(r.stopped_apps.worker_summary().median > r.stopped_apps.regular_summary().median);
        assert!(r.stopped_apps.kruskal.significant());
    }

    #[test]
    fn churn_means_ordered() {
        let r = report();
        assert!(r.daily_installs.worker_summary().mean > r.daily_installs.regular_summary().mean);
    }

    #[test]
    fn figures_have_points() {
        let r = report();
        assert_eq!(r.engagement.len(), 60);
        assert_eq!(r.churn.len(), 60);
        assert_eq!(r.apps_used.len(), 60);
        assert!(!r.permissions.is_empty());
        assert_eq!(r.malware_flag_threshold, 7);
    }

    #[test]
    fn pretests_reject_normality_for_heavy_tailed_features() {
        let r = report();
        if let Some((shapiro, _fligner)) = r.total_reviews.pretests() {
            assert!(shapiro.significant(), "total reviews are wildly non-normal");
        }
    }
}
