//! The study driver: simulate the fleet through its monitored windows
//! under live collection, then assemble the measurement database.

use racket_agents::{apply_action, Fleet, FleetConfig, TimelineAction};
use racket_collect::{
    coalesce_installs, CandidateInstall, CollectionServer, CollectorConfig, DataBuffer,
    InstallRecord, MemTransport, SnapshotCollector, Transport,
};
use racket_collect::transport::recv_message;
use racket_collect::wire::{FrameCodec, Message};
use racket_features::DeviceObservation;
use racket_playstore::crawler::ReviewCrawler;
use racket_types::{AppId, Cohort, Persona, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// How snapshots travel from collectors to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionPath {
    /// In-process ingestion (fast; the default for large fleets). The
    /// snapshots and aggregation logic are identical to the wire path —
    /// only the framing/transport hop is skipped.
    Direct,
    /// Full protocol: snapshots → data buffer (rotation + LZSS) → framed
    /// upload over an in-memory transport → server decode → hash ack →
    /// buffer deletion. Exercises every §3 component; used by tests and
    /// the protocol-heavy experiments.
    Wire,
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Fleet composition and timing.
    pub fleet: FleetConfig,
    /// Collector cadences. The paper's 5 s / 120 s are the default; large
    /// sweeps may thin the fast cadence — rate features scale uniformly.
    pub collector: CollectorConfig,
    /// Snapshot delivery path.
    pub path: CollectionPath,
    /// Driver RNG seed (behaviour replay).
    pub seed: u64,
}

impl StudyConfig {
    /// Small, fast configuration for tests: a 60-device fleet with a
    /// thinned (60 s) fast cadence over the full wire path.
    pub fn test_scale() -> Self {
        StudyConfig {
            fleet: FleetConfig::test_scale(),
            collector: CollectorConfig { fast_period_secs: 60, slow_period_secs: 120 },
            path: CollectionPath::Wire,
            seed: 11,
        }
    }

    /// Paper-scale configuration: 803 devices, thinned fast cadence
    /// (30 s) to keep a full run in tens of seconds, direct ingestion.
    pub fn paper_scale() -> Self {
        StudyConfig {
            fleet: FleetConfig::paper_scale(),
            collector: CollectorConfig { fast_period_secs: 30, slow_period_secs: 120 },
            path: CollectionPath::Direct,
            seed: 2021,
        }
    }
}

/// Per-device ground truth retained for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// The device's persona.
    pub persona: Persona,
}

/// Everything the study produces.
#[derive(Debug)]
pub struct StudyOutput {
    /// One joined observation per physical device, in fleet order.
    pub observations: Vec<DeviceObservation>,
    /// Ground truth aligned with `observations`.
    pub truth: Vec<GroundTruth>,
    /// The fleet (catalog, store, directory, VirusTotal) post-run.
    pub fleet: Fleet,
    /// Crawler statistics: total reviews collected live.
    pub reviews_crawled: usize,
    /// Server ingestion statistics.
    pub server_stats: racket_collect::server::ServerStats,
    /// Number of physical devices recovered by fingerprint coalescing.
    pub coalesced_devices: usize,
}

impl StudyOutput {
    /// Observations of one cohort (with their indexes).
    pub fn cohort(&self, cohort: Cohort) -> impl Iterator<Item = &DeviceObservation> {
        self.observations
            .iter()
            .zip(&self.truth)
            .filter(move |(_, t)| t.persona.cohort() == cohort)
            .map(|(o, _)| o)
    }
}

/// The study runner.
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Create a runner.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Run the complete study.
    pub fn run(&self) -> StudyOutput {
        let config = &self.config;
        let mut fleet = Fleet::generate(config.fleet.clone());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut server =
            CollectionServer::new(fleet.devices.iter().map(|d| d.participant));
        let mut crawler = ReviewCrawler::new();

        // Sign in + per-device collector/buffer state.
        let n = fleet.devices.len();
        let mut collectors: Vec<SnapshotCollector> = fleet
            .devices
            .iter()
            .map(|d| {
                // Uptime thins the effective cadence: a device reporting
                // half the day yields half the snapshots per day.
                let uptime = d.agent.profile.uptime.clamp(0.05, 1.0);
                let cfg = CollectorConfig {
                    fast_period_secs: ((config.collector.fast_period_secs as f64 / uptime)
                        .round() as u64)
                        .max(1),
                    slow_period_secs: ((config.collector.slow_period_secs as f64 / uptime)
                        .round() as u64)
                        .max(1),
                };
                SnapshotCollector::new(cfg, d.install_id, d.participant)
            })
            .collect();
        let mut buffers: Vec<DataBuffer> = (0..n).map(|_| DataBuffer::new()).collect();

        // Wire-path plumbing: one client/server transport pair per device.
        let mut wire: Vec<Option<(MemTransport, MemTransport, FrameCodec)>> = (0..n)
            .map(|_| match config.path {
                CollectionPath::Wire => {
                    let (c, s) = MemTransport::pair();
                    Some((c, s, FrameCodec::new()))
                }
                CollectionPath::Direct => None,
            })
            .collect();

        for (i, d) in fleet.devices.iter().enumerate() {
            match &mut wire[i] {
                Some((client, server_end, _)) => {
                    // Protocol sign-in.
                    client
                        .send(
                            &Message::SignIn {
                                participant: d.participant,
                                install: d.install_id,
                            }
                            .encode(),
                        )
                        .expect("mem transport");
                    let mut codec = FrameCodec::new();
                    let msg = recv_message(server_end, &mut codec)
                        .expect("transport")
                        .expect("sign-in frame");
                    let reply = server.handle(msg).expect("sign-in has a reply");
                    assert_eq!(reply, Message::SignInAck { accepted: true });
                }
                None => {
                    server.handle(Message::SignIn {
                        participant: d.participant,
                        install: d.install_id,
                    });
                }
            }
        }

        // ---- main loop: one study day at a time, all devices -------------
        let study_start = config.fleet.study_start();
        let horizon = config.fleet.horizon();
        let total_days = config.fleet.max_study_days;
        for day in 0..total_days {
            let day_start = study_start + SimDuration::from_days(day);
            for i in 0..n {
                let dev = &mut fleet.devices[i];
                if !dev.monitoring.contains(day_start) {
                    continue;
                }
                let actions: Vec<TimelineAction> = dev.agent.plan_day(
                    &dev.device,
                    &fleet.catalog,
                    day_start,
                    horizon,
                    &mut rng,
                );
                let day_end = (day_start + SimDuration::from_days(1)).min(dev.monitoring.end);
                for ta in &actions {
                    if ta.time >= day_end {
                        continue;
                    }
                    // Sample everything due before the action, then apply.
                    let snaps = collectors[i].poll(&dev.device, ta.time);
                    Self::deliver(
                        &snaps,
                        &mut buffers[i],
                        &mut wire[i],
                        &mut server,
                        config.path,
                    );
                    apply_action(&mut dev.device, &mut fleet.store, &fleet.catalog, ta, &mut rng);
                }
                // Close out the day.
                let last_tick = SimTime::from_secs(day_end.as_secs().saturating_sub(1));
                let snaps = collectors[i].poll(&dev.device, last_tick);
                Self::deliver(&snaps, &mut buffers[i], &mut wire[i], &mut server, config.path);
            }

            // 12-hourly review crawl over apps installed on participant
            // devices (§5); we run it at day granularity against both
            // half-day marks.
            for half in 0..2 {
                let t = day_start + SimDuration::from_hours(12 * half);
                if crawler.is_due(t) {
                    let installed: HashSet<AppId> = fleet
                        .devices
                        .iter()
                        .flat_map(|d| d.device.installed_apps().map(|a| a.app))
                        .collect();
                    crawler.crawl_all(&fleet.store, installed, t);
                }
            }
        }

        // Final buffer flush (wire path only has residue in buffers).
        for i in 0..n {
            buffers[i].flush();
            let pending: Vec<_> = buffers[i].pending().cloned().collect();
            if let Some((client, server_end, server_codec)) = &mut wire[i] {
                for f in &pending {
                    client
                        .send(
                            &Message::SnapshotUpload {
                                install: fleet.devices[i].install_id,
                                file_id: f.file_id,
                                fast: f.fast,
                                payload: f.data.clone(),
                            }
                            .encode(),
                        )
                        .expect("mem transport");
                    let msg = recv_message(server_end, server_codec)
                        .expect("transport")
                        .expect("upload frame");
                    if let Some(Message::UploadAck { file_id, sha256 }) = server.handle(msg) {
                        buffers[i].acknowledge(file_id, sha256);
                    }
                }
            }
        }

        // ---- assemble the measurement database ----------------------------
        let records: Vec<InstallRecord> = server.records().cloned().collect();
        let candidates: Vec<CandidateInstall> =
            records.iter().map(CandidateInstall::from_record).collect();
        let coalesced = coalesce_installs(candidates);
        let coalesced_devices = coalesced.len();

        let preinstalled: HashSet<AppId> =
            fleet.catalog.system_apps().iter().copied().collect();
        let mut observations = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        let by_install: HashMap<_, _> =
            records.into_iter().map(|r| (r.install_id, r)).collect();

        for dev in &fleet.devices {
            let Some(record) = by_install.get(&dev.install_id) else {
                continue; // device produced no snapshots
            };
            // Google-ID crawl: resolve every Gmail account on the device.
            let google_ids: Vec<_> = record
                .accounts
                .iter()
                .filter(|a| a.service.is_gmail())
                .filter_map(|a| fleet.directory.lookup(a.id))
                .collect();
            // Review join: everything those IDs ever posted (the 217k-review
            // account crawl of §5), grouped by app.
            let mut reviews_by_app: HashMap<AppId, Vec<racket_types::Review>> =
                HashMap::new();
            for &gid in &google_ids {
                for r in fleet.store.reviews_by(gid) {
                    reviews_by_app.entry(r.app).or_default().push(r.clone());
                }
            }
            // VirusTotal reports for every app ever observed installed.
            let vt_flags: HashMap<AppId, Option<u8>> = record
                .apps
                .values()
                .map(|info| {
                    let report = fleet.virustotal.query(info.apk_hash);
                    (info.app, report.map(|r| r.flags))
                })
                .collect();

            observations.push(DeviceObservation {
                record: record.clone(),
                monitoring: dev.monitoring,
                google_ids,
                reviews_by_app,
                vt_flags,
                preinstalled: preinstalled.clone(),
            });
            truth.push(GroundTruth { persona: dev.persona() });
        }

        StudyOutput {
            observations,
            truth,
            reviews_crawled: crawler.total_collected(),
            server_stats: server.stats(),
            coalesced_devices,
            fleet,
        }
    }

    /// Deliver snapshots along the configured path.
    fn deliver(
        snaps: &[racket_types::Snapshot],
        buffer: &mut DataBuffer,
        wire: &mut Option<(MemTransport, MemTransport, FrameCodec)>,
        server: &mut CollectionServer,
        path: CollectionPath,
    ) {
        match path {
            CollectionPath::Direct => {
                for s in snaps {
                    server.ingest_snapshot(s);
                }
            }
            CollectionPath::Wire => {
                let install = snaps.first().map(racket_types::Snapshot::install_id);
                for s in snaps {
                    buffer.push(s);
                }
                let Some(install) = install else { return };
                // Upload any rotated files and process acks inline.
                let pending: Vec<_> = buffer.pending().cloned().collect();
                let Some((client, server_end, server_codec)) = wire else {
                    unreachable!("wire path without transports")
                };
                for f in pending {
                    client
                        .send(
                            &Message::SnapshotUpload {
                                install,
                                file_id: f.file_id,
                                fast: f.fast,
                                payload: f.data,
                            }
                            .encode(),
                        )
                        .expect("mem transport");
                    let msg = recv_message(server_end, server_codec)
                        .expect("transport")
                        .expect("upload frame");
                    if let Some(Message::UploadAck { file_id, sha256 }) = server.handle(msg) {
                        buffer.acknowledge(file_id, sha256);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_test_study() -> StudyOutput {
        Study::new(StudyConfig::test_scale()).run()
    }

    #[test]
    fn study_produces_observations_for_every_device() {
        let out = run_test_study();
        assert_eq!(out.observations.len(), 60);
        assert_eq!(out.truth.len(), 60);
        assert_eq!(out.cohort(Cohort::Regular).count(), 20);
        assert_eq!(out.cohort(Cohort::Worker).count(), 40);
    }

    #[test]
    fn wire_path_ingests_files_and_snapshots() {
        let out = run_test_study();
        assert!(out.server_stats.files > 0, "rotated files uploaded");
        assert!(out.server_stats.snapshots > 1000, "snapshots ingested");
        assert_eq!(out.server_stats.bad_uploads, 0);
        assert_eq!(out.server_stats.sign_ins, 60);
    }

    #[test]
    fn observations_have_accounts_and_reviews() {
        let out = run_test_study();
        let worker_reviews: usize =
            out.cohort(Cohort::Worker).map(|o| o.total_reviews()).sum();
        let regular_reviews: usize =
            out.cohort(Cohort::Regular).map(|o| o.total_reviews()).sum();
        assert!(worker_reviews > 20 * regular_reviews.max(1));
        // Every observation saw at least two days of snapshots.
        for o in &out.observations {
            assert!(o.record.active_days() >= 2);
        }
    }

    #[test]
    fn crawler_collected_live_reviews() {
        let out = run_test_study();
        assert!(out.reviews_crawled > 0);
    }

    #[test]
    fn coalescing_recovers_physical_devices() {
        let out = run_test_study();
        // One install per device in this scenario.
        assert_eq!(out.coalesced_devices, 60);
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_test_study();
        let b = run_test_study();
        assert_eq!(a.server_stats.snapshots, b.server_stats.snapshots);
        assert_eq!(a.reviews_crawled, b.reviews_crawled);
        for (x, y) in a.observations.iter().zip(&b.observations) {
            assert_eq!(x.record.n_fast, y.record.n_fast);
            assert_eq!(x.total_reviews(), y.total_reviews());
        }
    }
}
